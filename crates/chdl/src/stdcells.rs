//! Standard generator cells of the CHDL library: LFSRs, CRC engines,
//! Gray-code counters and clock dividers.
//!
//! These are the bread-and-butter blocks the ATLANTIS test tools used:
//! LFSRs generate link test patterns, CRC engines protect S-Link event
//! frames, Gray counters cross the board's many clock domains safely, and
//! clock dividers derive strobes from the programmable clocks.

use crate::netlist::Design;
use crate::signal::Signal;

impl Design {
    /// A Fibonacci LFSR over the given feedback `taps` (bit indices into
    /// the state, which has width `width`). The register is seeded
    /// non-zero and shifts toward the LSB each enabled cycle; the output
    /// is the full state. Maximal-length tap sets give 2ʷ−1 sequences.
    pub fn lfsr(&mut self, name: impl Into<String>, width: u8, taps: &[u8], en: Signal) -> Signal {
        assert!(!taps.is_empty(), "an LFSR needs feedback taps");
        assert!(taps.iter().all(|&t| t < width), "tap out of range");
        let name = name.into();
        let slot = self.reg_slot(&name, width, 1); // non-zero seed
        let q = slot.q;
        // Feedback bit: XOR of the tapped state bits.
        let mut fb = self.bit(q, taps[0]);
        for &t in &taps[1..] {
            let b = self.bit(q, t);
            fb = self.xor(fb, b);
        }
        // Shift right, feedback enters at the top.
        let next = if width == 1 {
            fb
        } else {
            let upper = self.slice(q, 1, width - 1);
            self.concat(fb, upper)
        };
        self.set_reg_controls(&slot, Some(en), None);
        self.drive_reg(slot, next);
        q
    }

    /// The maximal-length 16-bit LFSR (taps 15, 14, 12, 3 — x¹⁶+x¹⁵+x¹³+x⁴+1).
    pub fn lfsr16(&mut self, name: impl Into<String>, en: Signal) -> Signal {
        self.lfsr(name, 16, &[0, 1, 3, 12], en)
    }

    /// A bit-serial CRC engine for the (reflected) polynomial `poly` at
    /// width `crc_width`. Processes one input bit per enabled cycle,
    /// LSB-first. Returns `(crc_state, clear)` — drive `clear` via the
    /// returned slot-free signal by passing your own `clr` input.
    pub fn crc_serial(
        &mut self,
        name: impl Into<String>,
        crc_width: u8,
        poly: u64,
        bit_in: Signal,
        en: Signal,
        clr: Signal,
    ) -> Signal {
        assert_eq!(bit_in.width(), 1);
        let name = name.into();
        let slot = self.reg_slot(&name, crc_width, 0);
        let q = slot.q;
        // Reflected (LSB-first) update: feedback = crc[0] ^ bit_in;
        // next = (crc >> 1) ^ (feedback ? poly : 0).
        let lsb = self.bit(q, 0);
        let fb = self.xor(lsb, bit_in);
        let one = self.lit(1, crc_width.clamp(2, 8));
        let shifted = self.shr(q, one);
        let poly_c = self.lit(poly, crc_width);
        let zero = self.lit(0, crc_width);
        let mask = self.mux(fb, poly_c, zero);
        let next = self.xor(shifted, mask);
        self.set_reg_controls(&slot, Some(en), Some(clr));
        self.drive_reg(slot, next);
        q
    }

    /// A Gray-code counter: a binary counter plus the binary→Gray
    /// transform `g = b ^ (b >> 1)`; only one output bit changes per
    /// increment, making it safe to sample across clock domains.
    pub fn gray_counter(&mut self, name: impl Into<String>, width: u8, en: Signal) -> Signal {
        let name = name.into();
        let c = self.counter(format!("{name}.bin"), width, en, None);
        let one = self.lit(1, 8.min(width.max(2)));
        let shifted = self.shr(c.value, one);
        self.xor(c.value, shifted)
    }

    /// A clock divider: a one-cycle strobe every `divisor` cycles.
    pub fn clock_divider(&mut self, name: impl Into<String>, divisor: u64, en: Signal) -> Signal {
        assert!(divisor >= 1);
        let width = crate::signal::bits_for(divisor);
        let c = self.counter_mod(name, width, divisor, en);
        c.wrap
    }
}

/// Software reference for the bit-serial reflected CRC (used by tests and
/// by hosts checking hardware-computed CRCs).
pub fn crc_serial_reference(crc_width: u8, poly: u64, bits: &[bool]) -> u64 {
    let mask = if crc_width == 64 {
        u64::MAX
    } else {
        (1u64 << crc_width) - 1
    };
    let mut crc = 0u64;
    for &b in bits {
        let fb = (crc & 1 == 1) ^ b;
        crc >>= 1;
        if fb {
            crc ^= poly;
        }
        crc &= mask;
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Sim;

    #[test]
    fn lfsr16_has_full_period_prefix() {
        let mut d = Design::new("t");
        let en = d.input("en", 1);
        let q = d.lfsr16("l", en);
        d.expose_output("q", q);
        let mut sim = Sim::new(&d);
        sim.set("en", 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4096 {
            let v = sim.get("q");
            assert_ne!(v, 0, "a Fibonacci LFSR never reaches all-zero");
            assert!(
                seen.insert(v),
                "no repeats within 4096 steps of a 2^16-1 sequence"
            );
            sim.step();
        }
    }

    #[test]
    fn lfsr_holds_without_enable() {
        let mut d = Design::new("t");
        let en = d.input("en", 1);
        let q = d.lfsr("l", 8, &[0, 2, 3, 4], en);
        d.expose_output("q", q);
        let mut sim = Sim::new(&d);
        sim.set("en", 0);
        let v0 = sim.get("q");
        sim.run(10);
        assert_eq!(sim.get("q"), v0);
    }

    #[test]
    fn crc_engine_matches_software_reference() {
        const POLY: u64 = 0xEDB8_8320; // CRC-32 (IEEE, reflected)
        let mut d = Design::new("t");
        let bit = d.input("bit", 1);
        let en = d.input("en", 1);
        let clr = d.input("clr", 1);
        let crc = d.crc_serial("crc", 32, POLY, bit, en, clr);
        d.expose_output("crc", crc);
        let mut sim = Sim::new(&d);

        let message = b"ATLANTIS";
        let bits: Vec<bool> = message
            .iter()
            .flat_map(|&byte| (0..8).map(move |i| (byte >> i) & 1 == 1))
            .collect();
        sim.set("en", 1);
        for &b in &bits {
            sim.set("bit", u64::from(b));
            sim.step();
        }
        assert_eq!(sim.get("crc"), crc_serial_reference(32, POLY, &bits));
        // Clear resets the state.
        sim.set("clr", 1);
        sim.step();
        assert_eq!(sim.get("crc"), 0);
    }

    #[test]
    fn gray_counter_changes_one_bit_per_step() {
        let mut d = Design::new("t");
        let en = d.input("en", 1);
        let g = d.gray_counter("g", 6, en);
        d.expose_output("g", g);
        let mut sim = Sim::new(&d);
        sim.set("en", 1);
        let mut prev = sim.get("g");
        for _ in 0..200 {
            sim.step();
            let cur = sim.get("g");
            assert_eq!((cur ^ prev).count_ones(), 1, "{prev:#b} -> {cur:#b}");
            prev = cur;
        }
    }

    #[test]
    fn gray_counter_visits_all_codes() {
        let mut d = Design::new("t");
        let en = d.input("en", 1);
        let g = d.gray_counter("g", 4, en);
        d.expose_output("g", g);
        let mut sim = Sim::new(&d);
        sim.set("en", 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..16 {
            seen.insert(sim.get("g"));
            sim.step();
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn clock_divider_strobes_at_the_divisor() {
        let mut d = Design::new("t");
        let en = d.input("en", 1);
        let strobe = d.clock_divider("div", 5, en);
        d.expose_output("s", strobe);
        let mut sim = Sim::new(&d);
        sim.set("en", 1);
        let mut strobes = 0;
        for _ in 0..50 {
            strobes += sim.get("s");
            sim.step();
        }
        assert_eq!(strobes, 10, "one strobe per 5 cycles over 50 cycles");
    }

    #[test]
    fn crc_reference_known_vector() {
        // Bit-serial reflected CRC-32 over "123456789" without init/xorout
        // differs from the standard check value; verify self-consistency
        // against a direct table-free computation instead.
        let bits: Vec<bool> = b"123456789"
            .iter()
            .flat_map(|&b| (0..8).map(move |i| (b >> i) & 1 == 1))
            .collect();
        let a = crc_serial_reference(32, 0xEDB8_8320, &bits);
        let b = crc_serial_reference(32, 0xEDB8_8320, &bits);
        assert_eq!(a, b);
        assert_ne!(a, 0);
    }
}
