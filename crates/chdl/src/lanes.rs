//! Lane-batched multi-instance simulation.
//!
//! A [`LaneGroup`] steps `L` **independent instances** of one design
//! through a single compiled micro-op stream. Per-signal storage becomes
//! a node-major structure-of-arrays (`vals[node * L + lane]`), registers
//! and memories get one bank per lane, and every micro-op's inner loop
//! sweeps its contiguous lane row in fixed-size chunks that the compiler
//! auto-vectorizes to SIMD. Dispatch, dirty tracking and consumer
//! marking are shared across lanes, so their cost is amortized `L` ways
//! — the data-parallel serving shape of the ATLANTIS workloads (§3):
//! many independent events through one configured design.
//!
//! Lanes are *instances*, not threads: the group is stepped as a whole
//! ([`LaneGroup::step`] advances every lane by one clock edge), while
//! inputs, memories and outputs are addressed per lane. All buffers are
//! allocated once at fork time ([`Sim::fork_lanes`](crate::Sim::fork_lanes))
//! and reused for the
//! group's lifetime.
//!
//! ```
//! use atlantis_chdl::prelude::*;
//!
//! let mut d = Design::new("acc");
//! let x = d.input("x", 16);
//! let acc = d.reg_feedback("acc", 16, |d, q| d.add(q, x));
//! d.expose_output("out", acc);
//!
//! let sim = Sim::new(&d);
//! let mut group = sim.fork_lanes(4);
//! for lane in 0..4 {
//!     group.set(lane, "x", 1 + lane as u64);
//! }
//! group.run(10);
//! for lane in 0..4 {
//!     assert_eq!(group.get(lane, "out"), 10 * (1 + lane as u64));
//! }
//! ```

use crate::engine::{exec_scalar, for_each_operand, lower_op, CompiledEngine, LaneState};
use crate::error::ChdlError;
use crate::netlist::{MemId, Node};
use crate::signal::{mask, Signal};
use std::collections::HashMap;

/// `L` independent instances of one design, stepped together over
/// structure-of-arrays lane state by the compiled engine's lane-batched
/// execution paths. Created by [`Sim::fork_lanes`](crate::Sim::fork_lanes).
#[derive(Debug, Clone)]
pub struct LaneGroup {
    nodes: Vec<Node>,
    names: HashMap<String, Signal>,
    engine: CompiledEngine,
    state: LaneState,
    cycle: u64,
}

impl LaneGroup {
    pub(crate) fn from_parts(
        nodes: Vec<Node>,
        names: HashMap<String, Signal>,
        engine: CompiledEngine,
        state: LaneState,
        cycle: u64,
    ) -> Self {
        LaneGroup {
            nodes,
            names,
            engine,
            state,
            cycle,
        }
    }

    /// Number of instances in the group.
    pub fn lanes(&self) -> usize {
        self.state.lanes
    }

    /// Clock edges applied so far (all lanes share one clock).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    fn lookup(&self, name: &str) -> Signal {
        *self
            .names
            .get(name)
            .unwrap_or_else(|| panic!("{}", ChdlError::UnknownName(name.to_string())))
    }

    fn check_lane(&self, lane: usize) {
        assert!(
            lane < self.state.lanes,
            "lane {lane} out of range (group has {} lanes)",
            self.state.lanes
        );
    }

    /// Set an input port on one lane. The value is masked to the port
    /// width.
    pub fn set(&mut self, lane: usize, name: &str, value: u64) {
        let sig = self.lookup(name);
        self.set_signal(lane, sig, value);
    }

    /// Set an input port on one lane via its signal handle.
    pub fn set_signal(&mut self, lane: usize, sig: Signal, value: u64) {
        self.check_lane(lane);
        let idx = sig.node as usize;
        assert!(
            matches!(self.nodes[idx], Node::Input { .. }),
            "set() target is not an input port"
        );
        let v = value & mask(sig.width);
        let slot = idx * self.state.lanes + lane;
        if self.state.vals[slot] == v {
            return; // no change — nothing to invalidate
        }
        self.state.vals[slot] = v;
        self.engine.mark_node_dirty(sig.node);
    }

    /// Set an input port to the same value on every lane.
    pub fn set_all(&mut self, name: &str, value: u64) {
        let sig = self.lookup(name);
        for lane in 0..self.state.lanes {
            self.set_signal(lane, sig, value);
        }
    }

    /// Read a named signal on one lane after settling combinational
    /// logic (which settles every lane — evaluation is shared).
    pub fn get(&mut self, lane: usize, name: &str) -> u64 {
        let sig = self.lookup(name);
        self.get_signal(lane, sig)
    }

    /// Read any signal on one lane by handle after settling
    /// combinational logic. An unnamed intermediate the fusion pass
    /// absorbed or elided is recomputed on demand from its materialized
    /// ancestors, exactly like [`Sim::get_signal`](crate::Sim::get_signal).
    pub fn get_signal(&mut self, lane: usize, sig: Signal) -> u64 {
        self.check_lane(lane);
        self.eval();
        if !self.engine.is_computed(sig.node) {
            return self.eval_elided(lane, sig.node);
        }
        self.state.vals[sig.node as usize * self.state.lanes + lane]
    }

    /// Recompute a fused-away node for one lane (iterative post-order
    /// walk with a local memo; see `Sim::eval_elided`).
    fn eval_elided(&self, lane: usize, root: u32) -> u64 {
        let lanes = self.state.lanes;
        let mut memo: HashMap<u32, u64> = HashMap::new();
        let mut stack = vec![(root, false)];
        while let Some((n, ready)) = stack.pop() {
            if memo.contains_key(&n) {
                continue;
            }
            if self.engine.is_computed(n) {
                memo.insert(n, self.state.vals[n as usize * lanes + lane]);
                continue;
            }
            if ready {
                let op = lower_op(&self.nodes, n).expect("uncomputed node is always a lowered op");
                let v = exec_scalar(
                    op.code,
                    op.a,
                    op.b,
                    op.c,
                    op.imm,
                    &mut |nd| memo[&nd],
                    &mut |m, a| {
                        let words = self.state.mem_words[m as usize];
                        let bank = &self.state.mems[m as usize];
                        let a = a as usize;
                        if a < words {
                            bank[lane * words + a]
                        } else {
                            0
                        }
                    },
                );
                memo.insert(n, v);
            } else {
                stack.push((n, true));
                for_each_operand(&self.nodes[n as usize], |dep| stack.push((dep, false)));
            }
        }
        memo[&root]
    }

    /// Settle combinational logic for all lanes. Idempotent; called
    /// automatically by [`LaneGroup::get`] and [`LaneGroup::step`].
    pub fn eval(&mut self) {
        self.engine.eval_lanes(&mut self.state);
    }

    /// Apply one clock edge to every lane.
    pub fn step(&mut self) {
        self.engine.step_lanes(&mut self.state);
        self.cycle += 1;
    }

    /// Apply `n` clock edges to every lane with inputs held steady.
    pub fn run(&mut self, n: u64) {
        self.run_batch(n);
    }

    /// Batch fast path: `n` fused laned cycles with zero per-edge heap
    /// allocation. Cycle-identical to `n` [`LaneGroup::step`] calls.
    pub fn run_batch(&mut self, n: u64) {
        self.engine.run_batch_lanes(n, &mut self.state);
        self.cycle += n;
    }

    /// Host-side backdoor read of one lane's memory word. Out-of-range
    /// reads return 0, consistent with in-fabric semantics.
    pub fn peek_mem(&self, lane: usize, mem: MemId, addr: usize) -> u64 {
        self.check_lane(lane);
        let m = mem.0 as usize;
        let Some(&words) = self.state.mem_words.get(m) else {
            return 0;
        };
        if addr < words {
            self.state.mems[m][lane * words + addr]
        } else {
            0
        }
    }

    /// Host-side backdoor write of one lane's memory word. Out-of-range
    /// writes are ignored, consistent with in-fabric semantics.
    pub fn poke_mem(&mut self, lane: usize, mem: MemId, addr: usize, value: u64) {
        self.check_lane(lane);
        let m = mem.0 as usize;
        let Some(&words) = self.state.mem_words.get(m) else {
            return;
        };
        if addr >= words {
            return;
        }
        let slot = &mut self.state.mems[m][lane * words + addr];
        if *slot != value {
            *slot = value;
            // Backdoor pokes also invalidate any compiled lane program.
            self.engine.poke_invalidate(mem.0);
        }
    }

    /// Load one lane's memory bank from a slice starting at address 0.
    /// Shorter slices leave the tail untouched; excess words are ignored.
    pub fn load_mem(&mut self, lane: usize, mem: MemId, contents: &[u64]) {
        self.check_lane(lane);
        let m = mem.0 as usize;
        let Some(&words) = self.state.mem_words.get(m) else {
            return;
        };
        let n = contents.len().min(words);
        let base = lane * words;
        self.state.mems[m][base..base + n].copy_from_slice(&contents[..n]);
        self.engine.poke_invalidate(mem.0);
    }

    /// Snapshot one lane's memory bank (for read-back comparisons).
    pub fn dump_mem(&self, lane: usize, mem: MemId) -> Vec<u64> {
        self.check_lane(lane);
        let m = mem.0 as usize;
        let words = self.state.mem_words[m];
        self.state.mems[m][lane * words..(lane + 1) * words].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use crate::netlist::Design;
    use crate::sim::Sim;

    #[test]
    fn lanes_evolve_independently() {
        let mut d = Design::new("t");
        let x = d.input("x", 16);
        let acc = d.reg_feedback("acc", 16, |d, q| d.add(q, x));
        d.expose_output("out", acc);
        let sim = Sim::new(&d);
        let mut g = sim.fork_lanes(5);
        assert_eq!(g.lanes(), 5);
        for lane in 0..5 {
            g.set(lane, "x", lane as u64 + 1);
        }
        g.run(7);
        for lane in 0..5 {
            assert_eq!(g.get(lane, "out"), 7 * (lane as u64 + 1), "lane {lane}");
        }
        assert_eq!(g.cycle(), 7);
    }

    #[test]
    fn fork_inherits_current_state() {
        let mut d = Design::new("t");
        let x = d.input("x", 8);
        let q = d.reg("q", x);
        d.expose_output("q", q);
        let mem = d.memory("m", 8, 8);
        let addr = d.input("addr", 3);
        let ra = d.read_async(mem, addr);
        d.expose_output("ra", ra);
        let mut sim = Sim::new(&d);
        sim.set("x", 42);
        sim.step();
        sim.poke_mem(mem, 3, 99);
        let mut g = sim.fork_lanes(3);
        for lane in 0..3 {
            assert_eq!(g.get(lane, "q"), 42, "register state inherited");
            g.set(lane, "addr", 3);
            assert_eq!(g.get(lane, "ra"), 99, "memory contents inherited");
        }
    }

    #[test]
    fn per_lane_memory_banks_are_disjoint() {
        let mut d = Design::new("t");
        let addr = d.input("addr", 3);
        let data = d.input("data", 8);
        let we = d.input("we", 1);
        let mem = d.memory("m", 8, 8);
        d.write_port(mem, addr, data, we);
        let ra = d.read_async(mem, addr);
        d.expose_output("ra", ra);
        let sim = Sim::new(&d);
        let mut g = sim.fork_lanes(4);
        g.set_all("addr", 2);
        g.set_all("we", 1);
        for lane in 0..4 {
            g.set(lane, "data", 10 + lane as u64);
        }
        g.step();
        g.set_all("we", 0);
        for lane in 0..4 {
            assert_eq!(g.get(lane, "ra"), 10 + lane as u64, "lane {lane}");
            assert_eq!(g.peek_mem(lane, mem, 2), 10 + lane as u64);
            assert_eq!(g.peek_mem(lane, mem, 5), 0);
        }
        // Backdoor writes stay lane-local too.
        g.poke_mem(1, mem, 5, 77);
        assert_eq!(g.peek_mem(1, mem, 5), 77);
        assert_eq!(g.peek_mem(0, mem, 5), 0);
        assert_eq!(g.dump_mem(1, mem)[5], 77);
        g.load_mem(2, mem, &[7; 8]);
        assert_eq!(g.dump_mem(2, mem), vec![7; 8]);
        assert_eq!(g.peek_mem(3, mem, 0), 0);
    }

    #[test]
    fn out_of_range_backdoor_is_quiet() {
        let mut d = Design::new("t");
        let addr = d.input("addr", 4);
        let mem = d.memory("m", 4, 8);
        let ra = d.read_async(mem, addr);
        d.expose_output("ra", ra);
        let sim = Sim::new(&d);
        let mut g = sim.fork_lanes(2);
        assert_eq!(g.peek_mem(0, mem, 100), 0);
        g.poke_mem(0, mem, 100, 7); // must not panic
        g.load_mem(0, mem, &[1, 2, 3, 4, 5, 6]); // excess words ignored
        assert_eq!(g.dump_mem(0, mem), vec![1, 2, 3, 4]);
        assert_eq!(g.dump_mem(1, mem), vec![0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "lane 3 out of range")]
    fn lane_bounds_are_checked() {
        let mut d = Design::new("t");
        let a = d.input("a", 4);
        d.label("probe", a);
        let sim = Sim::new(&d);
        let mut g = sim.fork_lanes(3);
        g.set(3, "a", 1);
    }
}
