//! A small signal tracer for debugging designs from the host application,
//! in the spirit of CHDL's “use the original application to simulate the
//! designs”.

use crate::lanes::LaneGroup;
use crate::sim::Sim;
use std::fmt::Write as _;

/// Records named signal values cycle by cycle and renders them as an
/// ASCII table.
#[derive(Debug, Default)]
pub struct Tracer {
    names: Vec<String>,
    rows: Vec<(u64, Vec<u64>)>,
}

impl Tracer {
    /// A tracer watching the given named signals.
    pub fn new(names: &[&str]) -> Self {
        Tracer {
            names: names.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Sample all watched signals from `sim` at its current cycle.
    pub fn sample(&mut self, sim: &mut Sim) {
        let values = self.names.iter().map(|n| sim.get(n)).collect();
        self.rows.push((sim.cycle(), values));
    }

    /// Sample all watched signals from one lane of a [`LaneGroup`] at
    /// the group's current cycle.
    pub fn sample_lane(&mut self, group: &mut LaneGroup, lane: usize) {
        let values = self.names.iter().map(|n| group.get(lane, n)).collect();
        self.rows.push((group.cycle(), values));
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The recorded history of one signal.
    pub fn history(&self, name: &str) -> Vec<u64> {
        let idx = self
            .names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("tracer does not watch '{name}'"));
        self.rows.iter().map(|(_, vals)| vals[idx]).collect()
    }

    /// Render the trace as a fixed-width hex table, one row per sample.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let widths: Vec<usize> = self.names.iter().map(|n| n.len().max(8)).collect();
        let _ = write!(out, "{:>8} ", "cycle");
        for (name, w) in self.names.iter().zip(&widths) {
            let _ = write!(out, "{name:>w$} ");
        }
        out.push('\n');
        for (cycle, vals) in &self.rows {
            let _ = write!(out, "{cycle:>8} ");
            for (v, w) in vals.iter().zip(&widths) {
                let hex = format!("{v:x}");
                let _ = write!(out, "{hex:>w$} ");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Design;

    fn counter_design() -> Design {
        let mut d = Design::new("t");
        let q = d.reg_feedback("c", 8, |d, q| d.inc(q));
        d.expose_output("count", q);
        d
    }

    #[test]
    fn records_history() {
        let d = counter_design();
        let mut sim = Sim::new(&d);
        let mut tr = Tracer::new(&["count"]);
        for _ in 0..5 {
            tr.sample(&mut sim);
            sim.step();
        }
        assert_eq!(tr.history("count"), [0, 1, 2, 3, 4]);
        assert_eq!(tr.len(), 5);
    }

    #[test]
    fn render_contains_header_and_values() {
        let d = counter_design();
        let mut sim = Sim::new(&d);
        let mut tr = Tracer::new(&["count"]);
        sim.run(16);
        tr.sample(&mut sim);
        let text = tr.render();
        assert!(text.contains("cycle"));
        assert!(text.contains("count"));
        assert!(
            text.contains("10"),
            "cycle 16's count renders as hex 10: {text}"
        );
    }

    #[test]
    #[should_panic(expected = "does not watch")]
    fn unknown_history_panics() {
        let tr = Tracer::new(&["a"]);
        tr.history("b");
    }
}
