//! The compiled execution engine.
//!
//! At [`Sim`](crate::sim::Sim) construction the topologically-sorted netlist
//! is lowered into a flat **struct-of-arrays micro-op stream**: one `u8`
//! opcode per combinational node plus pre-resolved operand value-indices and
//! precomputed width masks. The hot loop is a tight index-driven sweep over
//! parallel arrays — no `String` names, no enum matching on `Node`, no
//! pointer chasing into the netlist.
//!
//! On top of the dense sweep the engine maintains **input-cone level sets**
//! for incremental re-evaluation: every op knows its logic depth, and each
//! node knows which ops consume it (a CSR adjacency). `set()` marks only the
//! affected cone dirty, and `eval()` drains per-level dirty queues in depth
//! order, pruning propagation wherever a recomputed value is unchanged. The
//! common case in the TRT/DAQ pipelines — one port toggling per cycle —
//! touches a handful of ops instead of the whole graph.
//!
//! Since PR 6 the lowered stream is additionally run through a **peephole +
//! superop fusion pass** (`fuse` in [`EngineConfig`]): constant inputs fold
//! into `op_imm` immediates, single-consumer producers are absorbed into
//! their consumer as fused superops (`NAND`, `AND3`, `MUX_EQI`, `REPACK`,
//! …) executed as one dispatch, and unconsumed dsts are elided. Large
//! netlists can further opt into **adaptive level-partitioned evaluation**
//! ([`ParallelEval`]): when a level's dirty population is dense the engine
//! switches from per-op queue bookkeeping to straight-line sweeps of whole
//! level ranges, optionally split into contiguous partitions fanned out
//! across the vendored rayon worker pool (compute phase reads shared
//! pre-level values and writes per-partition buffers; commit phase writes
//! back serially in ascending op order, so results are bit-identical and
//! deterministic regardless of worker count).
//!
//! The same machinery makes clock edges incremental: committing a register
//! or a memory write marks only the consuming cone dirty, so a design where
//! a fraction of the state toggles per cycle (the TRT histogrammer: one
//! counter word out of a 64-lane bank) re-executes a handful of ops per
//! edge. [`CompiledEngine::run_batch`] is the fused fast path used by
//! `Sim::run`/`Sim::run_batch`: eval → sample → write → commit per cycle,
//! entirely inside the engine, with **zero per-edge heap allocation** — a
//! persistent scratch buffer holds sampled state and the dirty queues reach
//! a steady-state capacity that is reused across edges.
//!
//! Since PR 8 the stream can additionally be **compiled to direct-threaded
//! code** ([`DispatchMode`]): every surviving micro-op is specialized into
//! a boxed closure with its opcode, operand slots, masks, shifts and
//! immediates captured as constants (no per-op field loads, no opcode
//! `match`), and the closures are chained into straight-line per-level
//! blocks that the sweep paths execute back to back. `Auto` (the default)
//! compiles streams large enough to amortize the build cost; backdoor
//! memory pokes drop the compiled program, the next eval falls back to
//! match dispatch once, and the program is rebuilt at the end of that
//! eval. A compile ledger (blocks built, closures specialized, compile
//! time, dispatch mode taken per eval) is reported in [`EngineStats`].
//!
//! The tree-walking interpreter in `sim.rs` is retained as the reference
//! oracle (it shares the lowering and scalar-execution helpers below, so
//! every opcode has a single source of truth); `tests/engine_equiv.rs`
//! co-simulates both on random netlists.

use crate::netlist::{node_width, BinOp, Node, UnOp, WritePortDecl};
use crate::signal::mask;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// Operand slot meaning "absent" (e.g. a register without an enable).
const NONE: u32 = u32::MAX;

// Opcodes of the micro-op stream. One byte each; the dispatch in
// `exec_scalar` compiles to a dense jump table.
const OP_NOT: u8 = 0;
const OP_RED_AND: u8 = 1;
const OP_RED_OR: u8 = 2;
const OP_RED_XOR: u8 = 3;
const OP_AND: u8 = 4;
const OP_OR: u8 = 5;
const OP_XOR: u8 = 6;
const OP_ADD: u8 = 7;
const OP_SUB: u8 = 8;
const OP_MUL: u8 = 9;
const OP_EQ: u8 = 10;
const OP_NE: u8 = 11;
const OP_LT: u8 = 12;
const OP_LE: u8 = 13;
const OP_SHL: u8 = 14;
const OP_SHR: u8 = 15;
const OP_MUX: u8 = 16;
const OP_SLICE: u8 = 17;
const OP_CONCAT: u8 = 18;
const OP_READ_ASYNC: u8 = 19;
// ---- fused superops (emitted only by the fusion pass) ----
/// `!(a & b) & imm`
const OP_NAND: u8 = 20;
/// `!(a | b) & imm`
const OP_NOR: u8 = 21;
/// `!(a ^ b) & imm`
const OP_XNOR: u8 = 22;
/// `a & !b & imm` (imm is the absorbed NOT's mask)
const OP_ANDN: u8 = 23;
/// `a & b & c`
const OP_AND3: u8 = 24;
/// `a | b | c`
const OP_OR3: u8 = 25;
/// `a ^ b ^ c`
const OP_XOR3: u8 = 26;
/// `a & imm`
const OP_AND_IMM: u8 = 27;
/// `a | imm`
const OP_OR_IMM: u8 = 28;
/// `a ^ imm`
const OP_XOR_IMM: u8 = 29;
/// `(a + imm) & mask(c)` — subtract-constant folds in via two's complement
const OP_ADD_IMM: u8 = 30;
/// `a == imm`
const OP_EQ_IMM: u8 = 31;
/// `a != imm`
const OP_NE_IMM: u8 = 32;
/// `if a == imm { b } else { c }` — compare-and-select
const OP_MUX_EQI: u8 = 33;
/// `(a << c) & imm`
const OP_SHL_IMM: u8 = 34;
/// `((a>>l1 & mask(w1)) << w2) | (a>>l2 & mask(w2))` with `l1|l2<<8|w1<<16|w2<<24`
/// packed into `op_c` — a SLICE+CONCAT re-pack in one dispatch.
const OP_REPACK: u8 = 35;
/// `if (a >> imm) & 1 { b } else { c }` — a mux whose select was a 1-bit
/// slice (the shape every balanced select tree is built from).
const OP_MUX_BIT: u8 = 36;
/// `a & ((b >> c) & imm)` — an AND with an absorbed bit-extract on one side.
const OP_ANDSHR: u8 = 37;
/// `(((a << s1) | b) << s2) | c` with `s1|s2<<8` packed into `imm` — two
/// CONCATs of a left-fold `cat` chain in one dispatch.
const OP_CAT3: u8 = 38;
/// `if a != 0 { (b + imm) & mask(c) } else { b }` — a guarded counter
/// increment (mux whose taken arm adds a constant to the other arm).
const OP_INC_IF: u8 = 39;
/// `vals[sel_tab[c + ((a >> b) & imm)]]` — a complete balanced `MUX_BIT`
/// select tree collapsed into one table-lookup dispatch. `b` is the
/// selector shift (0 for trees bottoming out at bit 0), `c` indexes the
/// first of `imm + 1` leaf node ids in the engine's `sel_tab` side table.
/// Never reaches `exec_scalar`: every execution path gathers it specially.
const OP_SELECT: u8 = 40;

/// Mnemonic for an opcode (superop histograms, diagnostics).
fn op_name(code: u8) -> &'static str {
    match code {
        OP_NOT => "not",
        OP_RED_AND => "red_and",
        OP_RED_OR => "red_or",
        OP_RED_XOR => "red_xor",
        OP_AND => "and",
        OP_OR => "or",
        OP_XOR => "xor",
        OP_ADD => "add",
        OP_SUB => "sub",
        OP_MUL => "mul",
        OP_EQ => "eq",
        OP_NE => "ne",
        OP_LT => "lt",
        OP_LE => "le",
        OP_SHL => "shl",
        OP_SHR => "shr",
        OP_MUX => "mux",
        OP_SLICE => "slice",
        OP_CONCAT => "concat",
        OP_READ_ASYNC => "read_async",
        OP_NAND => "nand",
        OP_NOR => "nor",
        OP_XNOR => "xnor",
        OP_ANDN => "andn",
        OP_AND3 => "and3",
        OP_OR3 => "or3",
        OP_XOR3 => "xor3",
        OP_AND_IMM => "and_imm",
        OP_OR_IMM => "or_imm",
        OP_XOR_IMM => "xor_imm",
        OP_ADD_IMM => "add_imm",
        OP_EQ_IMM => "eq_imm",
        OP_NE_IMM => "ne_imm",
        OP_MUX_EQI => "mux_eqi",
        OP_SHL_IMM => "shl_imm",
        OP_REPACK => "repack",
        OP_MUX_BIT => "mux_bit",
        OP_ANDSHR => "andshr",
        OP_CAT3 => "cat3",
        OP_INC_IF => "inc_if",
        OP_SELECT => "select",
        _ => "invalid",
    }
}

#[inline(always)]
fn mask64(w: u32) -> u64 {
    mask(w as u8)
}

/// Unpack an `OP_REPACK` descriptor: `(l1, l2, w2, m1, m2)`.
#[inline(always)]
fn repack_parts(c: u32) -> (u32, u32, u32, u64, u64) {
    let (l1, l2) = (c & 0xff, (c >> 8) & 0xff);
    let (w1, w2) = ((c >> 16) & 0xff, c >> 24);
    (l1, l2, w2, mask64(w1), mask64(w2))
}

// ---- public configuration & statistics -----------------------------------

/// Parallel / adaptive evaluation policy for the compiled engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParallelEval {
    /// Always the serial per-op incremental path (the PR 1 behaviour).
    Off,
    /// Adaptive (the default): netlists below an op-count threshold keep
    /// the serial fast path untouched; larger ones switch to dense
    /// level-range sweeps when dirty populations are dense, partitioned
    /// across available worker threads.
    #[default]
    Auto,
    /// Adaptive with exactly this many partitions per level regardless of
    /// netlist size (useful for tests and benchmarks).
    Force(usize),
}

/// How the levelized micro-op stream is dispatched at eval time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Per-op `match` dispatch through the shared scalar-execution helper
    /// (the PR 1/PR 6 engine).
    Match,
    /// Direct-threaded dispatch: every op is compiled into a specialized
    /// closure (opcode, operand slots, masks and immediates captured as
    /// constants) and the closures are chained into straight-line
    /// per-level blocks.
    Threaded,
    /// Threaded above a stream-size threshold, match below it (the
    /// default): tiny cones never amortize the compile cost.
    #[default]
    Auto,
}

/// Knobs controlling how a design is lowered onto the compiled engine.
///
/// The default (`fuse` on, [`ParallelEval::Auto`], [`DispatchMode::Auto`])
/// is what `Sim::new` uses; `Sim::with_config` / `Fpga`-level integrators
/// can override, and [`EngineConfig::set_global`] changes the process-wide
/// default consulted by `Sim::new` (the `examples/serving.rs
/// --partitioned` / `--dispatch` knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Run the peephole + superop fusion pass over the lowered stream.
    pub fuse: bool,
    /// Partitioned / adaptive evaluation policy.
    pub parallel: ParallelEval,
    /// Dispatch backend: per-op `match` or compiled closure chains.
    pub dispatch: DispatchMode,
    /// Force full-stream sweeps on every eval, skipping dirty tracking
    /// entirely. For workloads known to re-evaluate most of the fabric
    /// each cycle (spill bursts, full-bank DAQ scans) the per-op queue
    /// bookkeeping costs more than the ops; this pins the engine to the
    /// straight-line sweep the dispatch tiers compile for. Sparse
    /// workloads regress badly under it — leave off unless profiled.
    pub streaming: bool,
    /// Run the netlist-level optimization pipeline (`crate::nir`) before
    /// lowering: constant folding, common-subexpression sharing and
    /// dead-gate elimination on the node graph itself, so every
    /// downstream tier (fusion, dispatch, lanes) sees a smaller stream.
    /// On by default; `Sim` skips it in interpreter mode so the oracle
    /// always walks the elaborated tree verbatim.
    pub netopt: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            fuse: true,
            parallel: ParallelEval::Auto,
            dispatch: DispatchMode::Auto,
            streaming: false,
            netopt: true,
        }
    }
}

const PAR_OFF: u8 = 0;
const PAR_AUTO: u8 = 1;
const PAR_FORCE: u8 = 2;
const DISP_MATCH: u8 = 0;
const DISP_THREADED: u8 = 1;
const DISP_AUTO: u8 = 2;
static GLOBAL_FUSE: AtomicBool = AtomicBool::new(true);
static GLOBAL_PAR: AtomicU8 = AtomicU8::new(PAR_AUTO);
static GLOBAL_PARTS: AtomicUsize = AtomicUsize::new(2);
static GLOBAL_DISPATCH: AtomicU8 = AtomicU8::new(DISP_AUTO);
static GLOBAL_STREAMING: AtomicBool = AtomicBool::new(false);
static GLOBAL_NETOPT: AtomicBool = AtomicBool::new(true);

impl EngineConfig {
    /// Fusion on, parallel evaluation off, match dispatch — the serial
    /// fused engine (the PR 6 shape, used as a bench baseline; dispatch
    /// stays `Match` so speedup floors measure one change at a time).
    pub fn serial() -> Self {
        EngineConfig {
            fuse: true,
            parallel: ParallelEval::Off,
            dispatch: DispatchMode::Match,
            streaming: false,
            netopt: true,
        }
    }

    /// Fusion, parallel evaluation and netlist optimization all off, match
    /// dispatch — the raw PR 1 lowering (benchmark baseline).
    pub fn unfused() -> Self {
        EngineConfig {
            fuse: false,
            parallel: ParallelEval::Off,
            dispatch: DispatchMode::Match,
            streaming: false,
            netopt: false,
        }
    }

    /// Set the process-wide default consulted by `Sim::new` for sims
    /// created afterwards. Existing sims are unaffected.
    pub fn set_global(cfg: EngineConfig) {
        GLOBAL_FUSE.store(cfg.fuse, Ordering::Relaxed);
        let (mode, parts) = match cfg.parallel {
            ParallelEval::Off => (PAR_OFF, 0),
            ParallelEval::Auto => (PAR_AUTO, 0),
            ParallelEval::Force(p) => (PAR_FORCE, p),
        };
        GLOBAL_PARTS.store(parts, Ordering::Relaxed);
        GLOBAL_PAR.store(mode, Ordering::Relaxed);
        let disp = match cfg.dispatch {
            DispatchMode::Match => DISP_MATCH,
            DispatchMode::Threaded => DISP_THREADED,
            DispatchMode::Auto => DISP_AUTO,
        };
        GLOBAL_DISPATCH.store(disp, Ordering::Relaxed);
        GLOBAL_STREAMING.store(cfg.streaming, Ordering::Relaxed);
        GLOBAL_NETOPT.store(cfg.netopt, Ordering::Relaxed);
    }

    /// The current process-wide default (see [`EngineConfig::set_global`]).
    pub fn global() -> EngineConfig {
        let parallel = match GLOBAL_PAR.load(Ordering::Relaxed) {
            PAR_OFF => ParallelEval::Off,
            PAR_FORCE => ParallelEval::Force(GLOBAL_PARTS.load(Ordering::Relaxed).max(1)),
            _ => ParallelEval::Auto,
        };
        let dispatch = match GLOBAL_DISPATCH.load(Ordering::Relaxed) {
            DISP_MATCH => DispatchMode::Match,
            DISP_THREADED => DispatchMode::Threaded,
            _ => DispatchMode::Auto,
        };
        EngineConfig {
            fuse: GLOBAL_FUSE.load(Ordering::Relaxed),
            parallel,
            dispatch,
            streaming: GLOBAL_STREAMING.load(Ordering::Relaxed),
            netopt: GLOBAL_NETOPT.load(Ordering::Relaxed),
        }
    }
}

/// Stream statistics reported by the compiled engine after lowering —
/// exposed through `Sim::engine_stats` and tracked in the bench artifacts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Micro-ops lowered from the netlist before any transformation.
    pub ops_lowered: usize,
    /// Micro-ops in the final stream after fusion / elision.
    pub ops_final: usize,
    /// Ops whose inputs were all compile-time constants, folded away.
    pub consts_folded: usize,
    /// Ops rewritten in place to an immediate form (`x & imm`, `a + imm`…).
    pub imm_rewrites: usize,
    /// Producer ops absorbed into a consuming superop.
    pub ops_fused: usize,
    /// Dead ops elided (no surviving consumer, not externally referenced).
    pub ops_elided: usize,
    /// Logic levels in the final stream.
    pub levels: usize,
    /// Partitions per level used by partitioned evaluation (1 = serial).
    pub partitions: usize,
    /// Threaded-dispatch compile passes run: the eager build at lowering
    /// time plus every rebuild after a backdoor poke or lane-count change.
    pub compiles: usize,
    /// Straight-line per-level blocks built across all compiles.
    pub blocks_built: usize,
    /// Per-op specialized closures built across all compiles (scalar and
    /// laned programs both count).
    pub closures_specialized: usize,
    /// Wall-clock nanoseconds spent building closure chains. The one
    /// non-deterministic ledger field — determinism fingerprints must
    /// exclude it.
    pub compile_ns: u64,
    /// Evals that dispatched through a compiled threaded program.
    pub evals_threaded: u64,
    /// Evals that dispatched through the per-op `match` path (includes
    /// the fallback eval right after a poke invalidates the program).
    pub evals_match: u64,
    /// Final-stream population of each fused superop mnemonic.
    pub superops: Vec<(&'static str, usize)>,
    /// Full final-stream opcode histogram (superops and plain ops alike),
    /// sorted by descending count.
    pub opcodes: Vec<(&'static str, usize)>,
    /// Live netlist nodes before the pre-lowering netopt pipeline ran
    /// (0 when netopt was off for this sim).
    pub netopt_nodes_before: usize,
    /// Live netlist nodes handed to lowering after the netopt pipeline.
    pub netopt_nodes_after: usize,
    /// Rewrites applied by the netopt constant-folding pass (definitions
    /// folded to constants plus identity-simplified operand edges).
    pub netopt_consts_folded: usize,
    /// Operand edges the netopt CSE pass redirected onto shared structure.
    pub netopt_subexprs_shared: usize,
    /// Gates the netopt liveness pass eliminated before lowering.
    pub netopt_dead_gates: usize,
    /// Fixed-point iterations the netopt pass manager ran (0 = off).
    pub netopt_iterations: usize,
}

// ---- shared lowering & scalar execution ----------------------------------
//
// These two helpers are the single source of truth for opcode semantics:
// the compiled engine, the tree-walking interpreter in `sim.rs`, the
// on-demand observability path for fused-away nodes, and the constant
// folder in `opt.rs` all lower and execute through them.

/// One lowered micro-op, before it is appended to the stream.
pub(crate) struct LoweredOp {
    pub code: u8,
    pub a: u32,
    pub b: u32,
    pub c: u32,
    pub imm: u64,
}

/// Lower one combinational node. Returns `None` for value sources (inputs,
/// constants) and state nodes (registers, sync read ports), which emit no
/// op.
pub(crate) fn lower_op(nodes: &[Node], idx: u32) -> Option<LoweredOp> {
    let (code, a, b, c, imm) = match &nodes[idx as usize] {
        Node::Unop { op, a, width } => {
            let aw = node_width(&nodes[*a as usize]);
            match op {
                UnOp::Not => (OP_NOT, *a, NONE, NONE, mask(*width)),
                // RED_AND compares against the operand's all-ones value.
                UnOp::ReduceAnd => (OP_RED_AND, *a, NONE, NONE, mask(aw)),
                UnOp::ReduceOr => (OP_RED_OR, *a, NONE, NONE, 0),
                UnOp::ReduceXor => (OP_RED_XOR, *a, NONE, NONE, 0),
            }
        }
        Node::Binop { op, a, b, width } => {
            let m = mask(*width);
            let aw = node_width(&nodes[*a as usize]) as u32;
            match op {
                BinOp::And => (OP_AND, *a, *b, NONE, 0),
                BinOp::Or => (OP_OR, *a, *b, NONE, 0),
                BinOp::Xor => (OP_XOR, *a, *b, NONE, 0),
                BinOp::Add => (OP_ADD, *a, *b, NONE, m),
                BinOp::Sub => (OP_SUB, *a, *b, NONE, m),
                BinOp::Mul => (OP_MUL, *a, *b, NONE, m),
                BinOp::Eq => (OP_EQ, *a, *b, NONE, 0),
                BinOp::Ne => (OP_NE, *a, *b, NONE, 0),
                BinOp::Lt => (OP_LT, *a, *b, NONE, 0),
                BinOp::Le => (OP_LE, *a, *b, NONE, 0),
                // Shifts also carry the operand width for the ≥width check.
                BinOp::Shl => (OP_SHL, *a, *b, aw, m),
                BinOp::Shr => (OP_SHR, *a, *b, aw, 0),
            }
        }
        Node::Mux { sel, t, f, .. } => (OP_MUX, *sel, *t, *f, 0),
        Node::Slice { a, lo, width } => (OP_SLICE, *a, NONE, *lo as u32, mask(*width)),
        Node::Concat { hi, lo, .. } => {
            let lo_w = node_width(&nodes[*lo as usize]) as u32;
            (OP_CONCAT, *hi, *lo, lo_w, 0)
        }
        Node::ReadPort {
            mem,
            addr,
            sync: false,
            ..
        } => (OP_READ_ASYNC, *addr, NONE, *mem, 0),
        Node::Input { .. }
        | Node::Const { .. }
        | Node::Reg { .. }
        | Node::ReadPort { sync: true, .. } => return None,
    };
    Some(LoweredOp { code, a, b, c, imm })
}

/// Execute one micro-op given its operand fetch and memory read closures.
/// `val` is called once per value operand actually consumed; `mem` is
/// called as `mem(mem_index, address)` (out-of-range reads return 0 at the
/// caller's discretion).
#[inline(always)]
pub(crate) fn exec_scalar(
    code: u8,
    a: u32,
    b: u32,
    c: u32,
    imm: u64,
    val: &mut impl FnMut(u32) -> u64,
    mem: &mut impl FnMut(u32, u64) -> u64,
) -> u64 {
    match code {
        OP_NOT => !val(a) & imm,
        OP_RED_AND => u64::from(val(a) == imm),
        OP_RED_OR => u64::from(val(a) != 0),
        OP_RED_XOR => u64::from(val(a).count_ones() & 1 == 1),
        OP_AND => val(a) & val(b),
        OP_OR => val(a) | val(b),
        OP_XOR => val(a) ^ val(b),
        OP_ADD => val(a).wrapping_add(val(b)) & imm,
        OP_SUB => val(a).wrapping_sub(val(b)) & imm,
        OP_MUL => val(a).wrapping_mul(val(b)) & imm,
        OP_EQ => u64::from(val(a) == val(b)),
        OP_NE => u64::from(val(a) != val(b)),
        OP_LT => u64::from(val(a) < val(b)),
        OP_LE => u64::from(val(a) <= val(b)),
        OP_SHL => {
            let sh = val(b);
            if sh >= c as u64 {
                0
            } else {
                (val(a) << sh) & imm
            }
        }
        OP_SHR => {
            let sh = val(b);
            if sh >= c as u64 {
                0
            } else {
                val(a) >> sh
            }
        }
        OP_MUX => {
            if val(a) != 0 {
                val(b)
            } else {
                val(c)
            }
        }
        OP_SLICE => (val(a) >> c) & imm,
        OP_CONCAT => (val(a) << c) | val(b),
        OP_READ_ASYNC => {
            let addr = val(a);
            mem(c, addr)
        }
        OP_NAND => !(val(a) & val(b)) & imm,
        OP_NOR => !(val(a) | val(b)) & imm,
        OP_XNOR => !(val(a) ^ val(b)) & imm,
        OP_ANDN => val(a) & !val(b) & imm,
        OP_AND3 => val(a) & val(b) & val(c),
        OP_OR3 => val(a) | val(b) | val(c),
        OP_XOR3 => val(a) ^ val(b) ^ val(c),
        OP_AND_IMM => val(a) & imm,
        OP_OR_IMM => val(a) | imm,
        OP_XOR_IMM => val(a) ^ imm,
        OP_ADD_IMM => val(a).wrapping_add(imm) & mask64(c),
        OP_EQ_IMM => u64::from(val(a) == imm),
        OP_NE_IMM => u64::from(val(a) != imm),
        OP_MUX_EQI => {
            if val(a) == imm {
                val(b)
            } else {
                val(c)
            }
        }
        OP_SHL_IMM => (val(a) << c) & imm,
        OP_REPACK => {
            let (l1, l2, w2, m1, m2) = repack_parts(c);
            (((val(a) >> l1) & m1) << w2) | ((val(b) >> l2) & m2)
        }
        OP_MUX_BIT => {
            if (val(a) >> imm) & 1 != 0 {
                val(b)
            } else {
                val(c)
            }
        }
        OP_ANDSHR => val(a) & ((val(b) >> c) & imm),
        OP_CAT3 => {
            let (s1, s2) = (imm & 0xff, (imm >> 8) & 0xff);
            (((val(a) << s1) | val(b)) << s2) | val(c)
        }
        OP_INC_IF => {
            let q = val(b);
            if val(a) != 0 {
                q.wrapping_add(imm) & mask64(c)
            } else {
                q
            }
        }
        _ => unreachable!("invalid opcode"),
    }
}

/// Visit the value-operand node indices of an op given its fields.
#[inline]
fn visit_code_operands(code: u8, a: u32, b: u32, c: u32, mut f: impl FnMut(u32)) {
    f(a);
    match code {
        OP_AND | OP_OR | OP_XOR | OP_ADD | OP_SUB | OP_MUL | OP_EQ | OP_NE | OP_LT | OP_LE
        | OP_SHL | OP_SHR | OP_CONCAT | OP_NAND | OP_NOR | OP_XNOR | OP_ANDN | OP_REPACK
        | OP_ANDSHR | OP_INC_IF => f(b),
        OP_MUX | OP_MUX_EQI | OP_MUX_BIT | OP_AND3 | OP_OR3 | OP_XOR3 | OP_CAT3 => {
            f(b);
            f(c);
        }
        _ => {}
    }
}

// ---- adaptive / partitioned evaluation tuning ----------------------------

/// A level whose entire op range is queued cascades into straight-line
/// execution of everything at and below it, skipping queue bookkeeping —
/// but only when the range is big enough for bookkeeping to matter.
const CASCADE_MIN_SPAN: usize = 128;
/// A level at least half-queued is swept densely (with change detection)
/// instead of drained per-op, when at least this many ops wide.
const DENSE_MIN_SPAN: usize = 64;
/// Minimum ops in a sweep before it is fanned out across partitions.
const PAR_MIN_OPS: usize = 2048;
/// `ParallelEval::Auto` engages the adaptive sweep heuristics at this op
/// count; below it the serial per-op fast path is untouched.
const ADAPT_MIN_OPS: usize = 256;
/// Under `Auto`, netlists at least this big also fan dense sweeps out
/// across the worker pool (smaller ones sweep single-partition).
const AUTO_MIN_OPS: usize = 4096;
/// Partition-count ceiling under `Auto` (diminishing returns past this).
const MAX_AUTO_PARTS: usize = 8;
/// A straight-line sweep of the remaining stream replaces queue draining
/// when at least `1/SWEEP_DENSITY` of it is already queued — per-op queue
/// bookkeeping (flag writes, successor walks, dedupe checks) costs about
/// this multiple of a raw execute-and-store.
const SWEEP_DENSITY: usize = 3;
/// This many *consecutive* density escapes lock the engine into steady-state
/// sweep mode: per-edge consumer walks and queue pushes are replaced by an
/// O(1) shallowest-dirty-level update, since the next eval straight-lines
/// the stream anyway.
const SWEEP_ENTER: u32 = 4;
/// Sweeps held in steady-state mode before dropping back to fine-grained
/// dirty tracking for one eval to re-measure density (hysteresis: one
/// bookkeeping-paying cycle per `SWEEP_HOLD` amortizes to noise).
const SWEEP_HOLD: u32 = 64;
/// `DispatchMode::Auto` compiles the stream to threaded closure chains at
/// this op count; below it the per-op `match` path runs unchanged (one
/// boxed closure per op never amortizes on tiny cones).
const THREADED_MIN_OPS: usize = 128;
/// Minimum same-opcode run length that earns a specialized run block;
/// shorter segments are merged into packed-dispatch tail blocks (a
/// singleton "loop" would cost more in block-call overhead than its
/// hoisted dispatch saves).
const RUN_MIN_LEN: usize = 8;
/// Minimum length of a serial same-opcode dependency chain (each op
/// consuming the previous op's destination in the same operand position)
/// that earns a dedicated chain run — a loop carrying the chained value
/// in a register with the opcode dispatch hoisted out entirely.
const CHAIN_MIN: usize = 4;

/// One partition's compute buffer for two-phase parallel sweeps: phase A
/// executes `ops[lo..hi]` (a range of op indices, or a slice of a dirty
/// queue) against the shared pre-level values and stages results in `out`;
/// phase B commits `out` serially in ascending op order.
#[derive(Debug, Clone, Default)]
struct PartBuf {
    lo: usize,
    hi: usize,
    out: Vec<u64>,
}

// ---- direct-threaded dispatch (compiled closure chains) -------------------

/// Borrowed execution context handed to threaded per-level blocks: the
/// per-node value array plus the memory banks, both owned by `Sim`.
pub(crate) struct ExecState<'a> {
    /// Per-node values.
    pub vals: &'a mut [u64],
    /// Memory contents, one `Vec` per memory.
    pub mems: &'a [Vec<u64>],
}

/// One compiled op: a pure compute closure specialized to its opcode with
/// operand slots, masks, shifts and immediates captured as constants. The
/// *caller* stores the result (and runs change detection where the path
/// needs it), so one closure serves the incremental, dense, and
/// partitioned paths alike — including rayon workers, hence `Send + Sync`.
type OpFn = Box<dyn Fn(&[u64], &[Vec<u64>]) -> u64 + Send + Sync>;

/// One compiled run block: straight-line execution of a same-opcode op
/// run inside one level, storing every destination unconditionally (the
/// raw-sweep contract). The opcode match is hoisted outside the run's
/// loop, so the loop body is branch-free specialized code.
type BlockFn = Box<dyn Fn(&mut ExecState) + Send + Sync>;

/// One compiled laned op: runs the op's `LANE_CHUNK`-chunked inner loop
/// across every lane with row offsets pre-scaled by the lane count,
/// returning whether any lane's destination changed.
type LaneOpFn = Box<dyn Fn(&mut LaneState) -> bool + Send + Sync>;

/// The threaded program for one compiled stream: per-op closures for the
/// incremental and partitioned paths, plus the dense sweep plan — ops of
/// each level sorted by opcode and chained into *run blocks* (one
/// specialized loop per same-opcode run, the "superinstruction" form of
/// direct threading). Sorting within a level is safe: levelization
/// guarantees same-level ops never consume each other's destinations.
struct ThreadedProgram {
    /// `(dst, compute)` per op, in stream (level) order.
    ops: Arc<Vec<(u32, OpFn)>>,
    /// Run blocks, level-major; each executes one same-opcode run.
    runs: Vec<BlockFn>,
    /// Level `l`'s run blocks are `runs[run_start[l]..run_start[l + 1]]`.
    run_start: Vec<u32>,
}

/// The threaded program for the lane path, specialized to one lane count
/// (row offsets `node * lanes` are captured constants, so a group forked
/// with a different width forces a rebuild).
struct LaneProgram {
    ops: Vec<LaneOpFn>,
    lanes: usize,
}

/// Cache slot for a compiled program. Cloning an engine (design forks)
/// drops the program — the clone rebuilds on its next eval — and `Debug`
/// prints only presence, keeping `CompiledEngine`'s derives intact.
struct ProgramCache<P>(Option<P>);

impl<P> Default for ProgramCache<P> {
    fn default() -> Self {
        ProgramCache(None)
    }
}

impl<P> Clone for ProgramCache<P> {
    fn clone(&self) -> Self {
        ProgramCache(None)
    }
}

impl<P> std::fmt::Debug for ProgramCache<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ProgramCache")
            .field(&self.0.is_some())
            .finish()
    }
}

/// Build a one-operand compute closure with the operand slot captured.
fn th1(a: u32, f: impl Fn(u64) -> u64 + Send + Sync + 'static) -> OpFn {
    let a = a as usize;
    Box::new(move |v, _| f(v[a]))
}

/// Build a two-operand compute closure with both slots captured.
fn th2(a: u32, b: u32, f: impl Fn(u64, u64) -> u64 + Send + Sync + 'static) -> OpFn {
    let (a, b) = (a as usize, b as usize);
    Box::new(move |v, _| f(v[a], v[b]))
}

/// Build a three-operand compute closure with all slots captured.
fn th3(a: u32, b: u32, c: u32, f: impl Fn(u64, u64, u64) -> u64 + Send + Sync + 'static) -> OpFn {
    let (a, b, c) = (a as usize, b as usize, c as usize);
    Box::new(move |v, _| f(v[a], v[b], v[c]))
}

// Run-block builders: each takes the packed per-op slot/parameter columns
// of one same-opcode run and a pure element function, and returns a block
// whose loop inlines `f` — the opcode dispatch happened at compile time,
// so the loop body carries no match and loads no opcode. Parameter
// columns an element function ignores are dead loads the optimizer
// removes after inlining, so the three shapes cover every parameterized
// opcode without per-opcode plumbing.

/// Whether every op in the run reads the same slot here — a *broadcast*
/// column (one fanned-out net feeding the whole run, e.g. a hit address
/// driving every lane's decoder). The compile-time check lets the run
/// loop hoist that operand's load out entirely.
fn broadcast(col: &[u32]) -> bool {
    col.windows(2).all(|w| w[0] == w[1])
}

/// Serial chain run: `acc = f(acc, v[y[k]], v[z[k]], p[k]); v[dst[k]] = acc`,
/// seeded with `acc = v[seed]`. The chained value never round-trips
/// through the value array — each hop forwards it in a register, cutting
/// the store-to-load latency out of the dependency chain that makes
/// serial reductions the critical path of a sweep.
fn ch3(
    seed: u32,
    dst: Vec<u32>,
    y: Vec<u32>,
    z: Vec<u32>,
    p: Vec<u64>,
    f: impl Fn(u64, u64, u64, u64) -> u64 + Send + Sync + 'static,
) -> BlockFn {
    let seed = seed as usize;
    Box::new(move |st: &mut ExecState| {
        let v = &mut *st.vals;
        let mut acc = v[seed];
        for ((&d, &y), (&z, &p)) in dst.iter().zip(&y).zip(z.iter().zip(&p)) {
            acc = f(acc, v[y as usize], v[z as usize], p);
            v[d as usize] = acc;
        }
    })
}

/// One-operand run: `dst[k] = f(v[a[k]], p[k], q[k])`. A broadcast `a`
/// column is hoisted to a single load before the loop.
fn rn1(
    dst: Vec<u32>,
    a: Vec<u32>,
    p: Vec<u64>,
    q: Vec<u64>,
    f: impl Fn(u64, u64, u64) -> u64 + Send + Sync + 'static,
) -> BlockFn {
    if broadcast(&a) {
        let a0 = a[0] as usize;
        return Box::new(move |st: &mut ExecState| {
            let v = &mut *st.vals;
            let x = v[a0];
            for (&d, (&p, &q)) in dst.iter().zip(p.iter().zip(&q)) {
                v[d as usize] = f(x, p, q);
            }
        });
    }
    Box::new(move |st: &mut ExecState| {
        let v = &mut *st.vals;
        for ((&d, &a), (&p, &q)) in dst.iter().zip(&a).zip(p.iter().zip(&q)) {
            v[d as usize] = f(v[a as usize], p, q);
        }
    })
}

/// Two-operand run: `dst[k] = f(v[a[k]], v[b[k]], p[k], q[k])`. Broadcast
/// operand columns (either or both) are hoisted to single loads.
fn rn2(
    dst: Vec<u32>,
    a: Vec<u32>,
    b: Vec<u32>,
    p: Vec<u64>,
    q: Vec<u64>,
    f: impl Fn(u64, u64, u64, u64) -> u64 + Send + Sync + 'static,
) -> BlockFn {
    match (broadcast(&a), broadcast(&b)) {
        (true, true) => {
            let (a0, b0) = (a[0] as usize, b[0] as usize);
            Box::new(move |st: &mut ExecState| {
                let v = &mut *st.vals;
                let (x, y) = (v[a0], v[b0]);
                for (&d, (&p, &q)) in dst.iter().zip(p.iter().zip(&q)) {
                    v[d as usize] = f(x, y, p, q);
                }
            })
        }
        (true, false) => {
            let a0 = a[0] as usize;
            Box::new(move |st: &mut ExecState| {
                let v = &mut *st.vals;
                let x = v[a0];
                for ((&d, &b), (&p, &q)) in dst.iter().zip(&b).zip(p.iter().zip(&q)) {
                    v[d as usize] = f(x, v[b as usize], p, q);
                }
            })
        }
        (false, true) => {
            let b0 = b[0] as usize;
            Box::new(move |st: &mut ExecState| {
                let v = &mut *st.vals;
                let y = v[b0];
                for ((&d, &a), (&p, &q)) in dst.iter().zip(&a).zip(p.iter().zip(&q)) {
                    v[d as usize] = f(v[a as usize], y, p, q);
                }
            })
        }
        (false, false) => Box::new(move |st: &mut ExecState| {
            let v = &mut *st.vals;
            for ((&d, &a), (&b, (&p, &q))) in dst.iter().zip(&a).zip(b.iter().zip(p.iter().zip(&q)))
            {
                v[d as usize] = f(v[a as usize], v[b as usize], p, q);
            }
        }),
    }
}

/// Three-operand run: `dst[k] = f(v[a[k]], v[b[k]], v[c[k]], p[k], q[k])`.
fn rn3(
    dst: Vec<u32>,
    a: Vec<u32>,
    b: Vec<u32>,
    c: Vec<u32>,
    p: Vec<u64>,
    q: Vec<u64>,
    f: impl Fn(u64, u64, u64, u64, u64) -> u64 + Send + Sync + 'static,
) -> BlockFn {
    Box::new(move |st: &mut ExecState| {
        let v = &mut *st.vals;
        for ((&d, &a), (&b, (&c, (&p, &q)))) in dst
            .iter()
            .zip(&a)
            .zip(b.iter().zip(c.iter().zip(p.iter().zip(&q))))
        {
            v[d as usize] = f(v[a as usize], v[b as usize], v[c as usize], p, q);
        }
    })
}

/// Build a one-operand laned closure (row offsets pre-scaled).
fn ln1(d0: usize, a0: usize, f: impl Fn(u64) -> u64 + Send + Sync + 'static) -> LaneOpFn {
    Box::new(move |st| lane_map1(&mut st.vals, d0, a0, st.lanes, &f))
}

/// Build a two-operand laned closure (row offsets pre-scaled).
fn ln2(
    d0: usize,
    a0: usize,
    b0: usize,
    f: impl Fn(u64, u64) -> u64 + Send + Sync + 'static,
) -> LaneOpFn {
    Box::new(move |st| lane_map2(&mut st.vals, d0, a0, b0, st.lanes, &f))
}

/// Build a three-operand laned closure (row offsets pre-scaled).
fn ln3(
    d0: usize,
    a0: usize,
    b0: usize,
    c0: usize,
    f: impl Fn(u64, u64, u64) -> u64 + Send + Sync + 'static,
) -> LaneOpFn {
    Box::new(move |st| lane_map3(&mut st.vals, d0, a0, b0, c0, st.lanes, &f))
}

/// The lowered form of one design: micro-op stream, level sets, consumer
/// adjacency and the state-commit plan. Operates on the `vals`/`mems`
/// storage owned by `Sim`.
#[derive(Debug, Clone)]
pub(crate) struct CompiledEngine {
    // ---- micro-op stream (struct of arrays, sorted by level) ----
    op_code: Vec<u8>,
    op_dst: Vec<u32>,
    op_a: Vec<u32>,
    op_b: Vec<u32>,
    /// Third operand / small auxiliary: mux else-branch, slice shift,
    /// concat lo-width, shift operand width, read-port memory index,
    /// repack descriptor.
    op_c: Vec<u32>,
    /// Precomputed mask or immediate (opcode-dependent).
    op_imm: Vec<u64>,
    op_level: Vec<u32>,
    /// Leaf node ids of collapsed select trees: an `OP_SELECT` op reads
    /// `sel_tab[op_c .. op_c + op_imm + 1]` as its lookup table.
    sel_tab: Vec<u32>,

    // ---- incremental re-evaluation ----
    /// Per-op "queued" flag (deduplicates queue pushes).
    op_dirty: Vec<bool>,
    /// Dirty op indices, one queue per logic level.
    level_queues: Vec<Vec<u32>>,
    /// Everything needs recomputing (initial state / after batch).
    full_dirty: bool,
    /// At least one queue is non-empty.
    any_dirty: bool,
    /// CSR: ops consuming each node's value (`cons_start[n]..cons_start[n+1]`).
    cons_start: Vec<u32>,
    cons: Vec<u32>,
    /// Async read-port ops per memory (recompute targets after pokes/writes).
    mem_cons: Vec<Vec<u32>>,

    // ---- adaptive / partitioned evaluation ----
    /// Op-index boundary of each level: level `l` is
    /// `level_start[l]..level_start[l+1]` (len = levels + 1).
    level_start: Vec<u32>,
    /// Partitions per dense sweep (1 = serial).
    parts: usize,
    /// Dense/cascade sweep heuristics enabled.
    adaptive: bool,
    /// Pinned full-stream sweeps (`EngineConfig::streaming`): every eval
    /// straight-lines the whole stream, no dirty tracking consulted.
    streaming: bool,
    /// Persistent per-partition compute buffers.
    par_bufs: Vec<PartBuf>,
    /// Per-node minimum consumer level (`levels` when unconsumed) — lets
    /// sweep-mode marking run in O(1) instead of walking the consumer CSR.
    node_min_lvl: Vec<u32>,
    /// Per-memory minimum async-read-port level (same purpose).
    mem_min_lvl: Vec<u32>,
    /// Steady-state streaming: marks collapse to a shallowest-level update
    /// and every eval straight-lines the stream from there.
    sweep_mode: bool,
    /// Shallowest level marked since the last sweep (`levels` when clean).
    sweep_first: u32,
    /// Consecutive density escapes (sweep mode engages at `SWEEP_ENTER`).
    sweep_streak: u32,
    /// Sweeps left before dropping out to re-measure density.
    sweep_left: u32,

    // ---- direct-threaded dispatch ----
    /// Whether this stream dispatches through compiled closure chains
    /// (resolved from [`DispatchMode`] against the final op count).
    use_threaded: bool,
    /// Compiled scalar program (dropped by backdoor pokes and clones;
    /// rebuilt at the end of the next eval).
    threaded: ProgramCache<ThreadedProgram>,
    /// Compiled lane program (built lazily on the first laned eval, when
    /// the lane count is known).
    threaded_lanes: ProgramCache<LaneProgram>,

    // ---- observability ----
    /// Whether `vals[node]` is kept current by the engine (sources, state,
    /// surviving op dsts, folded constants). Fused-away nodes are `false`
    /// and evaluated on demand by `Sim::get_signal`.
    computed: Vec<bool>,
    /// Compile-time constant comb nodes `(node, value)`; `Sim` seeds
    /// `vals` from this once after construction.
    folded: Vec<(u32, u64)>,
    stats: EngineStats,

    // ---- state-commit plan ----
    // Registers are grouped by (clr, en) presence so each sampling loop is
    // branch-free: `reg_kind_start` bounds the [plain, en-only, clr-only,
    // clr+en] runs within the reg_* arrays.
    reg_dst: Vec<u32>,
    reg_d: Vec<u32>,
    reg_en: Vec<u32>,
    reg_clr: Vec<u32>,
    reg_init: Vec<u64>,
    reg_kind_start: [usize; 5],
    /// Within each kind class, regs whose d/en/clr are produced by the
    /// state commit itself ("chained": shift-register shapes) come first
    /// and round-trip through `scratch`; regs from `reg_dir_start[k]` to
    /// the class end read only settled comb values and commit in a single
    /// direct pass — no sample/store/reload per edge.
    reg_dir_start: [usize; 4],
    sr_dst: Vec<u32>,
    sr_addr: Vec<u32>,
    sr_mem: Vec<u32>,
    wp_mem: Vec<u32>,
    wp_addr: Vec<u32>,
    wp_data: Vec<u32>,
    wp_we: Vec<u32>,
    /// Persistent sample buffer: one slot per register + sync read port.
    scratch: Vec<u64>,
}

/// Mutable working form of the op stream during compilation, before the
/// surviving ops are frozen into the SoA arrays.
struct WorkOps {
    code: Vec<u8>,
    dst: Vec<u32>,
    a: Vec<u32>,
    b: Vec<u32>,
    c: Vec<u32>,
    imm: Vec<u64>,
    level: Vec<u32>,
    killed: Vec<bool>,
    /// Leaf tables of collapsed select trees (frozen into `sel_tab`).
    tab: Vec<u32>,
}

impl WorkOps {
    fn visit_operands(&self, i: usize, mut f: impl FnMut(u32)) {
        if self.code[i] == OP_SELECT {
            f(self.a[i]);
            let start = self.c[i] as usize;
            for &leaf in &self.tab[start..start + self.imm[i] as usize + 1] {
                f(leaf);
            }
            return;
        }
        visit_code_operands(self.code[i], self.a[i], self.b[i], self.c[i], f);
    }
}

impl CompiledEngine {
    /// Lower a validated, topologically-sorted netlist. `order` is the
    /// combinational evaluation order produced by the simulator's Kahn
    /// sort; `state_nodes` are registers and synchronous read ports;
    /// `protected[n]` marks nodes referenced from outside the netlist
    /// (named signals, outputs) that fusion must leave observable.
    pub(crate) fn compile(
        nodes: &[Node],
        order: &[u32],
        state_nodes: &[u32],
        write_ports: &[WritePortDecl],
        mem_count: usize,
        protected: &[bool],
        config: EngineConfig,
    ) -> CompiledEngine {
        let n = nodes.len();

        // Logic depth per node: sources (inputs, consts, state) are level 0;
        // a combinational node is one deeper than its deepest operand.
        let mut node_level = vec![0u32; n];
        for &idx in order {
            let mut lvl = 0;
            for_each_operand(&nodes[idx as usize], |dep| {
                lvl = lvl.max(node_level[dep as usize]);
            });
            node_level[idx as usize] = lvl + 1;
        }

        // Emit ops in level order (stable within a level ⇒ still topological).
        let mut emit_order: Vec<u32> = order.to_vec();
        emit_order.sort_by_key(|&idx| node_level[idx as usize]);

        let mut w = WorkOps {
            code: Vec::with_capacity(emit_order.len()),
            dst: Vec::with_capacity(emit_order.len()),
            a: Vec::with_capacity(emit_order.len()),
            b: Vec::with_capacity(emit_order.len()),
            c: Vec::with_capacity(emit_order.len()),
            imm: Vec::with_capacity(emit_order.len()),
            level: Vec::with_capacity(emit_order.len()),
            killed: Vec::new(),
            tab: Vec::new(),
        };
        for &idx in &emit_order {
            if let Some(op) = lower_op(nodes, idx) {
                w.code.push(op.code);
                w.dst.push(idx);
                w.a.push(op.a);
                w.b.push(op.b);
                w.c.push(op.c);
                w.imm.push(op.imm);
                w.level.push(node_level[idx as usize] - 1);
            }
        }
        w.killed = vec![false; w.code.len()];

        let mut stats = EngineStats {
            ops_lowered: w.code.len(),
            ..EngineStats::default()
        };

        // Nodes the stream must keep observable / writable in `vals`:
        // named signals & outputs, plus everything the state-commit plan
        // reads directly.
        let mut ext_ref = protected.to_vec();
        for &idx in state_nodes {
            match &nodes[idx as usize] {
                Node::Reg { d, en, clr, .. } => {
                    ext_ref[*d as usize] = true;
                    if let Some(en) = en {
                        ext_ref[*en as usize] = true;
                    }
                    if let Some(clr) = clr {
                        ext_ref[*clr as usize] = true;
                    }
                }
                Node::ReadPort { addr, .. } => ext_ref[*addr as usize] = true,
                _ => unreachable!("non-state node in state_nodes"),
            }
        }
        for wp in write_ports {
            ext_ref[wp.addr as usize] = true;
            ext_ref[wp.data as usize] = true;
            ext_ref[wp.we as usize] = true;
        }

        let mut folded: Vec<(u32, u64)> = Vec::new();
        if config.fuse {
            fuse_stream(nodes, &mut w, &ext_ref, &mut folded, &mut stats);
        }

        // Freeze the surviving ops into the SoA stream.
        let survivors = w.killed.iter().filter(|&&k| !k).count();
        let mut eng = CompiledEngine {
            op_code: Vec::with_capacity(survivors),
            op_dst: Vec::with_capacity(survivors),
            op_a: Vec::with_capacity(survivors),
            op_b: Vec::with_capacity(survivors),
            op_c: Vec::with_capacity(survivors),
            op_imm: Vec::with_capacity(survivors),
            op_level: Vec::with_capacity(survivors),
            sel_tab: std::mem::take(&mut w.tab),
            op_dirty: Vec::new(),
            level_queues: Vec::new(),
            full_dirty: true,
            any_dirty: false,
            cons_start: Vec::new(),
            cons: Vec::new(),
            mem_cons: vec![Vec::new(); mem_count],
            level_start: Vec::new(),
            parts: 1,
            adaptive: false,
            streaming: false,
            par_bufs: Vec::new(),
            node_min_lvl: Vec::new(),
            mem_min_lvl: Vec::new(),
            sweep_mode: false,
            sweep_first: 0,
            sweep_streak: 0,
            sweep_left: 0,
            use_threaded: false,
            threaded: ProgramCache::default(),
            threaded_lanes: ProgramCache::default(),
            computed: Vec::new(),
            folded,
            stats,
            reg_dst: Vec::new(),
            reg_d: Vec::new(),
            reg_en: Vec::new(),
            reg_clr: Vec::new(),
            reg_init: Vec::new(),
            reg_kind_start: [0; 5],
            reg_dir_start: [0; 4],
            sr_dst: Vec::new(),
            sr_addr: Vec::new(),
            sr_mem: Vec::new(),
            wp_mem: Vec::new(),
            wp_addr: Vec::new(),
            wp_data: Vec::new(),
            wp_we: Vec::new(),
            scratch: Vec::new(),
        };
        for i in 0..w.code.len() {
            if w.killed[i] {
                continue;
            }
            eng.op_code.push(w.code[i]);
            eng.op_dst.push(w.dst[i]);
            eng.op_a.push(w.a[i]);
            eng.op_b.push(w.b[i]);
            eng.op_c.push(w.c[i]);
            eng.op_imm.push(w.imm[i]);
            eng.op_level.push(w.level[i]);
        }

        let level_count = eng
            .op_level
            .iter()
            .map(|&l| l as usize + 1)
            .max()
            .unwrap_or(0);
        eng.level_queues = vec![Vec::new(); level_count];
        eng.op_dirty = vec![false; eng.op_code.len()];

        // Level boundaries over the (level-sorted) final stream.
        eng.level_start = vec![0; level_count + 1];
        for &l in &eng.op_level {
            eng.level_start[l as usize + 1] += 1;
        }
        for l in 0..level_count {
            eng.level_start[l + 1] += eng.level_start[l];
        }

        // Observability: `vals[node]` stays current for everything except
        // the dst of a fused-away op. Sources (inputs, constants) appear
        // in `order` too but lower to no op — they carry their own value.
        // A node's slot stays current iff it carries its own value
        // (sources, constants, state) or the final stream produces it.
        // Op-lowered nodes outside the schedule — fused-away dsts and
        // netopt-dead cones — are recomputed on demand by the owner.
        eng.computed = (0..n as u32)
            .map(|i| lower_op(nodes, i).is_none())
            .collect();
        for &dst in &eng.op_dst {
            eng.computed[dst as usize] = true;
        }
        for &(node, _) in &eng.folded {
            eng.computed[node as usize] = true;
        }

        // Consumer CSR: node → ops reading it (counting sort by operand).
        let mut counts = vec![0u32; n + 1];
        for i in 0..eng.op_code.len() {
            Self::op_operands(&eng, i, |dep| counts[dep as usize + 1] += 1);
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        eng.cons_start = counts;
        let mut cons = vec![0u32; *eng.cons_start.last().unwrap() as usize];
        let mut cursor = eng.cons_start.clone();
        for i in 0..eng.op_code.len() {
            Self::op_operands(&eng, i, |dep| {
                let slot = &mut cursor[dep as usize];
                cons[*slot as usize] = i as u32;
                *slot += 1;
            });
        }
        eng.cons = cons;

        // Async read-port ops grouped per memory.
        for i in 0..eng.op_code.len() {
            if eng.op_code[i] == OP_READ_ASYNC {
                eng.mem_cons[eng.op_c[i] as usize].push(i as u32);
            }
        }

        // Shallowest consumer level per node / memory, for O(1) marking in
        // steady-state sweep mode.
        let mut node_min_lvl = vec![level_count as u32; n];
        for (node, ml) in node_min_lvl.iter_mut().enumerate() {
            let lo = eng.cons_start[node] as usize;
            let hi = eng.cons_start[node + 1] as usize;
            for &op in &eng.cons[lo..hi] {
                *ml = (*ml).min(eng.op_level[op as usize]);
            }
        }
        eng.node_min_lvl = node_min_lvl;
        let mut mem_min_lvl = vec![level_count as u32; mem_count];
        for (m, ml) in mem_min_lvl.iter_mut().enumerate() {
            for &op in &eng.mem_cons[m] {
                *ml = (*ml).min(eng.op_level[op as usize]);
            }
        }
        eng.mem_min_lvl = mem_min_lvl;
        eng.sweep_first = level_count as u32;

        // Partitioned / adaptive evaluation policy.
        let ops_final = eng.op_code.len();
        match config.parallel {
            ParallelEval::Off => {}
            ParallelEval::Auto => {
                if ops_final >= ADAPT_MIN_OPS {
                    eng.adaptive = true;
                }
                if ops_final >= AUTO_MIN_OPS {
                    eng.parts = rayon::current_num_threads().clamp(1, MAX_AUTO_PARTS);
                }
            }
            ParallelEval::Force(p) => {
                eng.adaptive = true;
                eng.parts = p.max(1);
            }
        }
        if eng.parts > 1 {
            eng.par_bufs = vec![PartBuf::default(); eng.parts];
        }
        eng.use_threaded = match config.dispatch {
            DispatchMode::Match => false,
            DispatchMode::Threaded => true,
            DispatchMode::Auto => ops_final >= THREADED_MIN_OPS,
        };
        eng.streaming = config.streaming;

        // State-commit plan: registers grouped by (clr, en) presence so the
        // per-cycle sampling loops are branch-free within each class.
        let mut by_kind: [Vec<u32>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for &idx in state_nodes {
            match &nodes[idx as usize] {
                Node::Reg { en, clr, .. } => {
                    let kind = usize::from(clr.is_some()) * 2 + usize::from(en.is_some());
                    by_kind[kind].push(idx);
                }
                Node::ReadPort {
                    mem,
                    addr,
                    sync: true,
                    ..
                } => {
                    eng.sr_dst.push(idx);
                    eng.sr_addr.push(*addr);
                    eng.sr_mem.push(*mem);
                }
                _ => unreachable!("non-state node in state_nodes"),
            }
        }
        // Class order: plain, en-only, clr-only, clr+en. Within each class
        // chained regs come first (they must sample into scratch before any
        // commit), then the direct tail (single-pass commit).
        let mut is_state_dst = vec![false; n];
        for &idx in state_nodes {
            is_state_dst[idx as usize] = true;
        }
        let order_of = [0usize, 1, 2, 3];
        eng.reg_kind_start[0] = 0;
        for (slot, &kind) in order_of.iter().enumerate() {
            for pass in 0..2 {
                for &idx in &by_kind[kind] {
                    let Node::Reg {
                        d, en, clr, init, ..
                    } = &nodes[idx as usize]
                    else {
                        unreachable!()
                    };
                    let chained = is_state_dst[*d as usize]
                        || en.is_some_and(|e| is_state_dst[e as usize])
                        || clr.is_some_and(|c| is_state_dst[c as usize]);
                    if (pass == 0) != chained {
                        continue;
                    }
                    eng.reg_dst.push(idx);
                    eng.reg_d.push(*d);
                    eng.reg_en.push(en.unwrap_or(NONE));
                    eng.reg_clr.push(clr.unwrap_or(NONE));
                    eng.reg_init.push(*init);
                }
                if pass == 0 {
                    eng.reg_dir_start[slot] = eng.reg_dst.len();
                }
            }
            eng.reg_kind_start[slot + 1] = eng.reg_dst.len();
        }
        for wp in write_ports {
            eng.wp_mem.push(wp.mem);
            eng.wp_addr.push(wp.addr);
            eng.wp_data.push(wp.data);
            eng.wp_we.push(wp.we);
        }
        eng.scratch = vec![0; eng.reg_dst.len() + eng.sr_dst.len()];

        // Final stream statistics.
        eng.stats.ops_final = ops_final;
        eng.stats.levels = level_count;
        eng.stats.partitions = eng.parts;
        let mut superops: Vec<(&'static str, usize)> = Vec::new();
        let mut opcodes: Vec<(&'static str, usize)> = Vec::new();
        let bump = |histo: &mut Vec<(&'static str, usize)>, name| match histo
            .iter_mut()
            .find(|(n, _)| *n == name)
        {
            Some((_, count)) => *count += 1,
            None => histo.push((name, 1)),
        };
        for &code in &eng.op_code {
            let name = op_name(code);
            bump(&mut opcodes, name);
            if code >= OP_NAND {
                bump(&mut superops, name);
            }
        }
        let by_count = |a: &(&str, usize), b: &(&str, usize)| b.1.cmp(&a.1).then(a.0.cmp(b.0));
        superops.sort_by(by_count);
        opcodes.sort_by(by_count);
        eng.stats.superops = superops;
        eng.stats.opcodes = opcodes;
        if eng.use_threaded {
            eng.rebuild_threaded();
        }
        eng
    }

    // ---- threaded program construction -----------------------------------

    /// Specialize op `i` into a pure compute closure: the opcode selects
    /// the arm *once here*, and operand slots, masks, shifts and derived
    /// constants (repack parts, `mask64` widths, CAT3 shift pair, owned
    /// `OP_SELECT` leaf tables) are captured rather than re-loaded and
    /// re-decoded on every execution. Must mirror [`exec_scalar`] (and the
    /// special `OP_SELECT` gather in [`CompiledEngine::exec_op`]) exactly.
    fn compile_op(&self, i: usize) -> OpFn {
        let (a, b, c) = (self.op_a[i], self.op_b[i], self.op_c[i]);
        let imm = self.op_imm[i];
        match self.op_code[i] {
            OP_NOT => th1(a, move |x| !x & imm),
            OP_RED_AND => th1(a, move |x| u64::from(x == imm)),
            OP_RED_OR => th1(a, |x| u64::from(x != 0)),
            OP_RED_XOR => th1(a, |x| u64::from(x.count_ones() & 1 == 1)),
            OP_AND => th2(a, b, |x, y| x & y),
            OP_OR => th2(a, b, |x, y| x | y),
            OP_XOR => th2(a, b, |x, y| x ^ y),
            OP_ADD => th2(a, b, move |x, y| x.wrapping_add(y) & imm),
            OP_SUB => th2(a, b, move |x, y| x.wrapping_sub(y) & imm),
            OP_MUL => th2(a, b, move |x, y| x.wrapping_mul(y) & imm),
            OP_EQ => th2(a, b, |x, y| u64::from(x == y)),
            OP_NE => th2(a, b, |x, y| u64::from(x != y)),
            OP_LT => th2(a, b, |x, y| u64::from(x < y)),
            OP_LE => th2(a, b, |x, y| u64::from(x <= y)),
            OP_SHL => {
                let w = c as u64;
                th2(a, b, move |x, sh| if sh >= w { 0 } else { (x << sh) & imm })
            }
            OP_SHR => {
                let w = c as u64;
                th2(a, b, move |x, sh| if sh >= w { 0 } else { x >> sh })
            }
            OP_MUX => th3(a, b, c, |s, t, f| if s != 0 { t } else { f }),
            OP_SLICE => th1(a, move |x| (x >> c) & imm),
            OP_CONCAT => th2(a, b, move |hi, lo| (hi << c) | lo),
            OP_READ_ASYNC => {
                let (a, m) = (a as usize, c as usize);
                Box::new(move |v, mems| mems[m].get(v[a] as usize).copied().unwrap_or(0))
            }
            OP_NAND => th2(a, b, move |x, y| !(x & y) & imm),
            OP_NOR => th2(a, b, move |x, y| !(x | y) & imm),
            OP_XNOR => th2(a, b, move |x, y| !(x ^ y) & imm),
            OP_ANDN => th2(a, b, move |x, y| x & !y & imm),
            OP_AND3 => th3(a, b, c, |x, y, z| x & y & z),
            OP_OR3 => th3(a, b, c, |x, y, z| x | y | z),
            OP_XOR3 => th3(a, b, c, |x, y, z| x ^ y ^ z),
            OP_AND_IMM => th1(a, move |x| x & imm),
            OP_OR_IMM => th1(a, move |x| x | imm),
            OP_XOR_IMM => th1(a, move |x| x ^ imm),
            OP_ADD_IMM => {
                let m = mask64(c);
                th1(a, move |x| x.wrapping_add(imm) & m)
            }
            OP_EQ_IMM => th1(a, move |x| u64::from(x == imm)),
            OP_NE_IMM => th1(a, move |x| u64::from(x != imm)),
            OP_MUX_EQI => th3(a, b, c, move |s, t, f| if s == imm { t } else { f }),
            OP_SHL_IMM => th1(a, move |x| (x << c) & imm),
            OP_REPACK => {
                let (l1, l2, w2, m1, m2) = repack_parts(c);
                th2(a, b, move |x, y| {
                    (((x >> l1) & m1) << w2) | ((y >> l2) & m2)
                })
            }
            OP_MUX_BIT => th3(
                a,
                b,
                c,
                move |s, t, f| if (s >> imm) & 1 != 0 { t } else { f },
            ),
            OP_ANDSHR => th2(a, b, move |x, y| x & ((y >> c) & imm)),
            OP_CAT3 => {
                let (s1, s2) = ((imm & 0xff) as u32, ((imm >> 8) & 0xff) as u32);
                th3(a, b, c, move |x, y, z| (((x << s1) | y) << s2) | z)
            }
            OP_INC_IF => {
                let m = mask64(c);
                th2(
                    a,
                    b,
                    move |en, q| {
                        if en != 0 {
                            q.wrapping_add(imm) & m
                        } else {
                            q
                        }
                    },
                )
            }
            OP_SELECT => {
                // Own a copy of the leaf-table slice so the closure indexes
                // a captured constant table instead of the engine's side
                // array (and stays valid however the engine moves).
                let start = c as usize;
                let tab: Vec<u32> = self.sel_tab[start..start + imm as usize + 1].to_vec();
                let a = a as usize;
                Box::new(move |v, _| v[tab[((v[a] >> b) & imm) as usize] as usize])
            }
            _ => unreachable!("invalid opcode"),
        }
    }

    /// Compile one same-opcode run (`idxs`, level-internal) into a run
    /// block: packed slot/parameter columns plus a loop whose body is the
    /// opcode's specialized element function — no per-op dispatch, no
    /// opcode loads. Must mirror [`exec_scalar`] arm for arm. Memory and
    /// select ops fall back to chained per-op closures (they are rare and
    /// need captured tables/bank handles).
    fn compile_run(&self, idxs: &[usize]) -> BlockFn {
        let col = |src: &[u32]| -> Vec<u32> { idxs.iter().map(|&i| src[i]).collect() };
        let dst = col(&self.op_dst);
        let a = col(&self.op_a);
        let b = col(&self.op_b);
        let cv = col(&self.op_c);
        let imm: Vec<u64> = idxs.iter().map(|&i| self.op_imm[i]).collect();
        let cu: Vec<u64> = cv.iter().map(|&c| u64::from(c)).collect();
        // `c` is a result width only for ADD_IMM / INC_IF — materialize the
        // mask column inside those arms (elsewhere `c` is a slot or NONE).
        let mk = |cv: &[u32]| -> Vec<u64> { cv.iter().map(|&c| mask64(c)).collect() };
        let zz: Vec<u64> = vec![0; idxs.len()]; // unused-parameter column
        match self.op_code[idxs[0]] {
            OP_NOT => rn1(dst, a, imm, zz, |x, p, _| !x & p),
            OP_RED_AND => rn1(dst, a, imm, zz, |x, p, _| u64::from(x == p)),
            OP_RED_OR => rn1(dst, a, zz, imm, |x, _, _| u64::from(x != 0)),
            OP_RED_XOR => rn1(dst, a, zz, imm, |x, _, _| {
                u64::from(x.count_ones() & 1 == 1)
            }),
            OP_AND => rn2(dst, a, b, zz, imm, |x, y, _, _| x & y),
            OP_OR => rn2(dst, a, b, zz, imm, |x, y, _, _| x | y),
            OP_XOR => rn2(dst, a, b, zz, imm, |x, y, _, _| x ^ y),
            OP_ADD => rn2(dst, a, b, imm, zz, |x, y, p, _| x.wrapping_add(y) & p),
            OP_SUB => rn2(dst, a, b, imm, zz, |x, y, p, _| x.wrapping_sub(y) & p),
            OP_MUL => rn2(dst, a, b, imm, zz, |x, y, p, _| x.wrapping_mul(y) & p),
            OP_EQ => rn2(dst, a, b, zz, imm, |x, y, _, _| u64::from(x == y)),
            OP_NE => rn2(dst, a, b, zz, imm, |x, y, _, _| u64::from(x != y)),
            OP_LT => rn2(dst, a, b, zz, imm, |x, y, _, _| u64::from(x < y)),
            OP_LE => rn2(dst, a, b, zz, imm, |x, y, _, _| u64::from(x <= y)),
            OP_SHL => rn2(
                dst,
                a,
                b,
                cu,
                imm,
                |x, sh, p, q| {
                    if sh >= p {
                        0
                    } else {
                        (x << sh) & q
                    }
                },
            ),
            OP_SHR => rn2(
                dst,
                a,
                b,
                cu,
                imm,
                |x, sh, p, _| if sh >= p { 0 } else { x >> sh },
            ),
            OP_MUX => rn3(
                dst,
                a,
                b,
                cv,
                zz,
                imm,
                |s, t, f, _, _| if s != 0 { t } else { f },
            ),
            OP_SLICE => rn1(dst, a, cu, imm, |x, p, q| (x >> p) & q),
            OP_CONCAT => rn2(dst, a, b, cu, imm, |hi, lo, p, _| (hi << p) | lo),
            OP_NAND => rn2(dst, a, b, imm, zz, |x, y, p, _| !(x & y) & p),
            OP_NOR => rn2(dst, a, b, imm, zz, |x, y, p, _| !(x | y) & p),
            OP_XNOR => rn2(dst, a, b, imm, zz, |x, y, p, _| !(x ^ y) & p),
            OP_ANDN => rn2(dst, a, b, imm, zz, |x, y, p, _| x & !y & p),
            OP_AND3 => rn3(dst, a, b, cv, zz, imm, |x, y, z, _, _| x & y & z),
            OP_OR3 => rn3(dst, a, b, cv, zz, imm, |x, y, z, _, _| x | y | z),
            OP_XOR3 => rn3(dst, a, b, cv, zz, imm, |x, y, z, _, _| x ^ y ^ z),
            OP_AND_IMM => rn1(dst, a, imm, zz, |x, p, _| x & p),
            OP_OR_IMM => rn1(dst, a, imm, zz, |x, p, _| x | p),
            OP_XOR_IMM => rn1(dst, a, imm, zz, |x, p, _| x ^ p),
            OP_ADD_IMM => {
                let mk = mk(&cv);
                rn1(dst, a, imm, mk, |x, p, q| x.wrapping_add(p) & q)
            }
            OP_EQ_IMM => rn1(dst, a, imm, zz, |x, p, _| u64::from(x == p)),
            OP_NE_IMM => rn1(dst, a, imm, zz, |x, p, _| u64::from(x != p)),
            OP_MUX_EQI => rn3(
                dst,
                a,
                b,
                cv,
                imm,
                zz,
                |s, t, f, p, _| if s == p { t } else { f },
            ),
            OP_SHL_IMM => rn1(dst, a, cu, imm, |x, p, q| (x << p) & q),
            OP_REPACK => rn2(dst, a, b, cu, zz, |x, y, p, _| {
                let (l1, l2, w2, m1, m2) = repack_parts(p as u32);
                (((x >> l1) & m1) << w2) | ((y >> l2) & m2)
            }),
            OP_MUX_BIT => rn3(dst, a, b, cv, imm, zz, |s, t, f, p, _| {
                if (s >> p) & 1 != 0 {
                    t
                } else {
                    f
                }
            }),
            OP_ANDSHR => rn2(dst, a, b, cu, imm, |x, y, p, q| x & ((y >> p) & q)),
            OP_CAT3 => rn3(dst, a, b, cv, imm, zz, |x, y, z, p, _| {
                (((x << (p & 0xff)) | y) << ((p >> 8) & 0xff)) | z
            }),
            OP_INC_IF => {
                let mk = mk(&cv);
                rn2(dst, a, b, imm, mk, |en, q, p, m| {
                    if en != 0 {
                        q.wrapping_add(p) & m
                    } else {
                        q
                    }
                })
            }
            OP_READ_ASYNC | OP_SELECT => {
                let fns: Vec<(u32, OpFn)> = idxs
                    .iter()
                    .map(|&i| (self.op_dst[i], self.compile_op(i)))
                    .collect();
                Box::new(move |st: &mut ExecState| {
                    for (d, f) in &fns {
                        st.vals[*d as usize] = f(st.vals, st.mems);
                    }
                })
            }
            _ => unreachable!("invalid opcode"),
        }
    }

    /// Reorder a tail batch into a chain-following topological order: when
    /// the op just scheduled has a ready consumer inside the batch, that
    /// consumer goes next. Level-major order interleaves independent
    /// serial chains (one hop of each per level), which defeats the tail
    /// block's register forwarding — `prev` is always the *other* chain's
    /// destination. Scheduling each chain contiguously makes the forward
    /// hit on every hop. Any topological order is bit-exact (ops are pure
    /// and single-assignment); the scan is deterministic (first ready op
    /// in batch order when no consumer chains on).
    fn chain_schedule(&self, idxs: &[usize]) -> Vec<usize> {
        let n = idxs.len();
        let pos: HashMap<u32, usize> = idxs
            .iter()
            .enumerate()
            .map(|(k, &i)| (self.op_dst[i], k))
            .collect();
        let mut indeg: Vec<u32> = vec![0; n];
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (k, &i) in idxs.iter().enumerate() {
            visit_code_operands(
                self.op_code[i],
                self.op_a[i],
                self.op_b[i],
                self.op_c[i],
                |s| {
                    if let Some(&p) = pos.get(&s) {
                        if p != k {
                            indeg[k] += 1;
                            consumers[p].push(k);
                        }
                    }
                },
            );
        }
        let mut order = Vec::with_capacity(n);
        let mut done = vec![false; n];
        let mut last: Option<usize> = None;
        for _ in 0..n {
            let next = last
                .and_then(|l| {
                    consumers[l]
                        .iter()
                        .copied()
                        .find(|&c| !done[c] && indeg[c] == 0)
                })
                .unwrap_or_else(|| {
                    (0..n)
                        .find(|&c| !done[c] && indeg[c] == 0)
                        .expect("tail batch is acyclic")
                });
            done[next] = true;
            order.push(idxs[next]);
            for &c in &consumers[next] {
                indeg[c] -= 1;
            }
            last = Some(next);
        }
        order
    }

    /// Compile a batch of *short* runs — singletons and near-singletons,
    /// possibly spanning several consecutive levels — into one packed
    /// dispatch block. Specializing a loop per opcode only pays when the
    /// loop iterates; a serial dependency chain (one op per level) would
    /// pay a boxed block call plus loop setup *per op*. Packing those ops'
    /// fields into dense columns and dispatching through [`exec_scalar`]
    /// inside a single block keeps the per-op cost at one predictable
    /// match branch — the same dispatch the match sweep runs — while the
    /// whole chain costs one boxed call instead of dozens.
    fn compile_tail(&self, idxs: &[usize]) -> BlockFn {
        let order = self.chain_schedule(idxs);
        // After chain scheduling, serial chains are contiguous same-opcode
        // stretches. Peel stretches where every op consumes the previous
        // op's destination in one consistent operand position into chain
        // runs: a loop carrying the chained value in a register, with both
        // the opcode dispatch and the forwarding compare hoisted out.
        // Everything else stays in packed-dispatch sub-blocks, emitted in
        // schedule order so dataflow between parts is preserved.
        let chainable = |c: u8| matches!(c, OP_AND3 | OP_OR3 | OP_XOR3 | OP_CAT3);
        let mut parts: Vec<BlockFn> = Vec::new();
        let mut plain: Vec<usize> = Vec::new();
        let mut k = 0;
        while k < order.len() {
            let code = self.op_code[order[k]];
            if chainable(code) {
                let mut e = k + 1;
                let mut linkpos: Option<usize> = None;
                while e < order.len() && self.op_code[order[e]] == code {
                    let prev_dst = self.op_dst[order[e - 1]];
                    let ops3 = [
                        self.op_a[order[e]],
                        self.op_b[order[e]],
                        self.op_c[order[e]],
                    ];
                    match (linkpos, ops3.iter().position(|&s| s == prev_dst)) {
                        (None, Some(p)) => linkpos = Some(p),
                        (Some(p0), Some(p)) if p == p0 => {}
                        _ => break,
                    }
                    e += 1;
                }
                if e - k >= CHAIN_MIN {
                    if !plain.is_empty() {
                        parts.push(self.pack_tail(&plain));
                        plain.clear();
                    }
                    parts.push(self.compile_chain3(&order[k..e], linkpos.unwrap()));
                    k = e;
                    continue;
                }
            }
            plain.push(order[k]);
            k += 1;
        }
        if !plain.is_empty() {
            parts.push(self.pack_tail(&plain));
        }
        if parts.len() == 1 {
            return parts.pop().unwrap();
        }
        Box::new(move |st: &mut ExecState| {
            for part in &parts {
                part(st);
            }
        })
    }

    /// Compile a serial chain of three-operand ops (same opcode, each op's
    /// operand at `linkpos` equal to the previous op's destination) into a
    /// chain run: see [`ch3`]. The first op's `linkpos` operand seeds the
    /// accumulator — it is outside the chain, so loading it once is exact.
    fn compile_chain3(&self, idxs: &[usize], linkpos: usize) -> BlockFn {
        let code = self.op_code[idxs[0]];
        let mut y = Vec::with_capacity(idxs.len());
        let mut z = Vec::with_capacity(idxs.len());
        for &i in idxs {
            let ops3 = [self.op_a[i], self.op_b[i], self.op_c[i]];
            let mut rest = (0..3).filter(|&p| p != linkpos).map(|p| ops3[p]);
            y.push(rest.next().unwrap());
            z.push(rest.next().unwrap());
        }
        let dst: Vec<u32> = idxs.iter().map(|&i| self.op_dst[i]).collect();
        let imm: Vec<u64> = idxs.iter().map(|&i| self.op_imm[i]).collect();
        let seed = [self.op_a[idxs[0]], self.op_b[idxs[0]], self.op_c[idxs[0]]][linkpos];
        let cat =
            |x: u64, y: u64, z: u64, p: u64| (((x << (p & 0xff)) | y) << ((p >> 8) & 0xff)) | z;
        match code {
            OP_AND3 => ch3(seed, dst, y, z, imm, |x, y, z, _| x & y & z),
            OP_OR3 => ch3(seed, dst, y, z, imm, |x, y, z, _| x | y | z),
            OP_XOR3 => ch3(seed, dst, y, z, imm, |x, y, z, _| x ^ y ^ z),
            // CAT3 is positional: permute the accumulator back into the
            // operand slot the chain actually links through.
            OP_CAT3 => match linkpos {
                0 => ch3(seed, dst, y, z, imm, cat),
                1 => ch3(seed, dst, y, z, imm, move |x, y, z, p| cat(y, x, z, p)),
                _ => ch3(seed, dst, y, z, imm, move |x, y, z, p| cat(y, z, x, p)),
            },
            _ => unreachable!("unchainable opcode"),
        }
    }

    /// Pack a (possibly reordered) batch of tail ops into one
    /// [`exec_scalar`]-dispatch block with single-register forwarding.
    fn pack_tail(&self, idxs: &[usize]) -> BlockFn {
        let code: Vec<u8> = idxs.iter().map(|&i| self.op_code[i]).collect();
        let dst: Vec<u32> = idxs.iter().map(|&i| self.op_dst[i]).collect();
        let a: Vec<u32> = idxs.iter().map(|&i| self.op_a[i]).collect();
        let b: Vec<u32> = idxs.iter().map(|&i| self.op_b[i]).collect();
        let c: Vec<u32> = idxs.iter().map(|&i| self.op_c[i]).collect();
        let imm: Vec<u64> = idxs.iter().map(|&i| self.op_imm[i]).collect();
        Box::new(move |st: &mut ExecState| {
            // `acc` keeps the previous op's result in a register. A tail is
            // typically a serial dependency chain (that is what defeats run
            // specialization), so the next op's critical-path operand is
            // almost always `prev` — forwarding it from a register instead
            // of re-loading `vals[prev]` removes the store-to-load latency
            // from every hop of the chain. The compare is off the critical
            // path and perfectly predicted on a steady chain.
            let mut prev = u32::MAX;
            let mut acc = 0u64;
            for k in 0..code.len() {
                let out = exec_scalar(
                    code[k],
                    a[k],
                    b[k],
                    c[k],
                    imm[k],
                    &mut |s| {
                        if s == prev {
                            acc
                        } else {
                            st.vals[s as usize]
                        }
                    },
                    &mut |m, addr| st.mems[m as usize].get(addr as usize).copied().unwrap_or(0),
                );
                st.vals[dst[k] as usize] = out;
                prev = dst[k];
                acc = out;
            }
        })
    }

    /// Specialize op `i` for the lane path: the `LANE_CHUNK`-chunked inner
    /// loop is captured with destination/operand row offsets pre-scaled by
    /// `lanes`. Must mirror [`CompiledEngine::exec_op_lanes`] exactly.
    fn compile_op_lanes(&self, i: usize, lanes: usize) -> LaneOpFn {
        let d0 = self.op_dst[i] as usize * lanes;
        let a0 = self.op_a[i] as usize * lanes;
        let braw = self.op_b[i] as usize; // NONE for one-operand ops
        let b0 = braw.wrapping_mul(lanes);
        let c0 = (self.op_c[i] as usize).wrapping_mul(lanes);
        let c = self.op_c[i];
        let imm = self.op_imm[i];
        match self.op_code[i] {
            OP_NOT => ln1(d0, a0, move |x| !x & imm),
            OP_RED_AND => ln1(d0, a0, move |x| u64::from(x == imm)),
            OP_RED_OR => ln1(d0, a0, |x| u64::from(x != 0)),
            OP_RED_XOR => ln1(d0, a0, |x| u64::from(x.count_ones() & 1 == 1)),
            OP_AND => ln2(d0, a0, b0, |x, y| x & y),
            OP_OR => ln2(d0, a0, b0, |x, y| x | y),
            OP_XOR => ln2(d0, a0, b0, |x, y| x ^ y),
            OP_ADD => ln2(d0, a0, b0, move |x, y| x.wrapping_add(y) & imm),
            OP_SUB => ln2(d0, a0, b0, move |x, y| x.wrapping_sub(y) & imm),
            OP_MUL => ln2(d0, a0, b0, move |x, y| x.wrapping_mul(y) & imm),
            OP_EQ => ln2(d0, a0, b0, |x, y| u64::from(x == y)),
            OP_NE => ln2(d0, a0, b0, |x, y| u64::from(x != y)),
            OP_LT => ln2(d0, a0, b0, |x, y| u64::from(x < y)),
            OP_LE => ln2(d0, a0, b0, |x, y| u64::from(x <= y)),
            OP_SHL => {
                let w = c as u64;
                ln2(
                    d0,
                    a0,
                    b0,
                    move |x, sh| if sh >= w { 0 } else { (x << sh) & imm },
                )
            }
            OP_SHR => {
                let w = c as u64;
                ln2(d0, a0, b0, move |x, sh| if sh >= w { 0 } else { x >> sh })
            }
            OP_MUX => ln3(d0, a0, b0, c0, |s, t, f| if s != 0 { t } else { f }),
            OP_SLICE => ln1(d0, a0, move |x| (x >> c) & imm),
            OP_CONCAT => ln2(d0, a0, b0, move |hi, lo| (hi << c) | lo),
            OP_READ_ASYNC => {
                let m = c as usize;
                Box::new(move |st| {
                    let words = st.mem_words[m];
                    let bank = &st.mems[m];
                    let mut diff = 0u64;
                    for l in 0..st.lanes {
                        let addr = st.vals[a0 + l] as usize;
                        let v = if addr < words {
                            bank[l * words + addr]
                        } else {
                            0
                        };
                        diff |= v ^ st.vals[d0 + l];
                        st.vals[d0 + l] = v;
                    }
                    diff != 0
                })
            }
            OP_NAND => ln2(d0, a0, b0, move |x, y| !(x & y) & imm),
            OP_NOR => ln2(d0, a0, b0, move |x, y| !(x | y) & imm),
            OP_XNOR => ln2(d0, a0, b0, move |x, y| !(x ^ y) & imm),
            OP_ANDN => ln2(d0, a0, b0, move |x, y| x & !y & imm),
            OP_AND3 => ln3(d0, a0, b0, c0, |x, y, z| x & y & z),
            OP_OR3 => ln3(d0, a0, b0, c0, |x, y, z| x | y | z),
            OP_XOR3 => ln3(d0, a0, b0, c0, |x, y, z| x ^ y ^ z),
            OP_AND_IMM => ln1(d0, a0, move |x| x & imm),
            OP_OR_IMM => ln1(d0, a0, move |x| x | imm),
            OP_XOR_IMM => ln1(d0, a0, move |x| x ^ imm),
            OP_ADD_IMM => {
                let m = mask64(c);
                ln1(d0, a0, move |x| x.wrapping_add(imm) & m)
            }
            OP_EQ_IMM => ln1(d0, a0, move |x| u64::from(x == imm)),
            OP_NE_IMM => ln1(d0, a0, move |x| u64::from(x != imm)),
            OP_MUX_EQI => ln3(d0, a0, b0, c0, move |s, t, f| if s == imm { t } else { f }),
            OP_SHL_IMM => ln1(d0, a0, move |x| (x << c) & imm),
            OP_REPACK => {
                let (l1, l2, w2, m1, m2) = repack_parts(c);
                ln2(d0, a0, b0, move |x, y| {
                    (((x >> l1) & m1) << w2) | ((y >> l2) & m2)
                })
            }
            OP_MUX_BIT => ln3(
                d0,
                a0,
                b0,
                c0,
                move |s, t, f| {
                    if (s >> imm) & 1 != 0 {
                        t
                    } else {
                        f
                    }
                },
            ),
            OP_ANDSHR => ln2(d0, a0, b0, move |x, y| x & ((y >> c) & imm)),
            OP_CAT3 => {
                let (s1, s2) = (imm & 0xff, (imm >> 8) & 0xff);
                ln3(d0, a0, b0, c0, move |x, y, z| (((x << s1) | y) << s2) | z)
            }
            OP_INC_IF => {
                let m = mask64(c);
                ln2(d0, a0, b0, move |en, q| {
                    if en != 0 {
                        q.wrapping_add(imm) & m
                    } else {
                        q
                    }
                })
            }
            OP_SELECT => {
                // Per-lane table gather with the leaf rows pre-scaled to
                // row offsets (`leaf * lanes`) in a captured table.
                let start = c as usize;
                let tab: Vec<usize> = self.sel_tab[start..start + imm as usize + 1]
                    .iter()
                    .map(|&leaf| leaf as usize * lanes)
                    .collect();
                let sh = braw as u32;
                Box::new(move |st| {
                    let mut diff = 0u64;
                    for l in 0..st.lanes {
                        let idx = ((st.vals[a0 + l] >> sh) & imm) as usize;
                        let v = st.vals[tab[idx] + l];
                        diff |= v ^ st.vals[d0 + l];
                        st.vals[d0 + l] = v;
                    }
                    diff != 0
                })
            }
            _ => unreachable!("invalid opcode"),
        }
    }

    /// Build (or rebuild, after a backdoor poke or clone) the scalar
    /// threaded program: one specialized closure per op for the
    /// incremental/partitioned paths, plus the dense sweep plan — each
    /// level's ops sorted by opcode and compiled into run blocks —
    /// recording the compile ledger.
    fn rebuild_threaded(&mut self) {
        let t0 = std::time::Instant::now();
        let ops: Arc<Vec<(u32, OpFn)>> = Arc::new(
            (0..self.op_code.len())
                .map(|i| (self.op_dst[i], self.compile_op(i)))
                .collect(),
        );
        let levels = self.level_start.len() - 1;
        let mut runs: Vec<BlockFn> = Vec::new();
        let mut run_start: Vec<u32> = Vec::with_capacity(levels + 1);
        let mut idxs: Vec<usize> = Vec::new();
        // Short segments accumulate here until a specialized block must be
        // emitted; a pending tail may straddle level boundaries (a serial
        // chain becomes ONE block). `run_start[l]` is recorded before the
        // level's segments, so a mid-stream sweep entering at level `l`
        // re-executes any earlier-level ops still pending in that tail —
        // harmless, because ops are pure functions of settled values.
        let mut tail: Vec<usize> = Vec::new();
        for lvl in 0..levels {
            run_start.push(runs.len() as u32);
            idxs.clear();
            idxs.extend(self.level_start[lvl] as usize..self.level_start[lvl + 1] as usize);
            // Sort the level's ops by opcode — stable, so stream order
            // survives within each opcode. Same-level ops are independent
            // by levelization (a consumer always sits on a later level),
            // so any order is bit-exact; sorting maximizes run length.
            idxs.sort_by_key(|&i| self.op_code[i]);
            let mut s = 0;
            while s < idxs.len() {
                let mut e = s + 1;
                while e < idxs.len() && self.op_code[idxs[e]] == self.op_code[idxs[s]] {
                    e += 1;
                }
                // SELECT carries a captured leaf table the packed
                // interpreter can't see, so it always takes the chained
                // closure form from `compile_run`, whatever its length.
                if e - s >= RUN_MIN_LEN || self.op_code[idxs[s]] == OP_SELECT {
                    if !tail.is_empty() {
                        runs.push(self.compile_tail(&tail));
                        tail.clear();
                    }
                    runs.push(self.compile_run(&idxs[s..e]));
                } else {
                    tail.extend_from_slice(&idxs[s..e]);
                }
                s = e;
            }
        }
        if !tail.is_empty() {
            runs.push(self.compile_tail(&tail));
        }
        run_start.push(runs.len() as u32);
        self.stats.compiles += 1;
        self.stats.blocks_built += runs.len();
        self.stats.closures_specialized += ops.len();
        self.stats.compile_ns += t0.elapsed().as_nanos() as u64;
        self.threaded = ProgramCache(Some(ThreadedProgram {
            ops,
            runs,
            run_start,
        }));
    }

    /// Build (or rebuild) the lane program for `lanes` instances. Runs
    /// lazily on the first laned eval — the lane count is unknown at
    /// compile time — and again whenever the group width changes.
    fn rebuild_threaded_lanes(&mut self, lanes: usize) {
        let t0 = std::time::Instant::now();
        let ops: Vec<LaneOpFn> = (0..self.op_code.len())
            .map(|i| self.compile_op_lanes(i, lanes))
            .collect();
        self.stats.compiles += 1;
        self.stats.closures_specialized += ops.len();
        self.stats.compile_ns += t0.elapsed().as_nanos() as u64;
        self.threaded_lanes = ProgramCache(Some(LaneProgram { ops, lanes }));
    }

    /// Backdoor-poke invalidation: mark the memory's read cone dirty *and*
    /// drop any compiled program. The contract is conservative — the next
    /// eval runs match dispatch once, then rebuilds — which keeps poked
    /// state and compiled state trivially coherent. Cycle-path memory
    /// writes ([`CompiledEngine::apply_writes`]) go through
    /// [`CompiledEngine::mark_mem_dirty`] directly and never invalidate.
    pub(crate) fn poke_invalidate(&mut self, mem: u32) {
        self.mark_mem_dirty(mem);
        self.threaded = ProgramCache(None);
        self.threaded_lanes = ProgramCache(None);
    }

    /// Visit the value-operand node indices of op `i` (for `OP_SELECT`,
    /// the selector plus every leaf in its table slice).
    #[inline]
    fn op_operands(eng: &CompiledEngine, i: usize, mut f: impl FnMut(u32)) {
        if eng.op_code[i] == OP_SELECT {
            f(eng.op_a[i]);
            let start = eng.op_c[i] as usize;
            for &leaf in &eng.sel_tab[start..start + eng.op_imm[i] as usize + 1] {
                f(leaf);
            }
            return;
        }
        visit_code_operands(eng.op_code[i], eng.op_a[i], eng.op_b[i], eng.op_c[i], f);
    }

    /// Execute op `i` against the value array. The single hot dispatch.
    #[inline(always)]
    fn exec_op(&self, i: usize, vals: &[u64], mems: &[Vec<u64>]) -> u64 {
        if self.op_code[i] == OP_SELECT {
            let idx = ((vals[self.op_a[i] as usize] >> self.op_b[i]) & self.op_imm[i]) as usize;
            return vals[self.sel_tab[self.op_c[i] as usize + idx] as usize];
        }
        exec_scalar(
            self.op_code[i],
            self.op_a[i],
            self.op_b[i],
            self.op_c[i],
            self.op_imm[i],
            &mut |n| vals[n as usize],
            &mut |m, addr| mems[m as usize].get(addr as usize).copied().unwrap_or(0),
        )
    }

    /// Mark every op consuming `node` dirty (queued at its level).
    pub(crate) fn mark_node_dirty(&mut self, node: u32) {
        if self.full_dirty {
            return; // everything recomputes anyway
        }
        if self.sweep_mode {
            // Steady-state streaming: the next eval straight-lines every
            // level from the shallowest mark, so per-consumer queueing
            // would be wasted work.
            let l = self.node_min_lvl[node as usize];
            if l < self.sweep_first {
                self.sweep_first = l;
                self.any_dirty = true;
            }
            return;
        }
        let lo = self.cons_start[node as usize] as usize;
        let hi = self.cons_start[node as usize + 1] as usize;
        for j in lo..hi {
            let op = self.cons[j] as usize;
            if !self.op_dirty[op] {
                self.op_dirty[op] = true;
                self.level_queues[self.op_level[op] as usize].push(op as u32);
                self.any_dirty = true;
            }
        }
    }

    /// Mark every async read port of memory `mem` dirty (after a poke or a
    /// committed write).
    pub(crate) fn mark_mem_dirty(&mut self, mem: u32) {
        if self.full_dirty {
            return;
        }
        if self.sweep_mode {
            let l = self.mem_min_lvl[mem as usize];
            if l < self.sweep_first {
                self.sweep_first = l;
                self.any_dirty = true;
            }
            return;
        }
        // Iterate by index: `mem_cons` and the queue state are disjoint
        // fields, but the borrow checker can't see that through a shared
        // slice borrow.
        for k in 0..self.mem_cons[mem as usize].len() {
            let op = self.mem_cons[mem as usize][k] as usize;
            if !self.op_dirty[op] {
                self.op_dirty[op] = true;
                self.level_queues[self.op_level[op] as usize].push(op as u32);
                self.any_dirty = true;
            }
        }
    }

    /// Clear every queue and queued-op flag. The `op_dirty` flags are only
    /// ever set together with a queue push, so draining the queues clears
    /// exactly the set flags.
    fn reset_dirty(&mut self) {
        for lvl in 0..self.level_queues.len() {
            let mut queue = std::mem::take(&mut self.level_queues[lvl]);
            for &op in &queue {
                self.op_dirty[op as usize] = false;
            }
            queue.clear();
            self.level_queues[lvl] = queue;
        }
        self.any_dirty = false;
    }

    /// Settle combinational values. Chooses the dense sweep when everything
    /// is stale; otherwise drains the per-level dirty queues — and, when
    /// the adaptive policy is engaged and a level's dirty population is
    /// dense, switches to straight-line (optionally partitioned) sweeps of
    /// whole level ranges, skipping per-op queue bookkeeping.
    ///
    /// Under threaded dispatch the compiled program is taken out of its
    /// cache slot for the duration of the eval (the borrow checker cannot
    /// see that the program and the queue state are disjoint), every
    /// dispatch site below substitutes the specialized closures, and the
    /// program is put back — or rebuilt, if a poke dropped it, so exactly
    /// one post-poke eval runs match dispatch.
    pub(crate) fn eval(&mut self, vals: &mut [u64], mems: &[Vec<u64>]) {
        if !self.full_dirty && !self.any_dirty {
            return;
        }
        let prog = self.threaded.0.take();
        match prog.as_ref() {
            Some(_) => self.stats.evals_threaded += 1,
            None => self.stats.evals_match += 1,
        }
        self.eval_inner(prog.as_ref(), vals, mems);
        self.threaded.0 = prog;
        if self.use_threaded && self.threaded.0.is_none() {
            self.rebuild_threaded();
        }
    }

    /// The eval body, parameterized over the dispatch backend.
    fn eval_inner(&mut self, prog: Option<&ThreadedProgram>, vals: &mut [u64], mems: &[Vec<u64>]) {
        if self.full_dirty {
            self.eval_dense(prog, vals, mems);
            self.full_dirty = false;
            self.reset_dirty();
            self.sweep_first = self.level_queues.len() as u32;
            return;
        }
        if self.streaming {
            self.exec_levels_raw(prog, 0, vals, mems);
            self.reset_dirty();
            self.sweep_first = self.level_queues.len() as u32;
            return;
        }
        if self.sweep_mode {
            self.exec_levels_raw(prog, self.sweep_first as usize, vals, mems);
            self.sweep_first = self.level_queues.len() as u32;
            self.any_dirty = false;
            self.sweep_left -= 1;
            if self.sweep_left == 0 {
                // Drop back to fine-grained tracking to re-measure dirty
                // density (the workload may have gone sparse); a
                // still-dense stream re-enters after SWEEP_ENTER escapes.
                self.sweep_mode = false;
                self.sweep_streak = 0;
            }
            return;
        }
        if !self.adaptive {
            for lvl in 0..self.level_queues.len() {
                self.drain_level(prog, lvl, vals, mems);
            }
            self.any_dirty = false;
            return;
        }
        let levels = self.level_queues.len();
        // Global density check: the queues only hold the *direct* consumers
        // of what changed so far, but when those alone already cover a big
        // fraction of the remaining stream, propagation will reach most of
        // it anyway — a straight-line sweep from the shallowest dirty level
        // beats paying queue bookkeeping on every op.
        let mut queued_total = 0;
        let mut first_dirty = levels;
        for lvl in 0..levels {
            let q = self.level_queues[lvl].len();
            if q > 0 {
                queued_total += q;
                first_dirty = first_dirty.min(lvl);
            }
        }
        if first_dirty < levels {
            let rest = self.op_code.len() - self.level_start[first_dirty] as usize;
            if queued_total * SWEEP_DENSITY >= rest {
                self.exec_levels_raw(prog, first_dirty, vals, mems);
                self.reset_dirty();
                self.sweep_streak += 1;
                if self.sweep_streak >= SWEEP_ENTER {
                    self.sweep_mode = true;
                    self.sweep_left = SWEEP_HOLD;
                    self.sweep_first = levels as u32;
                }
                return;
            }
        }
        self.sweep_streak = 0;
        let mut cascade_from = None;
        for lvl in 0..levels {
            let queued = self.level_queues[lvl].len();
            if queued == 0 {
                continue;
            }
            let lo = self.level_start[lvl] as usize;
            let hi = self.level_start[lvl + 1] as usize;
            let span = hi - lo;
            if queued == span && span >= CASCADE_MIN_SPAN {
                // Everything at this level recomputes → everything deeper
                // will too (to within change detection, which a span this
                // size no longer pays for). Straight-line the rest.
                cascade_from = Some(lvl);
                break;
            }
            if queued * 2 >= span && span >= DENSE_MIN_SPAN {
                // Dense-with-mark: sweep the whole level, keep change
                // detection so propagation still prunes.
                let mut queue = std::mem::take(&mut self.level_queues[lvl]);
                for &op in &queue {
                    self.op_dirty[op as usize] = false;
                }
                queue.clear();
                self.level_queues[lvl] = queue;
                self.exec_range(prog, lo, hi, true, vals, mems);
            } else {
                self.drain_level(prog, lvl, vals, mems);
            }
        }
        match cascade_from {
            Some(from) => {
                self.exec_levels_raw(prog, from, vals, mems);
                self.reset_dirty();
            }
            None => self.any_dirty = false,
        }
    }

    /// Compute op `i` through the active dispatch backend: the compiled
    /// closure when a threaded program is in hand, the per-op `match`
    /// otherwise.
    #[inline(always)]
    fn compute_op(
        &self,
        prog: Option<&ThreadedProgram>,
        i: usize,
        vals: &[u64],
        mems: &[Vec<u64>],
    ) -> u64 {
        match prog {
            Some(p) => (p.ops[i].1)(vals, mems),
            None => self.exec_op(i, vals, mems),
        }
    }

    /// Drain one level's dirty queue per-op (the PR 1 incremental path).
    /// Large queues are fanned out across partitions with the same
    /// two-phase compute/commit scheme as the dense sweeps.
    fn drain_level(
        &mut self,
        prog: Option<&ThreadedProgram>,
        lvl: usize,
        vals: &mut [u64],
        mems: &[Vec<u64>],
    ) {
        // Take the queue out so `mark_node_dirty` (which only ever pushes
        // to deeper levels) can borrow `self` freely.
        let mut queue = std::mem::take(&mut self.level_queues[lvl]);
        if self.parts > 1 && queue.len() >= PAR_MIN_OPS {
            for &op in &queue {
                self.op_dirty[op as usize] = false;
            }
            let mut bufs = self.compute_parallel(prog, Some(&queue), 0, queue.len(), vals, mems);
            self.commit_bufs(&mut bufs, Some(&queue), true, vals);
            self.par_bufs = bufs;
        } else {
            for &op32 in &queue {
                let op = op32 as usize;
                self.op_dirty[op] = false;
                let new = self.compute_op(prog, op, vals, mems);
                let dst = self.op_dst[op];
                if vals[dst as usize] != new {
                    vals[dst as usize] = new;
                    self.mark_node_dirty(dst);
                }
            }
        }
        queue.clear();
        self.level_queues[lvl] = queue; // keep the allocation
    }

    /// Execute ops `lo..hi` (one level). With `detect`, changed dsts mark
    /// their consumers; without, values are stored unconditionally.
    fn exec_range(
        &mut self,
        prog: Option<&ThreadedProgram>,
        lo: usize,
        hi: usize,
        detect: bool,
        vals: &mut [u64],
        mems: &[Vec<u64>],
    ) {
        if self.parts > 1 && hi - lo >= PAR_MIN_OPS {
            let mut bufs = self.compute_parallel(prog, None, lo, hi, vals, mems);
            self.commit_bufs(&mut bufs, None, detect, vals);
            self.par_bufs = bufs;
        } else if detect {
            for op in lo..hi {
                let new = self.compute_op(prog, op, vals, mems);
                let dst = self.op_dst[op];
                if vals[dst as usize] != new {
                    vals[dst as usize] = new;
                    self.mark_node_dirty(dst);
                }
            }
        } else {
            for op in lo..hi {
                vals[self.op_dst[op] as usize] = self.compute_op(prog, op, vals, mems);
            }
        }
    }

    /// Straight-line execute every level from `from` down, no bookkeeping.
    /// Serially under threaded dispatch this is the closure-chain fast
    /// path: the per-level blocks run back to back with no opcode
    /// dispatch, no field loads, and no change detection.
    fn exec_levels_raw(
        &mut self,
        prog: Option<&ThreadedProgram>,
        from: usize,
        vals: &mut [u64],
        mems: &[Vec<u64>],
    ) {
        if self.parts > 1 {
            for lvl in from..self.level_queues.len() {
                let lo = self.level_start[lvl] as usize;
                let hi = self.level_start[lvl + 1] as usize;
                self.exec_range(prog, lo, hi, false, vals, mems);
            }
        } else if let Some(p) = prog {
            let mut st = ExecState { vals, mems };
            for run in &p.runs[p.run_start[from] as usize..] {
                run(&mut st);
            }
        } else {
            // Serially the stream is already topological — one flat sweep.
            // Equal-length sub-slices let the optimizer hoist the op-array
            // bounds checks out of the (hot) loop.
            let lo = self.level_start[from] as usize;
            let len = self.op_code.len() - lo;
            let codes = &self.op_code[lo..lo + len];
            let dsts = &self.op_dst[lo..lo + len];
            let aa = &self.op_a[lo..lo + len];
            let bb = &self.op_b[lo..lo + len];
            let cc = &self.op_c[lo..lo + len];
            let imms = &self.op_imm[lo..lo + len];
            let tab = &self.sel_tab;
            for k in 0..len {
                let new = if codes[k] == OP_SELECT {
                    let idx = ((vals[aa[k] as usize] >> bb[k]) & imms[k]) as usize;
                    vals[tab[cc[k] as usize + idx] as usize]
                } else {
                    exec_scalar(
                        codes[k],
                        aa[k],
                        bb[k],
                        cc[k],
                        imms[k],
                        &mut |n| vals[n as usize],
                        &mut |m, addr| mems[m as usize].get(addr as usize).copied().unwrap_or(0),
                    )
                };
                vals[dsts[k] as usize] = new;
            }
        }
    }

    /// Phase A of a partitioned sweep: split the work (an op-index range,
    /// or a dirty-queue slice) into contiguous partitions and execute them
    /// across the worker pool. Reads shared pre-level values only — level
    /// membership guarantees no task reads another's destination — and
    /// stages results in per-partition buffers. Under threaded dispatch
    /// each worker runs its partition's run of specialized closures
    /// (`OpFn` is `Sync`, so the program is shared, not cloned).
    fn compute_parallel(
        &mut self,
        prog: Option<&ThreadedProgram>,
        queue: Option<&[u32]>,
        lo: usize,
        hi: usize,
        vals: &[u64],
        mems: &[Vec<u64>],
    ) -> Vec<PartBuf> {
        use rayon::prelude::*;
        let mut bufs = std::mem::take(&mut self.par_bufs);
        let span = hi - lo;
        let k = bufs.len();
        let (base, extra) = (span / k, span % k);
        let mut start = lo;
        for (w, b) in bufs.iter_mut().enumerate() {
            let size = base + usize::from(w < extra);
            b.lo = start;
            b.hi = start + size;
            b.out.clear();
            start += size;
        }
        let eng = &*self;
        bufs.par_iter_mut().for_each(|b| {
            b.out.reserve(b.hi - b.lo);
            match queue {
                Some(q) => {
                    for &op in &q[b.lo..b.hi] {
                        b.out.push(eng.compute_op(prog, op as usize, vals, mems));
                    }
                }
                None => {
                    for op in b.lo..b.hi {
                        b.out.push(eng.compute_op(prog, op, vals, mems));
                    }
                }
            }
        });
        bufs
    }

    /// Phase B: commit partition results serially in ascending op order
    /// (deterministic regardless of worker count or schedule).
    fn commit_bufs(
        &mut self,
        bufs: &mut [PartBuf],
        queue: Option<&[u32]>,
        detect: bool,
        vals: &mut [u64],
    ) {
        for b in bufs.iter_mut() {
            for (j, slot) in (b.lo..b.hi).enumerate() {
                let op = match queue {
                    Some(q) => q[slot] as usize,
                    None => slot,
                };
                let new = b.out[j];
                let dst = self.op_dst[op];
                if detect {
                    if vals[dst as usize] != new {
                        vals[dst as usize] = new;
                        self.mark_node_dirty(dst);
                    }
                } else {
                    vals[dst as usize] = new;
                }
            }
            b.out.clear();
        }
    }

    /// Dense sweep: execute every op in level/topological order.
    #[inline]
    fn eval_dense(&mut self, prog: Option<&ThreadedProgram>, vals: &mut [u64], mems: &[Vec<u64>]) {
        if self.parts > 1 || prog.is_some() {
            self.exec_levels_raw(prog, 0, vals, mems);
        } else {
            for i in 0..self.op_code.len() {
                vals[self.op_dst[i] as usize] = self.exec_op(i, vals, mems);
            }
        }
    }

    /// Sample next-state into the persistent scratch buffer (phase 1:
    /// everything still shows pre-edge values). Only *chained* registers —
    /// those whose d/en/clr is itself a state destination — need this
    /// round-trip; the direct majority commits straight from the settled
    /// comb values in [`CompiledEngine::commit_direct`]. Sync read ports
    /// always sample here so they observe pre-write memory contents.
    #[inline]
    fn sample_state(&mut self, vals: &[u64], mems: &[Vec<u64>]) {
        let [k0, k1, k2, k3, _] = self.reg_kind_start;
        let [d0, d1, d2, d3] = self.reg_dir_start;
        for r in k0..d0 {
            self.scratch[r] = vals[self.reg_d[r] as usize];
        }
        for r in k1..d1 {
            self.scratch[r] = if vals[self.reg_en[r] as usize] == 0 {
                vals[self.reg_dst[r] as usize]
            } else {
                vals[self.reg_d[r] as usize]
            };
        }
        for r in k2..d2 {
            self.scratch[r] = if vals[self.reg_clr[r] as usize] != 0 {
                self.reg_init[r]
            } else {
                vals[self.reg_d[r] as usize]
            };
        }
        for r in k3..d3 {
            self.scratch[r] = if vals[self.reg_clr[r] as usize] != 0 {
                self.reg_init[r]
            } else if vals[self.reg_en[r] as usize] == 0 {
                vals[self.reg_dst[r] as usize]
            } else {
                vals[self.reg_d[r] as usize]
            };
        }
        let nregs = self.reg_dst.len();
        for s in 0..self.sr_dst.len() {
            let addr = vals[self.sr_addr[s] as usize] as usize;
            self.scratch[nregs + s] = mems[self.sr_mem[s] as usize]
                .get(addr)
                .copied()
                .unwrap_or(0);
        }
    }

    /// Commit one direct register: write-if-changed plus dirty marking.
    #[inline(always)]
    fn commit_reg(&mut self, dst: u32, new: u64, vals: &mut [u64]) {
        if vals[dst as usize] != new {
            vals[dst as usize] = new;
            self.mark_node_dirty(dst);
        }
    }

    /// Single-pass commit of the direct registers: their inputs are all
    /// settled comb values no other commit can disturb, so next-state is
    /// computed and latched in place — no scratch store/reload per edge.
    #[inline]
    fn commit_direct(&mut self, vals: &mut [u64]) {
        let [_, k1, k2, k3, k4] = self.reg_kind_start;
        let [d0, d1, d2, d3] = self.reg_dir_start;
        for r in d0..k1 {
            let new = vals[self.reg_d[r] as usize];
            self.commit_reg(self.reg_dst[r], new, vals);
        }
        for r in d1..k2 {
            if vals[self.reg_en[r] as usize] == 0 {
                continue; // gated off: holds its value, nothing to mark
            }
            let new = vals[self.reg_d[r] as usize];
            self.commit_reg(self.reg_dst[r], new, vals);
        }
        for r in d2..k3 {
            let new = if vals[self.reg_clr[r] as usize] != 0 {
                self.reg_init[r]
            } else {
                vals[self.reg_d[r] as usize]
            };
            self.commit_reg(self.reg_dst[r], new, vals);
        }
        for r in d3..k4 {
            let new = if vals[self.reg_clr[r] as usize] != 0 {
                self.reg_init[r]
            } else if vals[self.reg_en[r] as usize] == 0 {
                continue;
            } else {
                vals[self.reg_d[r] as usize]
            };
            self.commit_reg(self.reg_dst[r], new, vals);
        }
    }

    /// Apply write ports (phase 2). A write that actually changes a word
    /// invalidates that memory's async read ports so the next eval
    /// re-executes them.
    #[inline]
    fn apply_writes(&mut self, vals: &[u64], mems: &mut [Vec<u64>]) {
        for w in 0..self.wp_mem.len() {
            if vals[self.wp_we[w] as usize] != 0 {
                let addr = vals[self.wp_addr[w] as usize] as usize;
                let mem = &mut mems[self.wp_mem[w] as usize];
                if addr < mem.len() {
                    let data = vals[self.wp_data[w] as usize];
                    if mem[addr] != data {
                        mem[addr] = data;
                        self.mark_mem_dirty(self.wp_mem[w]);
                    }
                }
            }
        }
    }

    /// One clock edge with incremental bookkeeping: eval, sample, write,
    /// commit-with-change-detection so the next `eval` touches only the
    /// cones of state that actually toggled.
    pub(crate) fn step(&mut self, vals: &mut [u64], mems: &mut [Vec<u64>]) {
        self.eval(vals, mems);
        self.sample_state(vals, mems);
        self.apply_writes(vals, mems);
        self.commit_direct(vals);
        // Chained regs and sync read ports latch their pre-sampled values.
        let [k0, k1, k2, k3, _] = self.reg_kind_start;
        let [d0, d1, d2, d3] = self.reg_dir_start;
        for (lo, hi) in [(k0, d0), (k1, d1), (k2, d2), (k3, d3)] {
            for r in lo..hi {
                let new = self.scratch[r];
                self.commit_reg(self.reg_dst[r], new, vals);
            }
        }
        let nregs = self.reg_dst.len();
        for s in 0..self.sr_dst.len() {
            let new = self.scratch[nregs + s];
            self.commit_reg(self.sr_dst[s], new, vals);
        }
    }

    /// `n` fused eval+commit cycles, all inside the engine: the per-cycle
    /// loop is eval → sample → write → commit with change detection, so
    /// after the first settle only the cones of state that actually toggle
    /// are re-executed each cycle. The dirty queues reach a steady-state
    /// capacity during the first few edges and are reused thereafter —
    /// zero per-edge heap allocation.
    pub(crate) fn run_batch(&mut self, n: u64, vals: &mut [u64], mems: &mut [Vec<u64>]) {
        for _ in 0..n {
            self.step(vals, mems);
        }
    }

    /// Number of micro-ops in the stream (diagnostics).
    pub(crate) fn op_count(&self) -> usize {
        self.op_code.len()
    }

    /// Number of logic levels (diagnostics).
    pub(crate) fn level_count(&self) -> usize {
        self.level_queues.len()
    }

    /// Lowering / fusion statistics for this stream.
    pub(crate) fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Mutable access for the owner to graft pre-lowering accounting (the
    /// netopt ledger) into the stream statistics.
    pub(crate) fn stats_mut(&mut self) -> &mut EngineStats {
        &mut self.stats
    }

    /// Whether `vals[node]` is kept current by the engine. Nodes fused or
    /// elided out of the stream return `false` and must be evaluated on
    /// demand from their (still-computed) cone.
    pub(crate) fn is_computed(&self, node: u32) -> bool {
        self.computed[node as usize]
    }

    /// Compile-time constant comb nodes `(node, value)`; the owner seeds
    /// its value storage from this once after construction.
    pub(crate) fn folded_consts(&self) -> &[(u32, u64)] {
        &self.folded
    }

    /// Test hook: every operand of every op must come from a strictly
    /// shallower level (sources are level-less), i.e. fusion never absorbs
    /// across a level boundary in a way that would break the level-sweep
    /// execution order, and the stream is sorted by level.
    #[cfg(test)]
    pub(crate) fn check_level_invariant(&self) {
        let n = self.cons_start.len() - 1;
        let mut produced_level = vec![None; n];
        for i in 0..self.op_code.len() {
            produced_level[self.op_dst[i] as usize] = Some(self.op_level[i]);
        }
        for i in 0..self.op_code.len() {
            assert!(
                i == 0 || self.op_level[i - 1] <= self.op_level[i],
                "stream not sorted by level at op {i}"
            );
            let lvl = self.op_level[i];
            Self::op_operands(self, i, |dep| {
                if let Some(pl) = produced_level[dep as usize] {
                    assert!(
                        pl < lvl,
                        "op {i} (level {lvl}) consumes node {dep} produced at level {pl}"
                    );
                }
            });
        }
    }

    // ---- lane-batched execution -----------------------------------------
    //
    // The multi-lane mode steps L independent instances of the design
    // through the *same* micro-op stream: per-node value storage becomes a
    // node-major struct-of-arrays (`vals[node * L + lane]`) so the inner
    // lane loop of every op touches contiguous words, and memories become
    // per-lane banks inside one flat allocation. Dirty tracking is shared
    // across lanes — an op re-executes when *any* lane's inputs changed —
    // so one queue drain serves all instances and the per-op dispatch,
    // bookkeeping and consumer-marking cost is amortized L ways. The
    // chunked `lane_map*` helpers below stage operands through fixed-size
    // stack arrays, which gives LLVM alias-free loops it auto-vectorizes
    // to SIMD.
    //
    // The laned paths run the *same fused stream* as the scalar engine and
    // honor the same adaptive dense/cascade heuristics, but execute them
    // serially (the lane inner loops already saturate the memory ports) —
    // a documented bit-exact fallback from cross-partition threading.

    /// Execute op `i` across every lane. Returns whether any lane's
    /// destination value changed.
    #[inline(always)]
    fn exec_op_lanes(&self, i: usize, st: &mut LaneState) -> bool {
        let LaneState {
            lanes, vals, mems, ..
        } = st;
        let lanes = *lanes;
        let d0 = self.op_dst[i] as usize * lanes;
        let a0 = self.op_a[i] as usize * lanes;
        let b0 = self.op_b[i] as usize; // NONE for one-operand ops
        let imm = self.op_imm[i];
        match self.op_code[i] {
            OP_NOT => lane_map1(vals, d0, a0, lanes, |a| !a & imm),
            OP_RED_AND => lane_map1(vals, d0, a0, lanes, |a| u64::from(a == imm)),
            OP_RED_OR => lane_map1(vals, d0, a0, lanes, |a| u64::from(a != 0)),
            OP_RED_XOR => lane_map1(vals, d0, a0, lanes, |a| u64::from(a.count_ones() & 1 == 1)),
            OP_AND => lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, b| a & b),
            OP_OR => lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, b| a | b),
            OP_XOR => lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, b| a ^ b),
            OP_ADD => lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, b| {
                a.wrapping_add(b) & imm
            }),
            OP_SUB => lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, b| {
                a.wrapping_sub(b) & imm
            }),
            OP_MUL => lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, b| {
                a.wrapping_mul(b) & imm
            }),
            OP_EQ => lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, b| u64::from(a == b)),
            OP_NE => lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, b| u64::from(a != b)),
            OP_LT => lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, b| u64::from(a < b)),
            OP_LE => lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, b| u64::from(a <= b)),
            OP_SHL => {
                let w = self.op_c[i] as u64;
                lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, s| {
                    if s >= w {
                        0
                    } else {
                        (a << s) & imm
                    }
                })
            }
            OP_SHR => {
                let w = self.op_c[i] as u64;
                lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, s| {
                    if s >= w {
                        0
                    } else {
                        a >> s
                    }
                })
            }
            OP_MUX => lane_map3(
                vals,
                d0,
                a0,
                b0 * lanes,
                self.op_c[i] as usize * lanes,
                lanes,
                |s, t, f| if s != 0 { t } else { f },
            ),
            OP_SLICE => {
                let sh = self.op_c[i];
                lane_map1(vals, d0, a0, lanes, |a| (a >> sh) & imm)
            }
            OP_CONCAT => {
                let sh = self.op_c[i];
                lane_map2(vals, d0, a0, b0 * lanes, lanes, |hi, lo| (hi << sh) | lo)
            }
            OP_READ_ASYNC => {
                // Per-lane addresses diverge — a gather, looped scalar.
                let m = self.op_c[i] as usize;
                let words = st.mem_words[m];
                let bank = &mems[m];
                let mut diff = 0u64;
                for l in 0..lanes {
                    let addr = vals[a0 + l] as usize;
                    let v = if addr < words {
                        bank[l * words + addr]
                    } else {
                        0
                    };
                    diff |= v ^ vals[d0 + l];
                    vals[d0 + l] = v;
                }
                diff != 0
            }
            OP_NAND => lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, b| !(a & b) & imm),
            OP_NOR => lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, b| !(a | b) & imm),
            OP_XNOR => lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, b| !(a ^ b) & imm),
            OP_ANDN => lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, b| a & !b & imm),
            OP_AND3 => lane_map3(
                vals,
                d0,
                a0,
                b0 * lanes,
                self.op_c[i] as usize * lanes,
                lanes,
                |a, b, c| a & b & c,
            ),
            OP_OR3 => lane_map3(
                vals,
                d0,
                a0,
                b0 * lanes,
                self.op_c[i] as usize * lanes,
                lanes,
                |a, b, c| a | b | c,
            ),
            OP_XOR3 => lane_map3(
                vals,
                d0,
                a0,
                b0 * lanes,
                self.op_c[i] as usize * lanes,
                lanes,
                |a, b, c| a ^ b ^ c,
            ),
            OP_AND_IMM => lane_map1(vals, d0, a0, lanes, |a| a & imm),
            OP_OR_IMM => lane_map1(vals, d0, a0, lanes, |a| a | imm),
            OP_XOR_IMM => lane_map1(vals, d0, a0, lanes, |a| a ^ imm),
            OP_ADD_IMM => {
                let m = mask64(self.op_c[i]);
                lane_map1(vals, d0, a0, lanes, |a| a.wrapping_add(imm) & m)
            }
            OP_EQ_IMM => lane_map1(vals, d0, a0, lanes, |a| u64::from(a == imm)),
            OP_NE_IMM => lane_map1(vals, d0, a0, lanes, |a| u64::from(a != imm)),
            OP_MUX_EQI => lane_map3(
                vals,
                d0,
                a0,
                b0 * lanes,
                self.op_c[i] as usize * lanes,
                lanes,
                |s, t, f| if s == imm { t } else { f },
            ),
            OP_SHL_IMM => {
                let sh = self.op_c[i];
                lane_map1(vals, d0, a0, lanes, |a| (a << sh) & imm)
            }
            OP_REPACK => {
                let (l1, l2, w2, m1, m2) = repack_parts(self.op_c[i]);
                lane_map2(vals, d0, a0, b0 * lanes, lanes, |x, y| {
                    (((x >> l1) & m1) << w2) | ((y >> l2) & m2)
                })
            }
            OP_MUX_BIT => lane_map3(
                vals,
                d0,
                a0,
                b0 * lanes,
                self.op_c[i] as usize * lanes,
                lanes,
                |s, t, f| if (s >> imm) & 1 != 0 { t } else { f },
            ),
            OP_ANDSHR => {
                let sh = self.op_c[i];
                lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, b| {
                    a & ((b >> sh) & imm)
                })
            }
            OP_CAT3 => {
                let (s1, s2) = (imm & 0xff, (imm >> 8) & 0xff);
                lane_map3(
                    vals,
                    d0,
                    a0,
                    b0 * lanes,
                    self.op_c[i] as usize * lanes,
                    lanes,
                    |a, b, c| (((a << s1) | b) << s2) | c,
                )
            }
            OP_INC_IF => {
                let m = mask64(self.op_c[i]);
                lane_map2(vals, d0, a0, b0 * lanes, lanes, |s, q| {
                    if s != 0 {
                        q.wrapping_add(imm) & m
                    } else {
                        q
                    }
                })
            }
            OP_SELECT => {
                // Per-lane table gather: each lane's selector picks its own
                // leaf row. `b` is the selector shift, not a node id.
                let start = self.op_c[i] as usize;
                let sh = b0 as u32;
                let mut diff = 0u64;
                for l in 0..lanes {
                    let idx = ((vals[a0 + l] >> sh) & imm) as usize;
                    let v = vals[self.sel_tab[start + idx] as usize * lanes + l];
                    diff |= v ^ vals[d0 + l];
                    vals[d0 + l] = v;
                }
                diff != 0
            }
            _ => unreachable!("invalid opcode"),
        }
    }

    /// Laned [`CompiledEngine::eval`]: settle combinational values for
    /// every lane, draining the shared dirty queues once for all lanes.
    /// Honors the same adaptive dense/cascade heuristics as the scalar
    /// path, executed serially (bit-exact by construction).
    ///
    /// Threaded dispatch follows the scalar take/put-back pattern, with
    /// one twist: the lane program captures `node * lanes` row offsets, so
    /// it is built lazily on the first laned eval (the lane count is
    /// unknown at compile time) and rebuilt if the group width changes.
    pub(crate) fn eval_lanes(&mut self, st: &mut LaneState) {
        if !self.full_dirty && !self.any_dirty {
            return;
        }
        if self
            .threaded_lanes
            .0
            .as_ref()
            .is_some_and(|p| p.lanes != st.lanes)
        {
            self.threaded_lanes = ProgramCache(None);
        }
        let prog = self.threaded_lanes.0.take();
        match prog.as_ref() {
            Some(_) => self.stats.evals_threaded += 1,
            None => self.stats.evals_match += 1,
        }
        self.eval_lanes_inner(prog.as_ref(), st);
        self.threaded_lanes.0 = prog;
        if self.use_threaded && self.threaded_lanes.0.is_none() {
            self.rebuild_threaded_lanes(st.lanes);
        }
    }

    /// Compute op `i` across all lanes through the active dispatch
    /// backend; returns whether any lane's destination changed.
    #[inline(always)]
    fn compute_op_lanes(&self, prog: Option<&LaneProgram>, i: usize, st: &mut LaneState) -> bool {
        match prog {
            Some(p) => (p.ops[i])(st),
            None => self.exec_op_lanes(i, st),
        }
    }

    /// The laned eval body, parameterized over the dispatch backend.
    fn eval_lanes_inner(&mut self, prog: Option<&LaneProgram>, st: &mut LaneState) {
        if self.full_dirty {
            for i in 0..self.op_code.len() {
                self.compute_op_lanes(prog, i, st);
            }
            self.full_dirty = false;
            self.reset_dirty();
            self.sweep_first = self.level_queues.len() as u32;
            return;
        }
        if self.streaming {
            for i in 0..self.op_code.len() {
                self.compute_op_lanes(prog, i, st);
            }
            self.reset_dirty();
            self.sweep_first = self.level_queues.len() as u32;
            return;
        }
        if self.sweep_mode {
            for op in self.level_start[self.sweep_first as usize] as usize..self.op_code.len() {
                self.compute_op_lanes(prog, op, st);
            }
            self.sweep_first = self.level_queues.len() as u32;
            self.any_dirty = false;
            self.sweep_left -= 1;
            if self.sweep_left == 0 {
                self.sweep_mode = false;
                self.sweep_streak = 0;
            }
            return;
        }
        if !self.adaptive {
            for lvl in 0..self.level_queues.len() {
                self.drain_level_lanes(prog, lvl, st);
            }
            self.any_dirty = false;
            return;
        }
        let levels = self.level_queues.len();
        // Same global density escape as the scalar path (see `eval`).
        let mut queued_total = 0;
        let mut first_dirty = levels;
        for lvl in 0..levels {
            let q = self.level_queues[lvl].len();
            if q > 0 {
                queued_total += q;
                first_dirty = first_dirty.min(lvl);
            }
        }
        if first_dirty < levels {
            let rest = self.op_code.len() - self.level_start[first_dirty] as usize;
            if queued_total * SWEEP_DENSITY >= rest {
                for op in self.level_start[first_dirty] as usize..self.op_code.len() {
                    self.compute_op_lanes(prog, op, st);
                }
                self.reset_dirty();
                self.sweep_streak += 1;
                if self.sweep_streak >= SWEEP_ENTER {
                    self.sweep_mode = true;
                    self.sweep_left = SWEEP_HOLD;
                    self.sweep_first = levels as u32;
                }
                return;
            }
        }
        self.sweep_streak = 0;
        let mut cascade_from = None;
        for lvl in 0..levels {
            let queued = self.level_queues[lvl].len();
            if queued == 0 {
                continue;
            }
            let lo = self.level_start[lvl] as usize;
            let hi = self.level_start[lvl + 1] as usize;
            let span = hi - lo;
            if queued == span && span >= CASCADE_MIN_SPAN {
                cascade_from = Some(lvl);
                break;
            }
            if queued * 2 >= span && span >= DENSE_MIN_SPAN {
                let mut queue = std::mem::take(&mut self.level_queues[lvl]);
                for &op in &queue {
                    self.op_dirty[op as usize] = false;
                }
                queue.clear();
                self.level_queues[lvl] = queue;
                for op in lo..hi {
                    if self.compute_op_lanes(prog, op, st) {
                        self.mark_node_dirty(self.op_dst[op]);
                    }
                }
            } else {
                self.drain_level_lanes(prog, lvl, st);
            }
        }
        match cascade_from {
            Some(from) => {
                for op in self.level_start[from] as usize..self.op_code.len() {
                    self.compute_op_lanes(prog, op, st);
                }
                self.reset_dirty();
            }
            None => self.any_dirty = false,
        }
    }

    /// Drain one level's dirty queue across all lanes.
    fn drain_level_lanes(&mut self, prog: Option<&LaneProgram>, lvl: usize, st: &mut LaneState) {
        let mut queue = std::mem::take(&mut self.level_queues[lvl]);
        for &op32 in &queue {
            let op = op32 as usize;
            self.op_dirty[op] = false;
            if self.compute_op_lanes(prog, op, st) {
                self.mark_node_dirty(self.op_dst[op]);
            }
        }
        queue.clear();
        self.level_queues[lvl] = queue; // keep the allocation
    }

    /// Laned next-state sampling into the group's persistent scratch
    /// arena (phase 1: every lane still shows pre-edge values).
    ///
    /// The register loop runs every cycle over every register whether or
    /// not anything changed, so it is the steady-state floor of a laned
    /// step: the clear/enable cases are specialised per register
    /// *outside* the lane loop and the lane loop itself is branch-free
    /// (mask selects), which LLVM vectorizes.
    fn sample_state_lanes(&self, st: &mut LaneState) {
        let lanes = st.lanes;
        let nregs = self.reg_dst.len();
        let LaneState {
            vals,
            mems,
            mem_words,
            scratch,
            ..
        } = st;
        for r in 0..nregs {
            let q0 = self.reg_dst[r] as usize * lanes;
            let d0 = self.reg_d[r] as usize * lanes;
            let clr = self.reg_clr[r];
            let en = self.reg_en[r];
            let init = self.reg_init[r];
            let out = &mut scratch[r * lanes..(r + 1) * lanes];
            let d = &vals[d0..d0 + lanes];
            match (clr != NONE, en != NONE) {
                (false, false) => out.copy_from_slice(d),
                (false, true) => {
                    let q = &vals[q0..q0 + lanes];
                    let e = &vals[en as usize * lanes..en as usize * lanes + lanes];
                    for l in 0..lanes {
                        let hold = 0u64.wrapping_sub(u64::from(e[l] == 0));
                        out[l] = (hold & q[l]) | (!hold & d[l]);
                    }
                }
                (true, false) => {
                    let c = &vals[clr as usize * lanes..clr as usize * lanes + lanes];
                    for l in 0..lanes {
                        let rst = 0u64.wrapping_sub(u64::from(c[l] != 0));
                        out[l] = (rst & init) | (!rst & d[l]);
                    }
                }
                (true, true) => {
                    let q = &vals[q0..q0 + lanes];
                    let c = &vals[clr as usize * lanes..clr as usize * lanes + lanes];
                    let e = &vals[en as usize * lanes..en as usize * lanes + lanes];
                    for l in 0..lanes {
                        let hold = 0u64.wrapping_sub(u64::from(e[l] == 0));
                        let held = (hold & q[l]) | (!hold & d[l]);
                        let rst = 0u64.wrapping_sub(u64::from(c[l] != 0));
                        out[l] = (rst & init) | (!rst & held);
                    }
                }
            }
        }
        for s in 0..self.sr_dst.len() {
            let a0 = self.sr_addr[s] as usize * lanes;
            let m = self.sr_mem[s] as usize;
            let words = mem_words[m];
            let addrs = &vals[a0..a0 + lanes];
            let out = &mut scratch[(nregs + s) * lanes..(nregs + s + 1) * lanes];
            let bank = &mems[m];
            for l in 0..lanes {
                let addr = addrs[l] as usize;
                out[l] = if addr < words {
                    bank[l * words + addr]
                } else {
                    0
                };
            }
        }
    }

    /// Laned write-port application (phase 2) with per-memory change
    /// detection shared across lanes.
    fn apply_writes_lanes(&mut self, st: &mut LaneState) {
        for w in 0..self.wp_mem.len() {
            let m = self.wp_mem[w] as usize;
            let words = st.mem_words[m];
            let we0 = self.wp_we[w] as usize * st.lanes;
            let a0 = self.wp_addr[w] as usize * st.lanes;
            let d0 = self.wp_data[w] as usize * st.lanes;
            // Fast path: a port whose enable is low in every lane (the
            // common idle state) costs one vectorizable OR reduction.
            if st.vals[we0..we0 + st.lanes].iter().all(|&we| we == 0) {
                continue;
            }
            let mut touched = false;
            for l in 0..st.lanes {
                if st.vals[we0 + l] != 0 {
                    let addr = st.vals[a0 + l] as usize;
                    if addr < words {
                        let data = st.vals[d0 + l];
                        let slot = &mut st.mems[m][l * words + addr];
                        if *slot != data {
                            *slot = data;
                            touched = true;
                        }
                    }
                }
            }
            if touched {
                self.mark_mem_dirty(self.wp_mem[w]);
            }
        }
    }

    /// One clock edge applied to every lane: eval, sample, write, commit
    /// with change detection, mirroring [`CompiledEngine::step`] exactly
    /// but amortizing the bookkeeping across all lanes.
    pub(crate) fn step_lanes(&mut self, st: &mut LaneState) {
        self.eval_lanes(st);
        self.sample_state_lanes(st);
        self.apply_writes_lanes(st);
        let lanes = st.lanes;
        let nregs = self.reg_dst.len();
        let nstate = nregs + self.sr_dst.len();
        for k in 0..nstate {
            let dst = if k < nregs {
                self.reg_dst[k]
            } else {
                self.sr_dst[k - nregs]
            };
            let d0 = dst as usize * lanes;
            let src = &st.scratch[k * lanes..(k + 1) * lanes];
            let cur = &mut st.vals[d0..d0 + lanes];
            let mut diff = 0u64;
            for l in 0..lanes {
                diff |= src[l] ^ cur[l];
            }
            if diff != 0 {
                cur.copy_from_slice(src);
                self.mark_node_dirty(dst);
            }
        }
    }

    /// `n` fused laned cycles — the multi-instance counterpart of
    /// [`CompiledEngine::run_batch`], with zero per-edge heap allocation
    /// (the lane arena and the dirty queues are reused across edges).
    pub(crate) fn run_batch_lanes(&mut self, n: u64, st: &mut LaneState) {
        for _ in 0..n {
            self.step_lanes(st);
        }
    }
}

// ---- peephole + superop fusion -------------------------------------------

/// Kill op `i` and release its operand references (for a collapsed
/// `OP_SELECT`, one reference per table leaf plus the selector).
fn kill_op(w: &mut WorkOps, i: usize, cnt: &mut [u32]) {
    w.killed[i] = true;
    if w.code[i] == OP_SELECT {
        cnt[w.a[i] as usize] -= 1;
        let start = w.c[i] as usize;
        for k in start..start + w.imm[i] as usize + 1 {
            cnt[w.tab[k] as usize] -= 1;
        }
        return;
    }
    visit_code_operands(w.code[i], w.a[i], w.b[i], w.c[i], |dep| {
        cnt[dep as usize] -= 1;
    });
}

/// Fold op `i` to the compile-time constant `v`.
fn fold_to_const(
    w: &mut WorkOps,
    i: usize,
    v: u64,
    cnt: &mut [u32],
    konst: &mut [Option<u64>],
    folded: &mut Vec<(u32, u64)>,
    stats: &mut EngineStats,
) {
    kill_op(w, i, cnt);
    konst[w.dst[i] as usize] = Some(v);
    folded.push((w.dst[i], v));
    stats.consts_folded += 1;
}

/// Deepest selector bit a collapsed select tree may test: bit 7 bounds the
/// leaf table at 256 entries, past which the gather's cache footprint beats
/// the dispatches it saves.
const SELECT_MAX_BIT: u64 = 7;

/// Collect, in selector order, the leaves of a complete `MUX_BIT` subtree:
/// `node` must be produced by a sole-consumer, non-external mux testing
/// `sel` bit `bit`, recursing down to bit 0; at `bit == -1` the node itself
/// is a leaf. Interior ops are recorded in `kill` for the caller to apply
/// only if the whole tree gathers — nothing is mutated here, so a partial
/// (non-power-of-two) tree aborts without damage.
#[allow(clippy::too_many_arguments)]
fn gather_select_tree(
    w: &WorkOps,
    dst_op: &[u32],
    cnt: &[u32],
    ext_ref: &[bool],
    sel: u32,
    node: u32,
    bit: i64,
    leaves: &mut Vec<u32>,
    kill: &mut Vec<usize>,
) -> bool {
    if bit < 0 {
        leaves.push(node);
        return true;
    }
    let Some(p) = fusable(w, dst_op, cnt, ext_ref, node) else {
        return false;
    };
    if w.code[p] != OP_MUX_BIT || w.a[p] != sel || w.imm[p] != bit as u64 {
        return false;
    }
    kill.push(p);
    gather_select_tree(w, dst_op, cnt, ext_ref, sel, w.c[p], bit - 1, leaves, kill)
        && gather_select_tree(w, dst_op, cnt, ext_ref, sel, w.b[p], bit - 1, leaves, kill)
}

/// Is `node` a producer op that can be absorbed into its sole consumer?
/// Requires a live producing op, exactly one consuming op, and no external
/// reference (named signal, output, state-plan read).
fn fusable(w: &WorkOps, dst_op: &[u32], cnt: &[u32], ext_ref: &[bool], node: u32) -> Option<usize> {
    let p = dst_op[node as usize];
    if p == NONE {
        return None;
    }
    let p = p as usize;
    if w.killed[p] || cnt[node as usize] != 1 || ext_ref[node as usize] {
        return None;
    }
    Some(p)
}

/// The peephole + fusion pipeline over the lowered stream, in three
/// passes (all in emit order, which is level order, so operand facts are
/// final before any consumer inspects them):
///
/// **A. constant peephole** — ops whose inputs are all compile-time
/// constants fold away entirely (recorded in `folded` so `Sim` can seed
/// their values); a constant on one side of a binop rewrites in place to
/// an immediate form (`AND_IMM`, `ADD_IMM`, `EQ_IMM`, `SHL_IMM`, …).
///
/// **B. superop fusion** — a producer with exactly one consumer and no
/// external reference is absorbed into that consumer as a fused superop:
/// op→NOT chains (`NAND`/`NOR`/`XNOR`, comparison inversions), AND/OR/XOR
/// trees (`AND3`…), `ANDN`, compare-and-select (`MUX_EQI`, mux arm
/// swaps), SLICE-of-SLICE collapse and SLICE+CONCAT re-packs (`REPACK`).
/// The fused op keeps its original level, and absorbed operands come from
/// strictly shallower levels, so fusion never reaches across a level
/// boundary (asserted by `check_level_invariant`).
///
/// **C. dead elision** — a reverse sweep removes ops whose destination
/// has no remaining consumer and no external reference (cascading).
fn fuse_stream(
    nodes: &[Node],
    w: &mut WorkOps,
    ext_ref: &[bool],
    folded: &mut Vec<(u32, u64)>,
    stats: &mut EngineStats,
) {
    let n = nodes.len();
    let mut konst: Vec<Option<u64>> = vec![None; n];
    for (idx, node) in nodes.iter().enumerate() {
        if let Node::Const { value, .. } = node {
            konst[idx] = Some(*value);
        }
    }
    let mut cnt = vec![0u32; n];
    let mut dst_op = vec![NONE; n];
    for i in 0..w.code.len() {
        w.visit_operands(i, |dep| cnt[dep as usize] += 1);
        dst_op[w.dst[i] as usize] = i as u32;
    }

    // ---- pass A: constant folding & immediate rewrites ----
    for i in 0..w.code.len() {
        let code = w.code[i];
        if code != OP_READ_ASYNC {
            let mut all_const = true;
            w.visit_operands(i, |dep| all_const &= konst[dep as usize].is_some());
            if all_const {
                let v = exec_scalar(
                    code,
                    w.a[i],
                    w.b[i],
                    w.c[i],
                    w.imm[i],
                    &mut |nd| konst[nd as usize].unwrap(),
                    &mut |_, _| unreachable!("const fold never reads memory"),
                );
                fold_to_const(w, i, v, &mut cnt, &mut konst, folded, stats);
                continue;
            }
        }
        let (ka, kb) = (
            konst[w.a[i] as usize],
            if w.b[i] == NONE {
                None
            } else {
                konst[w.b[i] as usize]
            },
        );
        match code {
            OP_AND | OP_OR | OP_XOR => {
                let (var, k) = match (ka, kb) {
                    (Some(k), None) => (w.b[i], k),
                    (None, Some(k)) => (w.a[i], k),
                    _ => continue,
                };
                if code == OP_AND && k == 0 {
                    fold_to_const(w, i, 0, &mut cnt, &mut konst, folded, stats);
                    continue;
                }
                let konst_side = if var == w.b[i] { w.a[i] } else { w.b[i] };
                cnt[konst_side as usize] -= 1;
                w.code[i] = match code {
                    OP_AND => OP_AND_IMM,
                    OP_OR => OP_OR_IMM,
                    _ => OP_XOR_IMM,
                };
                w.a[i] = var;
                w.b[i] = NONE;
                w.imm[i] = k;
                stats.imm_rewrites += 1;
            }
            OP_ADD | OP_SUB => {
                // ADD commutes; SUB only folds a constant subtrahend
                // (two's complement into the addend immediate).
                let (var, k) = match (ka, kb, code) {
                    (None, Some(k), OP_ADD) => (w.a[i], k),
                    (Some(k), None, OP_ADD) => (w.b[i], k),
                    (None, Some(k), OP_SUB) => (w.a[i], k.wrapping_neg()),
                    _ => continue,
                };
                let konst_side = if var == w.a[i] { w.b[i] } else { w.a[i] };
                cnt[konst_side as usize] -= 1;
                let width = w.imm[i].count_ones();
                w.code[i] = OP_ADD_IMM;
                w.a[i] = var;
                w.b[i] = NONE;
                w.c[i] = width;
                w.imm[i] = k;
                stats.imm_rewrites += 1;
            }
            OP_EQ | OP_NE => {
                let (var, k) = match (ka, kb) {
                    (Some(k), None) => (w.b[i], k),
                    (None, Some(k)) => (w.a[i], k),
                    _ => continue,
                };
                let konst_side = if var == w.b[i] { w.a[i] } else { w.b[i] };
                cnt[konst_side as usize] -= 1;
                w.code[i] = if code == OP_EQ { OP_EQ_IMM } else { OP_NE_IMM };
                w.a[i] = var;
                w.b[i] = NONE;
                w.imm[i] = k;
                stats.imm_rewrites += 1;
            }
            OP_SHL | OP_SHR => {
                let Some(k) = kb else { continue };
                let aw = w.c[i] as u64;
                if k >= aw {
                    fold_to_const(w, i, 0, &mut cnt, &mut konst, folded, stats);
                    continue;
                }
                cnt[w.b[i] as usize] -= 1;
                if code == OP_SHL {
                    w.code[i] = OP_SHL_IMM; // imm stays the result mask
                } else {
                    w.code[i] = OP_SLICE;
                    w.imm[i] = mask64(aw as u32); // premasked operand ⇒ no-op mask
                }
                w.b[i] = NONE;
                w.c[i] = k as u32;
                stats.imm_rewrites += 1;
            }
            OP_MUL => {
                let (var, k) = match (ka, kb) {
                    (Some(k), None) => (w.b[i], k),
                    (None, Some(k)) => (w.a[i], k),
                    _ => continue,
                };
                if k == 0 {
                    fold_to_const(w, i, 0, &mut cnt, &mut konst, folded, stats);
                    continue;
                }
                if !k.is_power_of_two() {
                    continue;
                }
                let konst_side = if var == w.b[i] { w.a[i] } else { w.b[i] };
                cnt[konst_side as usize] -= 1;
                w.code[i] = OP_SHL_IMM; // imm stays the result mask
                w.a[i] = var;
                w.b[i] = NONE;
                w.c[i] = k.trailing_zeros();
                stats.imm_rewrites += 1;
            }
            OP_CONCAT => {
                // Constant hi half (the `zext` idiom) ORs in as an immediate
                // over the lo half.
                let Some(k) = ka else { continue };
                cnt[w.a[i] as usize] -= 1;
                w.code[i] = OP_OR_IMM;
                w.imm[i] = k << w.c[i];
                w.a[i] = w.b[i];
                w.b[i] = NONE;
                w.c[i] = NONE;
                stats.imm_rewrites += 1;
            }
            OP_MUX => {
                // Constant select: the mux is a wire to the taken arm.
                let Some(k) = ka else { continue };
                let (taken, dropped) = if k != 0 {
                    (w.b[i], w.c[i])
                } else {
                    (w.c[i], w.b[i])
                };
                cnt[w.a[i] as usize] -= 1;
                cnt[dropped as usize] -= 1;
                w.code[i] = OP_OR_IMM;
                w.a[i] = taken;
                w.b[i] = NONE;
                w.c[i] = NONE;
                w.imm[i] = 0;
                stats.imm_rewrites += 1;
            }
            _ => {}
        }
    }

    // ---- pass B: superop fusion ----
    for i in 0..w.code.len() {
        if w.killed[i] {
            continue;
        }
        // Absorb producer op `p` (destination `node`) into op `i`.
        macro_rules! absorb {
            ($p:expr, $node:expr) => {{
                w.killed[$p] = true;
                cnt[$node as usize] -= 1;
                stats.ops_fused += 1;
            }};
        }
        match w.code[i] {
            OP_NOT => {
                let x = w.a[i];
                let Some(p) = fusable(w, &dst_op, &cnt, ext_ref, x) else {
                    continue;
                };
                let m = w.imm[i];
                let repl = match w.code[p] {
                    OP_AND => Some((OP_NAND, w.a[p], w.b[p], m)),
                    OP_OR => Some((OP_NOR, w.a[p], w.b[p], m)),
                    OP_XOR => Some((OP_XNOR, w.a[p], w.b[p], m)),
                    OP_EQ if m == 1 => Some((OP_NE, w.a[p], w.b[p], 0)),
                    OP_NE if m == 1 => Some((OP_EQ, w.a[p], w.b[p], 0)),
                    OP_LT if m == 1 => Some((OP_LE, w.b[p], w.a[p], 0)),
                    OP_LE if m == 1 => Some((OP_LT, w.b[p], w.a[p], 0)),
                    OP_RED_OR if m == 1 => Some((OP_EQ_IMM, w.a[p], NONE, 0)),
                    OP_RED_AND if m == 1 => Some((OP_NE_IMM, w.a[p], NONE, w.imm[p])),
                    OP_EQ_IMM if m == 1 => Some((OP_NE_IMM, w.a[p], NONE, w.imm[p])),
                    OP_NE_IMM if m == 1 => Some((OP_EQ_IMM, w.a[p], NONE, w.imm[p])),
                    // NOT(NOT(y) & m1) & m2 = y & m2 when m2 ⊆ m1.
                    OP_NOT if m & !w.imm[p] == 0 => Some((OP_AND_IMM, w.a[p], NONE, m)),
                    _ => None,
                };
                if let Some((c2, a2, b2, imm2)) = repl {
                    w.code[i] = c2;
                    w.a[i] = a2;
                    w.b[i] = b2;
                    w.imm[i] = imm2;
                    absorb!(p, x);
                }
            }
            OP_AND | OP_OR | OP_XOR => {
                let (x, y) = (w.a[i], w.b[i]);
                let same = w.code[i];
                // A NOT on either side fuses into ANDN / XNOR first.
                if same != OP_OR {
                    let mut fused_not = false;
                    for (not_side, keep) in [(y, x), (x, y)] {
                        if let Some(p) = fusable(w, &dst_op, &cnt, ext_ref, not_side) {
                            if w.code[p] == OP_NOT {
                                w.code[i] = if same == OP_AND { OP_ANDN } else { OP_XNOR };
                                w.a[i] = keep;
                                w.b[i] = w.a[p];
                                w.imm[i] = w.imm[p];
                                absorb!(p, not_side);
                                fused_not = true;
                                break;
                            }
                        }
                    }
                    if fused_not {
                        continue;
                    }
                }
                // Same-op producer on either side widens to a 3-input op.
                let three = match same {
                    OP_AND => OP_AND3,
                    OP_OR => OP_OR3,
                    _ => OP_XOR3,
                };
                for (tree_side, keep) in [(x, y), (y, x)] {
                    if let Some(p) = fusable(w, &dst_op, &cnt, ext_ref, tree_side) {
                        if w.code[p] == same {
                            w.code[i] = three;
                            w.a[i] = w.a[p];
                            w.b[i] = w.b[p];
                            w.c[i] = keep;
                            absorb!(p, tree_side);
                            break;
                        }
                    }
                }
                // Bit-gate idiom: `x & slice(y, l, w)` in one dispatch.
                if w.code[i] == OP_AND {
                    for (slice_side, keep) in [(y, x), (x, y)] {
                        if let Some(p) = fusable(w, &dst_op, &cnt, ext_ref, slice_side) {
                            if w.code[p] == OP_SLICE {
                                w.code[i] = OP_ANDSHR;
                                w.a[i] = keep;
                                w.b[i] = w.a[p];
                                w.c[i] = w.c[p];
                                w.imm[i] = w.imm[p];
                                absorb!(p, slice_side);
                                break;
                            }
                        }
                    }
                }
            }
            OP_MUX => {
                let sel = w.a[i];
                if let Some(p) = fusable(w, &dst_op, &cnt, ext_ref, sel) {
                    match w.code[p] {
                        OP_EQ_IMM => {
                            w.code[i] = OP_MUX_EQI;
                            w.a[i] = w.a[p];
                            w.imm[i] = w.imm[p];
                            absorb!(p, sel);
                        }
                        OP_NE_IMM => {
                            w.code[i] = OP_MUX_EQI;
                            w.a[i] = w.a[p];
                            w.imm[i] = w.imm[p];
                            let (t, f) = (w.b[i], w.c[i]);
                            w.b[i] = f;
                            w.c[i] = t;
                            absorb!(p, sel);
                        }
                        OP_RED_AND => {
                            w.code[i] = OP_MUX_EQI;
                            w.a[i] = w.a[p];
                            w.imm[i] = w.imm[p];
                            absorb!(p, sel);
                        }
                        OP_RED_OR => {
                            // mux tests `!= 0` anyway — drop the reduction.
                            w.a[i] = w.a[p];
                            absorb!(p, sel);
                        }
                        // Select-tree idiom: the select is one extracted bit.
                        OP_SLICE if w.imm[p] == 1 => {
                            w.code[i] = OP_MUX_BIT;
                            w.a[i] = w.a[p];
                            w.imm[i] = w.c[p] as u64;
                            absorb!(p, sel);
                        }
                        OP_NOT if w.imm[p] == 1 => {
                            w.a[i] = w.a[p];
                            let (t, f) = (w.b[i], w.c[i]);
                            w.b[i] = f;
                            w.c[i] = t;
                            absorb!(p, sel);
                        }
                        _ => {}
                    }
                }
                // Counter idiom: the taken arm adds a constant to the other
                // arm — `mux(en, q + k, q)` becomes one guarded increment.
                if w.code[i] == OP_MUX {
                    let (t, f) = (w.b[i], w.c[i]);
                    if let Some(p) = fusable(w, &dst_op, &cnt, ext_ref, t) {
                        if w.code[p] == OP_ADD_IMM && w.a[p] == f {
                            w.code[i] = OP_INC_IF;
                            w.b[i] = f;
                            w.c[i] = w.c[p];
                            w.imm[i] = w.imm[p];
                            absorb!(p, t);
                            // The absorbed add's `f` reference merges with
                            // the mux's own else-arm reference.
                            cnt[f as usize] -= 1;
                        }
                    }
                }
            }
            OP_SLICE => {
                let x = w.a[i];
                let Some(p) = fusable(w, &dst_op, &cnt, ext_ref, x) else {
                    continue;
                };
                if w.code[p] == OP_SLICE {
                    // slice(slice(y, l1) & m1, l2) & m2 = slice(y, l1+l2) &
                    // ((m1 >> l2) & m2); l1+l2 < 64 because the inner slice
                    // must still cover the outer range.
                    w.imm[i] &= w.imm[p] >> w.c[i];
                    w.c[i] += w.c[p];
                    w.a[i] = w.a[p];
                    absorb!(p, x);
                }
            }
            OP_CONCAT => {
                let (hi, lo) = (w.a[i], w.b[i]);
                let lo_w = w.c[i];
                // A CONCAT feeding a CONCAT (the left-fold `cat` chain)
                // collapses into a three-part CAT3 re-pack.
                if let Some(p) = fusable(w, &dst_op, &cnt, ext_ref, hi) {
                    if w.code[p] == OP_CONCAT {
                        // ((pa << pc) | pb) << lo_w | lo
                        w.imm[i] = u64::from(w.c[p]) | (u64::from(lo_w) << 8);
                        w.a[i] = w.a[p];
                        w.b[i] = w.b[p];
                        w.c[i] = lo;
                        w.code[i] = OP_CAT3;
                        absorb!(p, hi);
                        continue;
                    }
                }
                if let Some(p) = fusable(w, &dst_op, &cnt, ext_ref, lo) {
                    if w.code[p] == OP_CONCAT {
                        // (hi << lo_w) | (pa << pc) | pb, with the hi shift
                        // split as (hi << (lo_w - pc)) | pa, then << pc.
                        let pc = w.c[p];
                        w.imm[i] = u64::from(lo_w - pc) | (u64::from(pc) << 8);
                        w.b[i] = w.a[p];
                        w.c[i] = w.b[p];
                        w.code[i] = OP_CAT3;
                        absorb!(p, lo);
                        continue;
                    }
                }
                let hi_w = node_width(&nodes[w.dst[i] as usize]) as u32 - lo_w;
                let mut l1 = 0u32;
                let mut l2 = 0u32;
                let (mut na, mut nb) = (hi, lo);
                let mut any = false;
                if let Some(p) = fusable(w, &dst_op, &cnt, ext_ref, hi) {
                    if w.code[p] == OP_SLICE {
                        na = w.a[p];
                        l1 = w.c[p];
                        absorb!(p, hi);
                        any = true;
                    }
                }
                if let Some(p) = fusable(w, &dst_op, &cnt, ext_ref, lo) {
                    if w.code[p] == OP_SLICE {
                        nb = w.a[p];
                        l2 = w.c[p];
                        absorb!(p, lo);
                        any = true;
                    }
                }
                if any {
                    w.code[i] = OP_REPACK;
                    w.a[i] = na;
                    w.b[i] = nb;
                    w.c[i] = l1 | (l2 << 8) | (hi_w << 16) | (lo_w << 24);
                    w.imm[i] = 0;
                }
            }
            _ => {}
        }
    }

    // ---- pass B2: select-tree collapse ----
    // `Design::select` lowers an N-way readout into a balanced tree of
    // MUX_BITs testing successive selector bits; pass B has already turned
    // every interior mux into that shape. When a complete tree survives
    // with one consumer per interior mux and the same selector throughout,
    // the whole tree is a single table lookup — dst = leaves[sel & mask] —
    // and all 2^depth - 2 interior dispatches die. The reverse sweep hits
    // outermost roots first, so nested subtrees collapse into their
    // largest enclosing tree rather than fragmenting.
    for i in (0..w.code.len()).rev() {
        if w.killed[i] || w.code[i] != OP_MUX_BIT {
            continue;
        }
        let bit = w.imm[i];
        if !(1..=SELECT_MAX_BIT).contains(&bit) {
            continue;
        }
        let sel = w.a[i];
        let mut leaves = Vec::with_capacity(2usize << bit);
        let mut kill = Vec::new();
        // Selector order: bit clear → `c` arm, so the low half gathers first.
        let lo = w.c[i];
        let hi = w.b[i];
        if !gather_select_tree(
            w,
            &dst_op,
            &cnt,
            ext_ref,
            sel,
            lo,
            bit as i64 - 1,
            &mut leaves,
            &mut kill,
        ) || !gather_select_tree(
            w,
            &dst_op,
            &cnt,
            ext_ref,
            sel,
            hi,
            bit as i64 - 1,
            &mut leaves,
            &mut kill,
        ) {
            continue;
        }
        for &p in &kill {
            w.killed[p] = true;
            // The parent's reference to this mux's dst is gone; leaf arm
            // references transfer to the table unchanged, but each interior
            // mux also read the selector once.
            cnt[w.dst[p] as usize] -= 1;
            cnt[sel as usize] -= 1;
            stats.ops_fused += 1;
        }
        let start = w.tab.len() as u32;
        w.tab.extend_from_slice(&leaves);
        w.code[i] = OP_SELECT;
        w.b[i] = 0; // selector shift: gathered trees always bottom at bit 0
        w.c[i] = start;
        w.imm[i] = (leaves.len() - 1) as u64;
    }

    // ---- pass C: dead elision (reverse sweep, cascading) ----
    for i in (0..w.code.len()).rev() {
        if w.killed[i] {
            continue;
        }
        let dst = w.dst[i] as usize;
        if cnt[dst] == 0 && !ext_ref[dst] {
            kill_op(w, i, &mut cnt);
            stats.ops_elided += 1;
        }
    }
}

/// Lanes per chunk of the laned inner loops. Operand values are staged
/// through `[u64; LANE_CHUNK]` stack arrays so the compute loop is free
/// of aliasing and bounds checks — the shape LLVM auto-vectorizes.
pub(crate) const LANE_CHUNK: usize = 8;

/// Structure-of-arrays state for a group of independent lanes, owned by
/// [`LaneGroup`](crate::lanes::LaneGroup) and operated on by the laned
/// `CompiledEngine` paths. All buffers are allocated once at fork time
/// and reused for the group's lifetime — an allocation-free lane arena.
#[derive(Debug, Clone)]
pub(crate) struct LaneState {
    /// Number of instances stepped together.
    pub lanes: usize,
    /// `vals[node * lanes + lane]` — node-major, so each op's inner lane
    /// loop sweeps contiguous words.
    pub vals: Vec<u64>,
    /// Per memory, one flat per-lane bank: `mems[m][lane * words + addr]`.
    pub mems: Vec<Vec<u64>>,
    /// Word count of each memory (one lane's bank).
    pub mem_words: Vec<usize>,
    /// Persistent next-state sample arena: (registers + sync read ports)
    /// × lanes.
    pub scratch: Vec<u64>,
}

/// Apply `f` lane-wise to one operand row, writing the destination row.
/// Returns whether any lane's destination changed.
#[inline(always)]
fn lane_map1(vals: &mut [u64], d0: usize, a0: usize, lanes: usize, f: impl Fn(u64) -> u64) -> bool {
    let mut diff = 0u64;
    let mut l = 0;
    while l + LANE_CHUNK <= lanes {
        let mut av = [0u64; LANE_CHUNK];
        av.copy_from_slice(&vals[a0 + l..a0 + l + LANE_CHUNK]);
        let mut out = [0u64; LANE_CHUNK];
        for (o, &a) in out.iter_mut().zip(&av) {
            *o = f(a);
        }
        for (&o, &d) in out.iter().zip(&vals[d0 + l..d0 + l + LANE_CHUNK]) {
            diff |= o ^ d;
        }
        vals[d0 + l..d0 + l + LANE_CHUNK].copy_from_slice(&out);
        l += LANE_CHUNK;
    }
    while l < lanes {
        let new = f(vals[a0 + l]);
        diff |= new ^ vals[d0 + l];
        vals[d0 + l] = new;
        l += 1;
    }
    diff != 0
}

/// Two-operand lane-wise map. See [`lane_map1`].
#[inline(always)]
fn lane_map2(
    vals: &mut [u64],
    d0: usize,
    a0: usize,
    b0: usize,
    lanes: usize,
    f: impl Fn(u64, u64) -> u64,
) -> bool {
    let mut diff = 0u64;
    let mut l = 0;
    while l + LANE_CHUNK <= lanes {
        let mut av = [0u64; LANE_CHUNK];
        let mut bv = [0u64; LANE_CHUNK];
        av.copy_from_slice(&vals[a0 + l..a0 + l + LANE_CHUNK]);
        bv.copy_from_slice(&vals[b0 + l..b0 + l + LANE_CHUNK]);
        let mut out = [0u64; LANE_CHUNK];
        for ((o, &a), &b) in out.iter_mut().zip(&av).zip(&bv) {
            *o = f(a, b);
        }
        for (&o, &d) in out.iter().zip(&vals[d0 + l..d0 + l + LANE_CHUNK]) {
            diff |= o ^ d;
        }
        vals[d0 + l..d0 + l + LANE_CHUNK].copy_from_slice(&out);
        l += LANE_CHUNK;
    }
    while l < lanes {
        let new = f(vals[a0 + l], vals[b0 + l]);
        diff |= new ^ vals[d0 + l];
        vals[d0 + l] = new;
        l += 1;
    }
    diff != 0
}

/// Three-operand lane-wise map (the mux). See [`lane_map1`].
#[inline(always)]
fn lane_map3(
    vals: &mut [u64],
    d0: usize,
    a0: usize,
    b0: usize,
    c0: usize,
    lanes: usize,
    f: impl Fn(u64, u64, u64) -> u64,
) -> bool {
    let mut diff = 0u64;
    let mut l = 0;
    while l + LANE_CHUNK <= lanes {
        let mut av = [0u64; LANE_CHUNK];
        let mut bv = [0u64; LANE_CHUNK];
        let mut cv = [0u64; LANE_CHUNK];
        av.copy_from_slice(&vals[a0 + l..a0 + l + LANE_CHUNK]);
        bv.copy_from_slice(&vals[b0 + l..b0 + l + LANE_CHUNK]);
        cv.copy_from_slice(&vals[c0 + l..c0 + l + LANE_CHUNK]);
        let mut out = [0u64; LANE_CHUNK];
        for (((o, &a), &b), &c) in out.iter_mut().zip(&av).zip(&bv).zip(&cv) {
            *o = f(a, b, c);
        }
        for (&o, &d) in out.iter().zip(&vals[d0 + l..d0 + l + LANE_CHUNK]) {
            diff |= o ^ d;
        }
        vals[d0 + l..d0 + l + LANE_CHUNK].copy_from_slice(&out);
        l += LANE_CHUNK;
    }
    while l < lanes {
        let new = f(vals[a0 + l], vals[b0 + l], vals[c0 + l]);
        diff |= new ^ vals[d0 + l];
        vals[d0 + l] = new;
        l += 1;
    }
    diff != 0
}

/// Visit each combinational operand of `node` (mirrors the simulator's
/// dependency rules: state nodes and memory contents are cycle boundaries).
pub(crate) fn for_each_operand(node: &Node, mut f: impl FnMut(u32)) {
    match node {
        Node::Input { .. } | Node::Const { .. } => {}
        Node::Unop { a, .. } | Node::Slice { a, .. } => f(*a),
        Node::Binop { a, b, .. } => {
            f(*a);
            f(*b);
        }
        Node::Mux { sel, t, f: fe, .. } => {
            f(*sel);
            f(*t);
            f(*fe);
        }
        Node::Concat { hi, lo, .. } => {
            f(*hi);
            f(*lo);
        }
        Node::ReadPort {
            addr, sync: false, ..
        } => f(*addr),
        Node::Reg { .. } | Node::ReadPort { sync: true, .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repack_parts_round_trip() {
        let (l1, l2, w2) = (13u32, 7u32, 24u32);
        let w1 = 40u32;
        let c = l1 | (l2 << 8) | (w1 << 16) | (w2 << 24);
        let (rl1, rl2, rw2, m1, m2) = repack_parts(c);
        assert_eq!((rl1, rl2, rw2), (l1, l2, w2));
        assert_eq!(m1, mask64(w1));
        assert_eq!(m2, mask64(w2));
    }

    #[test]
    fn every_opcode_has_a_name() {
        for code in 0..=OP_SELECT {
            assert_ne!(op_name(code), "invalid", "opcode {code} unnamed");
        }
        assert_eq!(op_name(OP_SELECT + 1), "invalid");
    }

    #[test]
    fn exec_scalar_superop_semantics() {
        let vals = [0u64, 0b1100, 0b1010, 3];
        let mut val = |n: u32| vals[n as usize];
        let mut mem = |_: u32, _: u64| unreachable!();
        let m = mask64(4);
        assert_eq!(exec_scalar(OP_NAND, 1, 2, 0, m, &mut val, &mut mem), 0b0111);
        assert_eq!(exec_scalar(OP_NOR, 1, 2, 0, m, &mut val, &mut mem), 0b0001);
        assert_eq!(exec_scalar(OP_XNOR, 1, 2, 0, m, &mut val, &mut mem), 0b1001);
        assert_eq!(exec_scalar(OP_ANDN, 1, 2, 0, m, &mut val, &mut mem), 0b0100);
        assert_eq!(
            exec_scalar(OP_AND3, 1, 2, 3, 0, &mut val, &mut mem),
            0b1100 & 0b1010 & 3
        );
        assert_eq!(
            exec_scalar(OP_ADD_IMM, 1, NONE, 4, 7, &mut val, &mut mem),
            (0b1100 + 7) & 0xf
        );
        assert_eq!(
            exec_scalar(OP_EQ_IMM, 1, NONE, 0, 0b1100, &mut val, &mut mem),
            1
        );
        assert_eq!(
            exec_scalar(OP_NE_IMM, 1, NONE, 0, 0b1100, &mut val, &mut mem),
            0
        );
        assert_eq!(
            exec_scalar(OP_MUX_EQI, 1, 2, 3, 0b1100, &mut val, &mut mem),
            0b1010
        );
        assert_eq!(
            exec_scalar(OP_SHL_IMM, 3, NONE, 2, mask64(4), &mut val, &mut mem),
            0b1100
        );
        // repack: hi = vals[1][2..6) (w1=4, l1=2), lo = vals[2][1..4) (w2=3)
        let c = 2 | (1 << 8) | (4 << 16) | (3 << 24);
        assert_eq!(
            exec_scalar(OP_REPACK, 1, 2, c, 0, &mut val, &mut mem),
            (0b0011 << 3) | 0b101
        );
        // mux_bit: bit 3 of vals[1] = 1 → taken arm; bit 0 = 0 → else arm.
        assert_eq!(
            exec_scalar(OP_MUX_BIT, 1, 2, 3, 3, &mut val, &mut mem),
            0b1010
        );
        assert_eq!(exec_scalar(OP_MUX_BIT, 1, 2, 3, 0, &mut val, &mut mem), 3);
        // andshr: vals[1] & ((vals[2] >> 1) & 0b111)
        assert_eq!(
            exec_scalar(OP_ANDSHR, 1, 2, 1, 0b111, &mut val, &mut mem),
            0b1100 & 0b101
        );
        // cat3: ((vals[3] << 4) | vals[1]) << 4 | vals[2]
        assert_eq!(
            exec_scalar(OP_CAT3, 3, 1, 2, 4 | (4 << 8), &mut val, &mut mem),
            (3 << 8) | (0b1100 << 4) | 0b1010
        );
        // inc_if: vals[1] != 0 → (vals[2] + 7) & 0xf; vals[0] == 0 → pass-through.
        assert_eq!(
            exec_scalar(OP_INC_IF, 1, 2, 4, 7, &mut val, &mut mem),
            (0b1010 + 7) & 0xf
        );
        assert_eq!(
            exec_scalar(OP_INC_IF, 0, 2, 4, 7, &mut val, &mut mem),
            0b1010
        );
    }
}
