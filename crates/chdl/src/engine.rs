//! The compiled execution engine.
//!
//! At [`Sim`](crate::sim::Sim) construction the topologically-sorted netlist
//! is lowered into a flat **struct-of-arrays micro-op stream**: one `u8`
//! opcode per combinational node plus pre-resolved operand value-indices and
//! precomputed width masks. The hot loop is a tight index-driven sweep over
//! parallel arrays — no `String` names, no enum matching on `Node`, no
//! pointer chasing into the netlist.
//!
//! On top of the dense sweep the engine maintains **input-cone level sets**
//! for incremental re-evaluation: every op knows its logic depth, and each
//! node knows which ops consume it (a CSR adjacency). `set()` marks only the
//! affected cone dirty, and `eval()` drains per-level dirty queues in depth
//! order, pruning propagation wherever a recomputed value is unchanged. The
//! common case in the TRT/DAQ pipelines — one port toggling per cycle —
//! touches a handful of ops instead of the whole graph.
//!
//! The same machinery makes clock edges incremental: committing a register
//! or a memory write marks only the consuming cone dirty, so a design where
//! a fraction of the state toggles per cycle (the TRT histogrammer: one
//! counter word out of a 64-lane bank) re-executes a handful of ops per
//! edge. [`CompiledEngine::run_batch`] is the fused fast path used by
//! `Sim::run`/`Sim::run_batch`: eval → sample → write → commit per cycle,
//! entirely inside the engine, with **zero per-edge heap allocation** — a
//! persistent scratch buffer holds sampled state and the dirty queues reach
//! a steady-state capacity that is reused across edges.
//!
//! The tree-walking interpreter in `sim.rs` is retained as the reference
//! oracle; `tests/engine_equiv.rs` co-simulates both on random netlists.

use crate::netlist::{node_width, BinOp, Node, UnOp, WritePortDecl};
use crate::signal::mask;

/// Operand slot meaning "absent" (e.g. a register without an enable).
const NONE: u32 = u32::MAX;

// Opcodes of the micro-op stream. One byte each; the dispatch in
// `exec_op` compiles to a dense jump table.
const OP_NOT: u8 = 0;
const OP_RED_AND: u8 = 1;
const OP_RED_OR: u8 = 2;
const OP_RED_XOR: u8 = 3;
const OP_AND: u8 = 4;
const OP_OR: u8 = 5;
const OP_XOR: u8 = 6;
const OP_ADD: u8 = 7;
const OP_SUB: u8 = 8;
const OP_MUL: u8 = 9;
const OP_EQ: u8 = 10;
const OP_NE: u8 = 11;
const OP_LT: u8 = 12;
const OP_LE: u8 = 13;
const OP_SHL: u8 = 14;
const OP_SHR: u8 = 15;
const OP_MUX: u8 = 16;
const OP_SLICE: u8 = 17;
const OP_CONCAT: u8 = 18;
const OP_READ_ASYNC: u8 = 19;

/// The lowered form of one design: micro-op stream, level sets, consumer
/// adjacency and the state-commit plan. Operates on the `vals`/`mems`
/// storage owned by `Sim`.
#[derive(Debug, Clone)]
pub(crate) struct CompiledEngine {
    // ---- micro-op stream (struct of arrays, sorted by level) ----
    op_code: Vec<u8>,
    op_dst: Vec<u32>,
    op_a: Vec<u32>,
    op_b: Vec<u32>,
    /// Third operand / small auxiliary: mux else-branch, slice shift,
    /// concat lo-width, shift operand width, read-port memory index.
    op_c: Vec<u32>,
    /// Precomputed mask (or, for `RED_AND`, the operand's all-ones value).
    op_imm: Vec<u64>,
    op_level: Vec<u32>,

    // ---- incremental re-evaluation ----
    /// Per-op "queued" flag (deduplicates queue pushes).
    op_dirty: Vec<bool>,
    /// Dirty op indices, one queue per logic level.
    level_queues: Vec<Vec<u32>>,
    /// Everything needs recomputing (initial state / after batch).
    full_dirty: bool,
    /// At least one queue is non-empty.
    any_dirty: bool,
    /// CSR: ops consuming each node's value (`cons_start[n]..cons_start[n+1]`).
    cons_start: Vec<u32>,
    cons: Vec<u32>,
    /// Async read-port ops per memory (recompute targets after pokes/writes).
    mem_cons: Vec<Vec<u32>>,

    // ---- state-commit plan ----
    reg_dst: Vec<u32>,
    reg_d: Vec<u32>,
    reg_en: Vec<u32>,
    reg_clr: Vec<u32>,
    reg_init: Vec<u64>,
    sr_dst: Vec<u32>,
    sr_addr: Vec<u32>,
    sr_mem: Vec<u32>,
    wp_mem: Vec<u32>,
    wp_addr: Vec<u32>,
    wp_data: Vec<u32>,
    wp_we: Vec<u32>,
    /// Persistent sample buffer: one slot per register + sync read port.
    scratch: Vec<u64>,
}

impl CompiledEngine {
    /// Lower a validated, topologically-sorted netlist. `order` is the
    /// combinational evaluation order produced by the simulator's Kahn
    /// sort; `state_nodes` are registers and synchronous read ports.
    pub(crate) fn compile(
        nodes: &[Node],
        order: &[u32],
        state_nodes: &[u32],
        write_ports: &[WritePortDecl],
        mem_count: usize,
    ) -> CompiledEngine {
        let n = nodes.len();

        // Logic depth per node: sources (inputs, consts, state) are level 0;
        // a combinational node is one deeper than its deepest operand.
        let mut node_level = vec![0u32; n];
        for &idx in order {
            let mut lvl = 0;
            for_each_operand(&nodes[idx as usize], |dep| {
                lvl = lvl.max(node_level[dep as usize]);
            });
            node_level[idx as usize] = lvl + 1;
        }

        // Emit ops in level order (stable within a level ⇒ still topological).
        let mut emit_order: Vec<u32> = order.to_vec();
        emit_order.sort_by_key(|&idx| node_level[idx as usize]);

        let mut eng = CompiledEngine {
            op_code: Vec::with_capacity(emit_order.len()),
            op_dst: Vec::with_capacity(emit_order.len()),
            op_a: Vec::with_capacity(emit_order.len()),
            op_b: Vec::with_capacity(emit_order.len()),
            op_c: Vec::with_capacity(emit_order.len()),
            op_imm: Vec::with_capacity(emit_order.len()),
            op_level: Vec::with_capacity(emit_order.len()),
            op_dirty: Vec::new(),
            level_queues: Vec::new(),
            full_dirty: true,
            any_dirty: false,
            cons_start: Vec::new(),
            cons: Vec::new(),
            mem_cons: vec![Vec::new(); mem_count],
            reg_dst: Vec::new(),
            reg_d: Vec::new(),
            reg_en: Vec::new(),
            reg_clr: Vec::new(),
            reg_init: Vec::new(),
            sr_dst: Vec::new(),
            sr_addr: Vec::new(),
            sr_mem: Vec::new(),
            wp_mem: Vec::new(),
            wp_addr: Vec::new(),
            wp_data: Vec::new(),
            wp_we: Vec::new(),
            scratch: Vec::new(),
        };

        for &idx in &emit_order {
            // Inputs and constants are value sources, not ops — only track
            // a level for nodes that actually lowered to an op.
            if eng.lower_node(nodes, idx) {
                eng.op_level.push(node_level[idx as usize] - 1);
            }
        }

        let level_count = eng
            .op_level
            .iter()
            .map(|&l| l as usize + 1)
            .max()
            .unwrap_or(0);
        eng.level_queues = vec![Vec::new(); level_count];
        eng.op_dirty = vec![false; eng.op_code.len()];

        // Consumer CSR: node → ops reading it (counting sort by operand).
        let mut counts = vec![0u32; n + 1];
        for i in 0..eng.op_code.len() {
            Self::op_operands(&eng, i, |dep| counts[dep as usize + 1] += 1);
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        eng.cons_start = counts;
        eng.cons = vec![0; *eng.cons_start.last().unwrap() as usize];
        let mut cursor = eng.cons_start.clone();
        for i in 0..eng.op_code.len() {
            let mut deps: [u32; 3] = [NONE; 3];
            let mut nd = 0;
            Self::op_operands(&eng, i, |dep| {
                deps[nd] = dep;
                nd += 1;
            });
            for &dep in deps.iter().take(nd) {
                let slot = cursor[dep as usize];
                eng.cons[slot as usize] = i as u32;
                cursor[dep as usize] += 1;
            }
        }

        // Async read-port ops grouped per memory.
        for i in 0..eng.op_code.len() {
            if eng.op_code[i] == OP_READ_ASYNC {
                eng.mem_cons[eng.op_c[i] as usize].push(i as u32);
            }
        }

        // State-commit plan.
        for &idx in state_nodes {
            match &nodes[idx as usize] {
                Node::Reg {
                    d, en, clr, init, ..
                } => {
                    eng.reg_dst.push(idx);
                    eng.reg_d.push(*d);
                    eng.reg_en.push(en.unwrap_or(NONE));
                    eng.reg_clr.push(clr.unwrap_or(NONE));
                    eng.reg_init.push(*init);
                }
                Node::ReadPort {
                    mem,
                    addr,
                    sync: true,
                    ..
                } => {
                    eng.sr_dst.push(idx);
                    eng.sr_addr.push(*addr);
                    eng.sr_mem.push(*mem);
                }
                _ => unreachable!("non-state node in state_nodes"),
            }
        }
        for wp in write_ports {
            eng.wp_mem.push(wp.mem);
            eng.wp_addr.push(wp.addr);
            eng.wp_data.push(wp.data);
            eng.wp_we.push(wp.we);
        }
        eng.scratch = vec![0; eng.reg_dst.len() + eng.sr_dst.len()];
        eng
    }

    /// Lower one combinational node into the op stream. Returns `false`
    /// for value sources (inputs, constants) that emit no op.
    fn lower_node(&mut self, nodes: &[Node], idx: u32) -> bool {
        let (code, a, b, c, imm) = match &nodes[idx as usize] {
            Node::Unop { op, a, width } => {
                let aw = node_width(&nodes[*a as usize]);
                match op {
                    UnOp::Not => (OP_NOT, *a, NONE, NONE, mask(*width)),
                    // RED_AND compares against the operand's all-ones value.
                    UnOp::ReduceAnd => (OP_RED_AND, *a, NONE, NONE, mask(aw)),
                    UnOp::ReduceOr => (OP_RED_OR, *a, NONE, NONE, 0),
                    UnOp::ReduceXor => (OP_RED_XOR, *a, NONE, NONE, 0),
                }
            }
            Node::Binop { op, a, b, width } => {
                let m = mask(*width);
                let aw = node_width(&nodes[*a as usize]) as u32;
                match op {
                    BinOp::And => (OP_AND, *a, *b, NONE, 0),
                    BinOp::Or => (OP_OR, *a, *b, NONE, 0),
                    BinOp::Xor => (OP_XOR, *a, *b, NONE, 0),
                    BinOp::Add => (OP_ADD, *a, *b, NONE, m),
                    BinOp::Sub => (OP_SUB, *a, *b, NONE, m),
                    BinOp::Mul => (OP_MUL, *a, *b, NONE, m),
                    BinOp::Eq => (OP_EQ, *a, *b, NONE, 0),
                    BinOp::Ne => (OP_NE, *a, *b, NONE, 0),
                    BinOp::Lt => (OP_LT, *a, *b, NONE, 0),
                    BinOp::Le => (OP_LE, *a, *b, NONE, 0),
                    // Shifts also carry the operand width for the ≥width check.
                    BinOp::Shl => (OP_SHL, *a, *b, aw, m),
                    BinOp::Shr => (OP_SHR, *a, *b, aw, 0),
                }
            }
            Node::Mux { sel, t, f, .. } => (OP_MUX, *sel, *t, *f, 0),
            Node::Slice { a, lo, width } => (OP_SLICE, *a, NONE, *lo as u32, mask(*width)),
            Node::Concat { hi, lo, .. } => {
                let lo_w = node_width(&nodes[*lo as usize]) as u32;
                (OP_CONCAT, *hi, *lo, lo_w, 0)
            }
            Node::ReadPort {
                mem,
                addr,
                sync: false,
                ..
            } => (OP_READ_ASYNC, *addr, NONE, *mem, 0),
            // Inputs and constants are value sources, not ops: their slots in
            // `vals` are written by `set()` / seeded once at construction.
            Node::Input { .. } | Node::Const { .. } => return false,
            Node::Reg { .. } | Node::ReadPort { sync: true, .. } => {
                unreachable!("state node in combinational order")
            }
        };
        self.op_code.push(code);
        self.op_dst.push(idx);
        self.op_a.push(a);
        self.op_b.push(b);
        self.op_c.push(c);
        self.op_imm.push(imm);
        true
    }

    /// Visit the value-operand node indices of op `i`.
    #[inline]
    fn op_operands(eng: &CompiledEngine, i: usize, mut f: impl FnMut(u32)) {
        f(eng.op_a[i]);
        match eng.op_code[i] {
            OP_AND | OP_OR | OP_XOR | OP_ADD | OP_SUB | OP_MUL | OP_EQ | OP_NE | OP_LT | OP_LE
            | OP_SHL | OP_SHR | OP_CONCAT => f(eng.op_b[i]),
            OP_MUX => {
                f(eng.op_b[i]);
                f(eng.op_c[i]);
            }
            _ => {}
        }
    }

    /// Execute op `i` against the value array. The single hot dispatch.
    #[inline(always)]
    fn exec_op(&self, i: usize, vals: &[u64], mems: &[Vec<u64>]) -> u64 {
        let a = self.op_a[i] as usize;
        let imm = self.op_imm[i];
        match self.op_code[i] {
            OP_NOT => !vals[a] & imm,
            OP_RED_AND => u64::from(vals[a] == imm),
            OP_RED_OR => u64::from(vals[a] != 0),
            OP_RED_XOR => u64::from(vals[a].count_ones() & 1 == 1),
            OP_AND => vals[a] & vals[self.op_b[i] as usize],
            OP_OR => vals[a] | vals[self.op_b[i] as usize],
            OP_XOR => vals[a] ^ vals[self.op_b[i] as usize],
            OP_ADD => vals[a].wrapping_add(vals[self.op_b[i] as usize]) & imm,
            OP_SUB => vals[a].wrapping_sub(vals[self.op_b[i] as usize]) & imm,
            OP_MUL => vals[a].wrapping_mul(vals[self.op_b[i] as usize]) & imm,
            OP_EQ => u64::from(vals[a] == vals[self.op_b[i] as usize]),
            OP_NE => u64::from(vals[a] != vals[self.op_b[i] as usize]),
            OP_LT => u64::from(vals[a] < vals[self.op_b[i] as usize]),
            OP_LE => u64::from(vals[a] <= vals[self.op_b[i] as usize]),
            OP_SHL => {
                let sh = vals[self.op_b[i] as usize];
                if sh >= self.op_c[i] as u64 {
                    0
                } else {
                    (vals[a] << sh) & imm
                }
            }
            OP_SHR => {
                let sh = vals[self.op_b[i] as usize];
                if sh >= self.op_c[i] as u64 {
                    0
                } else {
                    vals[a] >> sh
                }
            }
            OP_MUX => {
                if vals[a] != 0 {
                    vals[self.op_b[i] as usize]
                } else {
                    vals[self.op_c[i] as usize]
                }
            }
            OP_SLICE => (vals[a] >> self.op_c[i]) & imm,
            OP_CONCAT => (vals[a] << self.op_c[i]) | vals[self.op_b[i] as usize],
            OP_READ_ASYNC => mems[self.op_c[i] as usize]
                .get(vals[a] as usize)
                .copied()
                .unwrap_or(0),
            _ => unreachable!("invalid opcode"),
        }
    }

    /// Mark every op consuming `node` dirty (queued at its level).
    pub(crate) fn mark_node_dirty(&mut self, node: u32) {
        if self.full_dirty {
            return; // everything recomputes anyway
        }
        let lo = self.cons_start[node as usize] as usize;
        let hi = self.cons_start[node as usize + 1] as usize;
        for j in lo..hi {
            let op = self.cons[j] as usize;
            if !self.op_dirty[op] {
                self.op_dirty[op] = true;
                self.level_queues[self.op_level[op] as usize].push(op as u32);
                self.any_dirty = true;
            }
        }
    }

    /// Mark every async read port of memory `mem` dirty (after a poke or a
    /// committed write).
    pub(crate) fn mark_mem_dirty(&mut self, mem: u32) {
        if self.full_dirty {
            return;
        }
        // Iterate by index: `mem_cons` and the queue state are disjoint
        // fields, but the borrow checker can't see that through a shared
        // slice borrow.
        for k in 0..self.mem_cons[mem as usize].len() {
            let op = self.mem_cons[mem as usize][k] as usize;
            if !self.op_dirty[op] {
                self.op_dirty[op] = true;
                self.level_queues[self.op_level[op] as usize].push(op as u32);
                self.any_dirty = true;
            }
        }
    }

    /// Settle combinational values. Chooses the dense sweep when everything
    /// is stale, otherwise drains the per-level dirty queues, pruning
    /// propagation where values are unchanged.
    pub(crate) fn eval(&mut self, vals: &mut [u64], mems: &[Vec<u64>]) {
        if self.full_dirty {
            self.eval_dense(vals, mems);
            self.full_dirty = false;
            // Queues may hold entries from pokes made while fully dirty.
            for q in &mut self.level_queues {
                q.clear();
            }
            self.op_dirty.iter_mut().for_each(|d| *d = false);
            self.any_dirty = false;
            return;
        }
        if !self.any_dirty {
            return;
        }
        for lvl in 0..self.level_queues.len() {
            // Take the queue out so `mark_node_dirty` (which only ever
            // pushes to deeper levels) can borrow `self` freely.
            let mut queue = std::mem::take(&mut self.level_queues[lvl]);
            for &op32 in &queue {
                let op = op32 as usize;
                self.op_dirty[op] = false;
                let new = self.exec_op(op, vals, mems);
                let dst = self.op_dst[op];
                if vals[dst as usize] != new {
                    vals[dst as usize] = new;
                    self.mark_node_dirty(dst);
                }
            }
            queue.clear();
            self.level_queues[lvl] = queue; // keep the allocation
        }
        self.any_dirty = false;
    }

    /// Dense sweep: execute every op in level/topological order.
    #[inline]
    fn eval_dense(&self, vals: &mut [u64], mems: &[Vec<u64>]) {
        for i in 0..self.op_code.len() {
            vals[self.op_dst[i] as usize] = self.exec_op(i, vals, mems);
        }
    }

    /// Sample next-state into the persistent scratch buffer (phase 1:
    /// everything still shows pre-edge values).
    #[inline]
    fn sample_state(&mut self, vals: &[u64], mems: &[Vec<u64>]) {
        let nregs = self.reg_dst.len();
        for r in 0..nregs {
            let cur = vals[self.reg_dst[r] as usize];
            let clr = self.reg_clr[r];
            let en = self.reg_en[r];
            self.scratch[r] = if clr != NONE && vals[clr as usize] != 0 {
                self.reg_init[r]
            } else if en != NONE && vals[en as usize] == 0 {
                cur
            } else {
                vals[self.reg_d[r] as usize]
            };
        }
        for s in 0..self.sr_dst.len() {
            let addr = vals[self.sr_addr[s] as usize] as usize;
            self.scratch[nregs + s] = mems[self.sr_mem[s] as usize]
                .get(addr)
                .copied()
                .unwrap_or(0);
        }
    }

    /// Apply write ports (phase 2). A write that actually changes a word
    /// invalidates that memory's async read ports so the next eval
    /// re-executes them.
    #[inline]
    fn apply_writes(&mut self, vals: &[u64], mems: &mut [Vec<u64>]) {
        for w in 0..self.wp_mem.len() {
            if vals[self.wp_we[w] as usize] != 0 {
                let addr = vals[self.wp_addr[w] as usize] as usize;
                let mem = &mut mems[self.wp_mem[w] as usize];
                if addr < mem.len() {
                    let data = vals[self.wp_data[w] as usize];
                    if mem[addr] != data {
                        mem[addr] = data;
                        self.mark_mem_dirty(self.wp_mem[w]);
                    }
                }
            }
        }
    }

    /// One clock edge with incremental bookkeeping: eval, sample, write,
    /// commit-with-change-detection so the next `eval` touches only the
    /// cones of state that actually toggled.
    pub(crate) fn step(&mut self, vals: &mut [u64], mems: &mut [Vec<u64>]) {
        self.eval(vals, mems);
        self.sample_state(vals, mems);
        self.apply_writes(vals, mems);
        let nstate = self.scratch.len();
        for k in 0..nstate {
            let dst = if k < self.reg_dst.len() {
                self.reg_dst[k]
            } else {
                self.sr_dst[k - self.reg_dst.len()]
            };
            let new = self.scratch[k];
            if vals[dst as usize] != new {
                vals[dst as usize] = new;
                self.mark_node_dirty(dst);
            }
        }
    }

    /// `n` fused eval+commit cycles, all inside the engine: the per-cycle
    /// loop is eval → sample → write → commit with change detection, so
    /// after the first settle only the cones of state that actually toggle
    /// are re-executed each cycle. The dirty queues reach a steady-state
    /// capacity during the first few edges and are reused thereafter —
    /// zero per-edge heap allocation.
    pub(crate) fn run_batch(&mut self, n: u64, vals: &mut [u64], mems: &mut [Vec<u64>]) {
        for _ in 0..n {
            self.step(vals, mems);
        }
    }

    /// Number of micro-ops in the stream (diagnostics).
    pub(crate) fn op_count(&self) -> usize {
        self.op_code.len()
    }

    /// Number of logic levels (diagnostics).
    pub(crate) fn level_count(&self) -> usize {
        self.level_queues.len()
    }

    // ---- lane-batched execution -----------------------------------------
    //
    // The multi-lane mode steps L independent instances of the design
    // through the *same* micro-op stream: per-node value storage becomes a
    // node-major struct-of-arrays (`vals[node * L + lane]`) so the inner
    // lane loop of every op touches contiguous words, and memories become
    // per-lane banks inside one flat allocation. Dirty tracking is shared
    // across lanes — an op re-executes when *any* lane's inputs changed —
    // so one queue drain serves all instances and the per-op dispatch,
    // bookkeeping and consumer-marking cost is amortized L ways. The
    // chunked `lane_map*` helpers below stage operands through fixed-size
    // stack arrays, which gives LLVM alias-free loops it auto-vectorizes
    // to SIMD.

    /// Execute op `i` across every lane. Returns whether any lane's
    /// destination value changed.
    #[inline(always)]
    fn exec_op_lanes(&self, i: usize, st: &mut LaneState) -> bool {
        let LaneState {
            lanes, vals, mems, ..
        } = st;
        let lanes = *lanes;
        let d0 = self.op_dst[i] as usize * lanes;
        let a0 = self.op_a[i] as usize * lanes;
        let b0 = self.op_b[i] as usize; // NONE for one-operand ops
        let imm = self.op_imm[i];
        match self.op_code[i] {
            OP_NOT => lane_map1(vals, d0, a0, lanes, |a| !a & imm),
            OP_RED_AND => lane_map1(vals, d0, a0, lanes, |a| u64::from(a == imm)),
            OP_RED_OR => lane_map1(vals, d0, a0, lanes, |a| u64::from(a != 0)),
            OP_RED_XOR => lane_map1(vals, d0, a0, lanes, |a| u64::from(a.count_ones() & 1 == 1)),
            OP_AND => lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, b| a & b),
            OP_OR => lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, b| a | b),
            OP_XOR => lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, b| a ^ b),
            OP_ADD => lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, b| {
                a.wrapping_add(b) & imm
            }),
            OP_SUB => lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, b| {
                a.wrapping_sub(b) & imm
            }),
            OP_MUL => lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, b| {
                a.wrapping_mul(b) & imm
            }),
            OP_EQ => lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, b| u64::from(a == b)),
            OP_NE => lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, b| u64::from(a != b)),
            OP_LT => lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, b| u64::from(a < b)),
            OP_LE => lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, b| u64::from(a <= b)),
            OP_SHL => {
                let w = self.op_c[i] as u64;
                lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, s| {
                    if s >= w {
                        0
                    } else {
                        (a << s) & imm
                    }
                })
            }
            OP_SHR => {
                let w = self.op_c[i] as u64;
                lane_map2(vals, d0, a0, b0 * lanes, lanes, |a, s| {
                    if s >= w {
                        0
                    } else {
                        a >> s
                    }
                })
            }
            OP_MUX => lane_map3(
                vals,
                d0,
                a0,
                b0 * lanes,
                self.op_c[i] as usize * lanes,
                lanes,
                |s, t, f| if s != 0 { t } else { f },
            ),
            OP_SLICE => {
                let sh = self.op_c[i];
                lane_map1(vals, d0, a0, lanes, |a| (a >> sh) & imm)
            }
            OP_CONCAT => {
                let sh = self.op_c[i];
                lane_map2(vals, d0, a0, b0 * lanes, lanes, |hi, lo| (hi << sh) | lo)
            }
            OP_READ_ASYNC => {
                // Per-lane addresses diverge — a gather, looped scalar.
                let m = self.op_c[i] as usize;
                let words = st.mem_words[m];
                let bank = &mems[m];
                let mut diff = 0u64;
                for l in 0..lanes {
                    let addr = vals[a0 + l] as usize;
                    let v = if addr < words {
                        bank[l * words + addr]
                    } else {
                        0
                    };
                    diff |= v ^ vals[d0 + l];
                    vals[d0 + l] = v;
                }
                diff != 0
            }
            _ => unreachable!("invalid opcode"),
        }
    }

    /// Laned [`CompiledEngine::eval`]: settle combinational values for
    /// every lane, draining the shared dirty queues once for all lanes.
    pub(crate) fn eval_lanes(&mut self, st: &mut LaneState) {
        if self.full_dirty {
            for i in 0..self.op_code.len() {
                self.exec_op_lanes(i, st);
            }
            self.full_dirty = false;
            for q in &mut self.level_queues {
                q.clear();
            }
            self.op_dirty.iter_mut().for_each(|d| *d = false);
            self.any_dirty = false;
            return;
        }
        if !self.any_dirty {
            return;
        }
        for lvl in 0..self.level_queues.len() {
            let mut queue = std::mem::take(&mut self.level_queues[lvl]);
            for &op32 in &queue {
                let op = op32 as usize;
                self.op_dirty[op] = false;
                if self.exec_op_lanes(op, st) {
                    self.mark_node_dirty(self.op_dst[op]);
                }
            }
            queue.clear();
            self.level_queues[lvl] = queue; // keep the allocation
        }
        self.any_dirty = false;
    }

    /// Laned next-state sampling into the group's persistent scratch
    /// arena (phase 1: every lane still shows pre-edge values).
    ///
    /// The register loop runs every cycle over every register whether or
    /// not anything changed, so it is the steady-state floor of a laned
    /// step: the clear/enable cases are specialised per register
    /// *outside* the lane loop and the lane loop itself is branch-free
    /// (mask selects), which LLVM vectorizes.
    fn sample_state_lanes(&self, st: &mut LaneState) {
        let lanes = st.lanes;
        let nregs = self.reg_dst.len();
        let LaneState {
            vals,
            mems,
            mem_words,
            scratch,
            ..
        } = st;
        for r in 0..nregs {
            let q0 = self.reg_dst[r] as usize * lanes;
            let d0 = self.reg_d[r] as usize * lanes;
            let clr = self.reg_clr[r];
            let en = self.reg_en[r];
            let init = self.reg_init[r];
            let out = &mut scratch[r * lanes..(r + 1) * lanes];
            let d = &vals[d0..d0 + lanes];
            match (clr != NONE, en != NONE) {
                (false, false) => out.copy_from_slice(d),
                (false, true) => {
                    let q = &vals[q0..q0 + lanes];
                    let e = &vals[en as usize * lanes..en as usize * lanes + lanes];
                    for l in 0..lanes {
                        let hold = 0u64.wrapping_sub(u64::from(e[l] == 0));
                        out[l] = (hold & q[l]) | (!hold & d[l]);
                    }
                }
                (true, false) => {
                    let c = &vals[clr as usize * lanes..clr as usize * lanes + lanes];
                    for l in 0..lanes {
                        let rst = 0u64.wrapping_sub(u64::from(c[l] != 0));
                        out[l] = (rst & init) | (!rst & d[l]);
                    }
                }
                (true, true) => {
                    let q = &vals[q0..q0 + lanes];
                    let c = &vals[clr as usize * lanes..clr as usize * lanes + lanes];
                    let e = &vals[en as usize * lanes..en as usize * lanes + lanes];
                    for l in 0..lanes {
                        let hold = 0u64.wrapping_sub(u64::from(e[l] == 0));
                        let held = (hold & q[l]) | (!hold & d[l]);
                        let rst = 0u64.wrapping_sub(u64::from(c[l] != 0));
                        out[l] = (rst & init) | (!rst & held);
                    }
                }
            }
        }
        for s in 0..self.sr_dst.len() {
            let a0 = self.sr_addr[s] as usize * lanes;
            let m = self.sr_mem[s] as usize;
            let words = mem_words[m];
            let addrs = &vals[a0..a0 + lanes];
            let out = &mut scratch[(nregs + s) * lanes..(nregs + s + 1) * lanes];
            let bank = &mems[m];
            for l in 0..lanes {
                let addr = addrs[l] as usize;
                out[l] = if addr < words {
                    bank[l * words + addr]
                } else {
                    0
                };
            }
        }
    }

    /// Laned write-port application (phase 2) with per-memory change
    /// detection shared across lanes.
    fn apply_writes_lanes(&mut self, st: &mut LaneState) {
        for w in 0..self.wp_mem.len() {
            let m = self.wp_mem[w] as usize;
            let words = st.mem_words[m];
            let we0 = self.wp_we[w] as usize * st.lanes;
            let a0 = self.wp_addr[w] as usize * st.lanes;
            let d0 = self.wp_data[w] as usize * st.lanes;
            // Fast path: a port whose enable is low in every lane (the
            // common idle state) costs one vectorizable OR reduction.
            if st.vals[we0..we0 + st.lanes].iter().all(|&we| we == 0) {
                continue;
            }
            let mut touched = false;
            for l in 0..st.lanes {
                if st.vals[we0 + l] != 0 {
                    let addr = st.vals[a0 + l] as usize;
                    if addr < words {
                        let data = st.vals[d0 + l];
                        let slot = &mut st.mems[m][l * words + addr];
                        if *slot != data {
                            *slot = data;
                            touched = true;
                        }
                    }
                }
            }
            if touched {
                self.mark_mem_dirty(self.wp_mem[w]);
            }
        }
    }

    /// One clock edge applied to every lane: eval, sample, write, commit
    /// with change detection, mirroring [`CompiledEngine::step`] exactly
    /// but amortizing the bookkeeping across all lanes.
    pub(crate) fn step_lanes(&mut self, st: &mut LaneState) {
        self.eval_lanes(st);
        self.sample_state_lanes(st);
        self.apply_writes_lanes(st);
        let lanes = st.lanes;
        let nregs = self.reg_dst.len();
        let nstate = nregs + self.sr_dst.len();
        for k in 0..nstate {
            let dst = if k < nregs {
                self.reg_dst[k]
            } else {
                self.sr_dst[k - nregs]
            };
            let d0 = dst as usize * lanes;
            let src = &st.scratch[k * lanes..(k + 1) * lanes];
            let cur = &mut st.vals[d0..d0 + lanes];
            let mut diff = 0u64;
            for l in 0..lanes {
                diff |= src[l] ^ cur[l];
            }
            if diff != 0 {
                cur.copy_from_slice(src);
                self.mark_node_dirty(dst);
            }
        }
    }

    /// `n` fused laned cycles — the multi-instance counterpart of
    /// [`CompiledEngine::run_batch`], with zero per-edge heap allocation
    /// (the lane arena and the dirty queues are reused across edges).
    pub(crate) fn run_batch_lanes(&mut self, n: u64, st: &mut LaneState) {
        for _ in 0..n {
            self.step_lanes(st);
        }
    }
}

/// Lanes per chunk of the laned inner loops. Operand values are staged
/// through `[u64; LANE_CHUNK]` stack arrays so the compute loop is free
/// of aliasing and bounds checks — the shape LLVM auto-vectorizes.
pub(crate) const LANE_CHUNK: usize = 8;

/// Structure-of-arrays state for a group of independent lanes, owned by
/// [`LaneGroup`](crate::lanes::LaneGroup) and operated on by the laned
/// `CompiledEngine` paths. All buffers are allocated once at fork time
/// and reused for the group's lifetime — an allocation-free lane arena.
#[derive(Debug, Clone)]
pub(crate) struct LaneState {
    /// Number of instances stepped together.
    pub lanes: usize,
    /// `vals[node * lanes + lane]` — node-major, so each op's inner lane
    /// loop sweeps contiguous words.
    pub vals: Vec<u64>,
    /// Per memory, one flat per-lane bank: `mems[m][lane * words + addr]`.
    pub mems: Vec<Vec<u64>>,
    /// Word count of each memory (one lane's bank).
    pub mem_words: Vec<usize>,
    /// Persistent next-state sample arena: (registers + sync read ports)
    /// × lanes.
    pub scratch: Vec<u64>,
}

/// Apply `f` lane-wise to one operand row, writing the destination row.
/// Returns whether any lane's destination changed.
#[inline(always)]
fn lane_map1(vals: &mut [u64], d0: usize, a0: usize, lanes: usize, f: impl Fn(u64) -> u64) -> bool {
    let mut diff = 0u64;
    let mut l = 0;
    while l + LANE_CHUNK <= lanes {
        let mut av = [0u64; LANE_CHUNK];
        av.copy_from_slice(&vals[a0 + l..a0 + l + LANE_CHUNK]);
        let mut out = [0u64; LANE_CHUNK];
        for (o, &a) in out.iter_mut().zip(&av) {
            *o = f(a);
        }
        for (&o, &d) in out.iter().zip(&vals[d0 + l..d0 + l + LANE_CHUNK]) {
            diff |= o ^ d;
        }
        vals[d0 + l..d0 + l + LANE_CHUNK].copy_from_slice(&out);
        l += LANE_CHUNK;
    }
    while l < lanes {
        let new = f(vals[a0 + l]);
        diff |= new ^ vals[d0 + l];
        vals[d0 + l] = new;
        l += 1;
    }
    diff != 0
}

/// Two-operand lane-wise map. See [`lane_map1`].
#[inline(always)]
fn lane_map2(
    vals: &mut [u64],
    d0: usize,
    a0: usize,
    b0: usize,
    lanes: usize,
    f: impl Fn(u64, u64) -> u64,
) -> bool {
    let mut diff = 0u64;
    let mut l = 0;
    while l + LANE_CHUNK <= lanes {
        let mut av = [0u64; LANE_CHUNK];
        let mut bv = [0u64; LANE_CHUNK];
        av.copy_from_slice(&vals[a0 + l..a0 + l + LANE_CHUNK]);
        bv.copy_from_slice(&vals[b0 + l..b0 + l + LANE_CHUNK]);
        let mut out = [0u64; LANE_CHUNK];
        for ((o, &a), &b) in out.iter_mut().zip(&av).zip(&bv) {
            *o = f(a, b);
        }
        for (&o, &d) in out.iter().zip(&vals[d0 + l..d0 + l + LANE_CHUNK]) {
            diff |= o ^ d;
        }
        vals[d0 + l..d0 + l + LANE_CHUNK].copy_from_slice(&out);
        l += LANE_CHUNK;
    }
    while l < lanes {
        let new = f(vals[a0 + l], vals[b0 + l]);
        diff |= new ^ vals[d0 + l];
        vals[d0 + l] = new;
        l += 1;
    }
    diff != 0
}

/// Three-operand lane-wise map (the mux). See [`lane_map1`].
#[inline(always)]
fn lane_map3(
    vals: &mut [u64],
    d0: usize,
    a0: usize,
    b0: usize,
    c0: usize,
    lanes: usize,
    f: impl Fn(u64, u64, u64) -> u64,
) -> bool {
    let mut diff = 0u64;
    let mut l = 0;
    while l + LANE_CHUNK <= lanes {
        let mut av = [0u64; LANE_CHUNK];
        let mut bv = [0u64; LANE_CHUNK];
        let mut cv = [0u64; LANE_CHUNK];
        av.copy_from_slice(&vals[a0 + l..a0 + l + LANE_CHUNK]);
        bv.copy_from_slice(&vals[b0 + l..b0 + l + LANE_CHUNK]);
        cv.copy_from_slice(&vals[c0 + l..c0 + l + LANE_CHUNK]);
        let mut out = [0u64; LANE_CHUNK];
        for (((o, &a), &b), &c) in out.iter_mut().zip(&av).zip(&bv).zip(&cv) {
            *o = f(a, b, c);
        }
        for (&o, &d) in out.iter().zip(&vals[d0 + l..d0 + l + LANE_CHUNK]) {
            diff |= o ^ d;
        }
        vals[d0 + l..d0 + l + LANE_CHUNK].copy_from_slice(&out);
        l += LANE_CHUNK;
    }
    while l < lanes {
        let new = f(vals[a0 + l], vals[b0 + l], vals[c0 + l]);
        diff |= new ^ vals[d0 + l];
        vals[d0 + l] = new;
        l += 1;
    }
    diff != 0
}

/// Visit each combinational operand of `node` (mirrors the simulator's
/// dependency rules: state nodes and memory contents are cycle boundaries).
pub(crate) fn for_each_operand(node: &Node, mut f: impl FnMut(u32)) {
    match node {
        Node::Input { .. } | Node::Const { .. } => {}
        Node::Unop { a, .. } | Node::Slice { a, .. } => f(*a),
        Node::Binop { a, b, .. } => {
            f(*a);
            f(*b);
        }
        Node::Mux { sel, t, f: fe, .. } => {
            f(*sel);
            f(*t);
            f(*fe);
        }
        Node::Concat { hi, lo, .. } => {
            f(*hi);
            f(*lo);
        }
        Node::ReadPort {
            addr, sync: false, ..
        } => f(*addr),
        Node::Reg { .. } | Node::ReadPort { sync: true, .. } => {}
    }
}
