//! VCD (Value Change Dump) export for recorded traces.
//!
//! CHDL designs are debugged from the host application; dumping the
//! recorded signals as a standard VCD file lets any waveform viewer
//! (GTKWave et al.) display them — the modern equivalent of the
//! scope-on-the-bench workflow the ATLANTIS lab used.

use crate::trace::Tracer;
use std::fmt::Write as _;

/// Widths must accompany the trace for a well-formed VCD.
#[derive(Debug, Clone)]
pub struct VcdSignal {
    /// Signal name as recorded by the tracer.
    pub name: String,
    /// Bit width.
    pub width: u8,
}

/// Render a tracer's history as a VCD document. `timescale_ps` is the
/// picosecond length of one recorded cycle (e.g. 25 000 for 40 MHz).
pub fn to_vcd(tracer: &Tracer, signals: &[VcdSignal], timescale_ps: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "$date ATLANTIS reproduction $end");
    let _ = writeln!(out, "$version atlantis-chdl $end");
    let _ = writeln!(out, "$timescale {timescale_ps} ps $end");
    let _ = writeln!(out, "$scope module design $end");
    let idents: Vec<char> = (0..signals.len())
        .map(|i| (b'!' + i as u8) as char)
        .collect();
    for (sig, id) in signals.iter().zip(&idents) {
        let _ = writeln!(out, "$var wire {} {} {} $end", sig.width, id, sig.name);
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");

    let histories: Vec<Vec<u64>> = signals.iter().map(|s| tracer.history(&s.name)).collect();
    let steps = histories.first().map_or(0, Vec::len);
    let mut last: Vec<Option<u64>> = vec![None; signals.len()];
    for t in 0..steps {
        let mut emitted_time = false;
        for (i, hist) in histories.iter().enumerate() {
            let v = hist[t];
            if last[i] != Some(v) {
                if !emitted_time {
                    let _ = writeln!(out, "#{t}");
                    emitted_time = true;
                }
                if signals[i].width == 1 {
                    let _ = writeln!(out, "{}{}", v & 1, idents[i]);
                } else {
                    let _ = writeln!(out, "b{v:b} {}", idents[i]);
                }
                last[i] = Some(v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Design;
    use crate::sim::Sim;

    #[test]
    fn vcd_contains_headers_and_changes() {
        let mut d = Design::new("t");
        let q = d.reg_feedback("c", 4, |d, q| d.inc(q));
        let msb = d.bit(q, 3);
        d.expose_output("count", q);
        d.expose_output("msb", msb);
        let mut sim = Sim::new(&d);
        let mut tr = Tracer::new(&["count", "msb"]);
        for _ in 0..10 {
            tr.sample(&mut sim);
            sim.step();
        }
        let vcd = to_vcd(
            &tr,
            &[
                VcdSignal {
                    name: "count".into(),
                    width: 4,
                },
                VcdSignal {
                    name: "msb".into(),
                    width: 1,
                },
            ],
            25_000,
        );
        assert!(vcd.contains("$timescale 25000 ps $end"));
        assert!(vcd.contains("$var wire 4 ! count $end"));
        assert!(vcd.contains("$var wire 1 \" msb $end"));
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("b0 !"), "initial value dumped");
        assert!(vcd.contains("b1001 !"), "counter reaches 9: {vcd}");
    }

    #[test]
    fn unchanged_signals_are_not_re_emitted() {
        let mut d = Design::new("t");
        let x = d.input("x", 1);
        d.label("probe", x);
        let mut sim = Sim::new(&d);
        let mut tr = Tracer::new(&["probe"]);
        sim.set("x", 1);
        for _ in 0..5 {
            tr.sample(&mut sim);
            sim.step();
        }
        let vcd = to_vcd(
            &tr,
            &[VcdSignal {
                name: "probe".into(),
                width: 1,
            }],
            1000,
        );
        // One timestamp (#0) for the initial value, none after.
        assert_eq!(vcd.matches('#').count(), 1, "{vcd}");
    }
}
