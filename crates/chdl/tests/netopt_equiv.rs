//! Equivalence harness for the netlist optimizer (`chdl::nir`).
//!
//! Randomized netlists — the shared `netgen` generator plus deliberately
//! redundant shapes (dead cones, duplicated subexpressions, constant
//! cones, identity chains, `dont_touch` pins) — are co-simulated with the
//! optimizer **on** against the optimizer **off** and the interpreter
//! oracle, across the engine configuration matrix (fused/unfused ×
//! match/threaded × serial/partitioned × lanes). Every configuration must
//! be bit-exact on every output every cycle, and final memory contents
//! must agree word for word.
//!
//! The standalone pipeline is additionally checked for the structural
//! guarantees simulation alone cannot see: `dont_touch` nodes survive
//! every pass, top-level I/O ports keep their names, widths and order,
//! and the pipeline is idempotent at its fixed point (a second run
//! applies zero rewrites and re-exports a byte-identical netlist).

mod netgen;

use atlantis_chdl::prelude::*;
use atlantis_chdl::sim::ExecMode;
use atlantis_chdl::{DispatchMode, EngineConfig, Nir, NirKind, ParallelEval, PassManager};
use netgen::{build_design_with_redundancy, XorShift, N_INPUTS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Optimizer-on vs optimizer-off vs interpreter, across the engine
    /// matrix plus a 2-lane group forked from the optimized sim.
    #[test]
    fn netopt_config_matrix_equivalence(
        recipes in proptest::collection::vec(
            (any::<u8>(), any::<u16>(), any::<u16>(), any::<u8>()), 8..32),
        shapes in 4usize..16,
        seed in any::<u64>(),
    ) {
        let (design, outputs) = build_design_with_redundancy(&recipes, shapes);
        let mem = design.find_memory("m").unwrap();

        let mut oracle = Sim::with_mode(&design, ExecMode::Interpreted);
        let configs = [
            EngineConfig::default(),                  // netopt on, fused
            EngineConfig { netopt: false, ..EngineConfig::default() },
            EngineConfig { netopt: true, fuse: false, ..EngineConfig::default() },
            EngineConfig {
                netopt: true,
                dispatch: DispatchMode::Threaded,
                ..EngineConfig::default()
            },
            EngineConfig {
                netopt: true,
                parallel: ParallelEval::Force(2),
                dispatch: DispatchMode::Match,
                ..EngineConfig::default()
            },
            EngineConfig::unfused(),                  // everything off
        ];
        let mut sims: Vec<Sim> = configs
            .iter()
            .map(|&c| Sim::with_config(&design, ExecMode::Compiled, c))
            .collect();

        // The optimized stream must actually be smaller: the redundancy
        // shapes guarantee fold/share/dead targets exist.
        let on = sims[0].engine_stats().unwrap().clone();
        prop_assert!(on.netopt_nodes_after < on.netopt_nodes_before, "{on:?}");
        let off = sims[1].engine_stats().unwrap().clone();
        prop_assert!(on.ops_lowered < off.ops_lowered,
            "netopt must lower fewer micro-ops: {} vs {}", on.ops_lowered, off.ops_lowered);

        // A lane group forked from the optimized sim inherits its stream.
        let lanes = 2usize;
        let mut group = sims[0].fork_lanes(lanes);

        let mut stim = XorShift(seed);
        for cycle in 0..200u32 {
            for i in 0..N_INPUTS {
                let v = stim.next();
                oracle.set(&format!("in{i}"), v);
                for sim in &mut sims {
                    sim.set(&format!("in{i}"), v);
                }
                for lane in 0..lanes {
                    group.set(lane, &format!("in{i}"), v);
                }
            }
            for name in &outputs {
                let want = oracle.get(name);
                for (k, sim) in sims.iter_mut().enumerate() {
                    prop_assert_eq!(
                        sim.get(name), want,
                        "config {} vs oracle: {} cycle {}", k, name, cycle
                    );
                }
                for lane in 0..lanes {
                    prop_assert_eq!(
                        group.get(lane, name), want,
                        "lane {} vs oracle: {} cycle {}", lane, name, cycle
                    );
                }
            }
            oracle.step();
            for sim in &mut sims {
                sim.step();
            }
            group.step();
        }

        // Batch phase: fused dense sweeps over the optimized stream.
        oracle.run(100);
        for sim in &mut sims {
            sim.run_batch(100);
        }
        group.run_batch(100);
        for name in &outputs {
            let want = oracle.get(name);
            for (k, sim) in sims.iter_mut().enumerate() {
                prop_assert_eq!(sim.get(name), want, "post-batch config {}: {}", k, name);
            }
            for lane in 0..lanes {
                prop_assert_eq!(group.get(lane, name), want, "post-batch lane {}: {}", lane, name);
            }
        }
        for sim in &sims {
            prop_assert_eq!(sim.dump_mem(mem), oracle.dump_mem(mem));
        }
        for lane in 0..lanes {
            prop_assert_eq!(group.dump_mem(lane, mem), oracle.dump_mem(mem));
        }
    }

    /// `dont_touch` nodes survive the aggressive standalone pipeline with
    /// their kind intact — never folded to constants, never eliminated —
    /// and pinned labels stay probe-able under the netopt-on engine.
    #[test]
    fn dont_touch_survives_all_passes(
        recipes in proptest::collection::vec(
            (any::<u8>(), any::<u16>(), any::<u16>(), any::<u8>()), 8..24),
        shapes in 5usize..20,
        seed in any::<u64>(),
    ) {
        let (design, _) = build_design_with_redundancy(&recipes, shapes);

        let mut nir = Nir::from_design(&design);
        let pinned: Vec<(u32, NirKind)> = (0..nir.len() as u32)
            .filter(|&i| nir.is_dont_touch(i))
            .map(|i| (i, nir.kind(i)))
            .collect();
        prop_assert!(!pinned.is_empty(), "generator must emit pinned shapes");
        PassManager::standard().run(&mut nir);
        for &(i, kind) in &pinned {
            prop_assert!(!nir.is_dead(i), "pinned node {} was eliminated", i);
            prop_assert_eq!(nir.kind(i), kind, "pinned node {} was rewritten", i);
        }
        // Pins follow the compaction into the exported design.
        let exported = nir.to_design();
        let nir2 = Nir::from_design(&exported);
        let surviving = (0..nir2.len() as u32).filter(|&i| nir2.is_dont_touch(i)).count();
        prop_assert_eq!(surviving, pinned.len());

        // The pinned probes must read identically with the optimizer on
        // and off (they are protected from both netopt and fusion).
        let pins: Vec<String> = (0..shapes)
            .filter(|k| k % 5 == 4)
            .map(|k| format!("pin{k}"))
            .collect();
        let mut on = Sim::new(&design);
        let mut off = Sim::with_config(
            &design,
            ExecMode::Compiled,
            EngineConfig { netopt: false, ..EngineConfig::default() },
        );
        let mut stim = XorShift(seed);
        for _ in 0..50 {
            for i in 0..N_INPUTS {
                let v = stim.next();
                on.set(&format!("in{i}"), v);
                off.set(&format!("in{i}"), v);
            }
            for name in &pins {
                prop_assert_eq!(on.get(name), off.get(name), "probe {}", name);
            }
            on.step();
            off.step();
        }
    }

    /// Top-level I/O is sacred: the exported design keeps every input and
    /// output port with its name, width and position. And the pipeline is
    /// idempotent: a second run over its own output applies zero rewrites
    /// and re-exports a byte-identical structure.
    #[test]
    fn io_preserved_and_fixed_point_idempotent(
        recipes in proptest::collection::vec(
            (any::<u8>(), any::<u16>(), any::<u16>(), any::<u8>()), 8..32),
        shapes in 0usize..12,
    ) {
        let (design, _) = build_design_with_redundancy(&recipes, shapes);

        let mut nir = Nir::from_design(&design);
        PassManager::standard().run(&mut nir);
        let optimized = nir.to_design();
        prop_assert_eq!(optimized.inputs(), design.inputs(), "input ports changed");
        prop_assert_eq!(optimized.output_ports(), design.output_ports(), "output ports changed");

        // Second run: already at the fixed point.
        let mut nir2 = Nir::from_design(&optimized);
        let ledger2 = PassManager::standard().run(&mut nir2);
        prop_assert_eq!(ledger2.consts_folded, 0, "{:?}", &ledger2);
        prop_assert_eq!(ledger2.subexprs_shared, 0, "{:?}", &ledger2);
        prop_assert_eq!(ledger2.dead_gates, 0, "{:?}", &ledger2);
        prop_assert_eq!(ledger2.nodes_before, ledger2.nodes_after);
        let re_exported = nir2.to_design();
        prop_assert_eq!(
            re_exported.structural_bytes(),
            optimized.structural_bytes(),
            "fixed-point re-export must be byte-identical"
        );
    }
}

/// A deliberately dead cone — gates reachable from inputs but feeding no
/// output, label, write port or pin — is eliminated in full, and the
/// exported design carries none of it.
#[test]
fn dead_cone_is_fully_eliminated() {
    let mut d = Design::new("deadwood");
    let x = d.input("x", 16);
    let y = d.input("y", 16);
    // Live logic: one adder.
    let live = d.add(x, y);
    d.expose_output("sum", live);
    // Dead cone: five chained gates, never consumed.
    let d1 = d.mul(x, y);
    let d2 = d.xor(d1, x);
    let d3 = d.sub(d2, y);
    let d4 = d.and(d3, d1);
    let _d5 = d.or(d4, d2);

    let mut nir = Nir::from_design(&d);
    let ledger = PassManager::standard().run(&mut nir);
    assert!(ledger.dead_gates >= 5, "whole cone must die: {ledger:?}");

    // Exactly the two inputs and the one live adder remain.
    let out = nir.to_design();
    let nir_out = Nir::from_design(&out);
    let live_ops = (0..nir_out.len() as u32)
        .filter(|&i| !matches!(nir_out.kind(i), NirKind::Input | NirKind::Const))
        .count();
    assert_eq!(live_ops, 1, "only the live adder survives");

    // The compiled netopt-on sim agrees with the interpreter.
    let mut sim = Sim::new(&d);
    let mut oracle = Sim::with_mode(&d, ExecMode::Interpreted);
    sim.set("x", 1234);
    sim.set("y", 4321);
    oracle.set("x", 1234);
    oracle.set("y", 4321);
    assert_eq!(sim.get("sum"), oracle.get("sum"));
    let stats = sim.engine_stats().unwrap();
    assert!(
        stats.netopt_dead_gates >= 5,
        "lowering pipeline must also drop the cone: {stats:?}"
    );
}
