//! Laned-vs-scalar equivalence: a [`LaneGroup`] of `L` lanes driven with
//! per-lane **divergent** stimulus must be bit-exact, on every lane and
//! every cycle, with `L` independent scalar [`Sim`]s of the same design —
//! including FSMs, registers with enables/clears, memories with write
//! ports, per-lane backdoor pokes and the fused batch path.

mod netgen;

use atlantis_chdl::prelude::*;
use atlantis_chdl::sim::ExecMode;
use atlantis_chdl::{DispatchMode, EngineConfig};
use netgen::{build_design, build_design_with_chain, XorShift, MEM_WORDS, N_INPUTS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn laned_matches_scalar_lockstep(
        recipes in proptest::collection::vec(
            (any::<u8>(), any::<u16>(), any::<u16>(), any::<u8>()), 8..40),
        seed in any::<u64>(),
        lanes in 1usize..12,
    ) {
        let (design, outputs) = build_design(&recipes);
        let mem = design.find_memory("m").unwrap();

        let mut scalars: Vec<Sim> = (0..lanes).map(|_| Sim::new(&design)).collect();
        // Force the group onto the threaded lane closures (these netlists
        // can sit below the Auto threshold) while the scalars keep the
        // default dispatch: the per-lane pokes below then exercise the
        // lane-program invalidation path against an independent engine.
        // Netopt stays off in the group, so the laned raw stream is
        // checked against netopt-optimized scalars (the optimizer's own
        // laned path is covered in `netopt_equiv.rs`).
        let mut group = Sim::with_config(
            &design,
            ExecMode::Compiled,
            EngineConfig {
                dispatch: DispatchMode::Threaded,
                netopt: false,
                ..EngineConfig::default()
            },
        )
        .fork_lanes(lanes);
        prop_assert_eq!(group.lanes(), lanes);

        // Stepped phase: fresh divergent inputs per lane per cycle
        // (exercises the shared incremental dirty-queue path), with
        // occasional per-lane backdoor pokes.
        let mut stim = XorShift(seed);
        for cycle in 0..220u32 {
            for (lane, scalar) in scalars.iter_mut().enumerate() {
                for i in 0..N_INPUTS {
                    let v = stim.next();
                    scalar.set(&format!("in{i}"), v);
                    group.set(lane, &format!("in{i}"), v);
                }
            }
            if cycle % 13 == 0 {
                let lane = (stim.next() % lanes as u64) as usize;
                let addr = (stim.next() % MEM_WORDS as u64) as usize;
                let v = stim.next() & 0xFFF;
                scalars[lane].poke_mem(mem, addr, v);
                group.poke_mem(lane, mem, addr, v);
            }
            for (lane, scalar) in scalars.iter_mut().enumerate() {
                for name in &outputs {
                    prop_assert_eq!(
                        group.get(lane, name),
                        scalar.get(name),
                        "output {} lane {} cycle {}", name, lane, cycle
                    );
                }
            }
            for scalar in &mut scalars {
                scalar.step();
            }
            group.step();
        }

        // Batch phase: inputs held (still divergent across lanes), fused
        // laned path vs the scalar batch path.
        group.run_batch(100);
        for scalar in &mut scalars {
            scalar.run(100);
        }
        for (lane, scalar) in scalars.iter_mut().enumerate() {
            for name in &outputs {
                prop_assert_eq!(
                    group.get(lane, name),
                    scalar.get(name),
                    "post-batch output {} lane {}", name, lane
                );
            }
            // Per-lane memory banks must agree word for word.
            prop_assert_eq!(group.dump_mem(lane, mem), scalar.dump_mem(mem));
        }
        prop_assert_eq!(group.cycle(), scalars[0].cycle());
    }

    /// The lane engine consumes the same fused stream as the scalar
    /// engine (fork inherits the parent's `EngineConfig`). On deep-chain
    /// netlists, a fused lane group must stay bit-exact with unfused
    /// scalar sims under divergent per-lane stimulus.
    #[test]
    fn fused_lanes_match_unfused_scalars(
        recipes in proptest::collection::vec(
            (any::<u8>(), any::<u16>(), any::<u16>(), any::<u8>()), 8..20),
        depth in 48usize..128,
        seed in any::<u64>(),
        lanes in 2usize..8,
    ) {
        let (design, outputs) = build_design_with_chain(&recipes, depth);
        let mem = design.find_memory("m").unwrap();

        // Scalars deliberately run the raw (unfused) stream so the two
        // sides cannot share a lowering bug.
        let mut scalars: Vec<Sim> = (0..lanes)
            .map(|_| Sim::with_config(&design, ExecMode::Compiled, EngineConfig::unfused()))
            .collect();
        let mut group = Sim::new(&design).fork_lanes(lanes);

        let mut stim = XorShift(seed);
        for cycle in 0..120u32 {
            for (lane, scalar) in scalars.iter_mut().enumerate() {
                for i in 0..N_INPUTS {
                    let v = stim.next();
                    scalar.set(&format!("in{i}"), v);
                    group.set(lane, &format!("in{i}"), v);
                }
            }
            for (lane, scalar) in scalars.iter_mut().enumerate() {
                for name in &outputs {
                    prop_assert_eq!(
                        group.get(lane, name),
                        scalar.get(name),
                        "output {} lane {} cycle {}", name, lane, cycle
                    );
                }
            }
            for scalar in &mut scalars {
                scalar.step();
            }
            group.step();
        }
        group.run_batch(80);
        for (lane, scalar) in scalars.iter_mut().enumerate() {
            scalar.run(80);
            for name in &outputs {
                prop_assert_eq!(
                    group.get(lane, name),
                    scalar.get(name),
                    "post-batch output {} lane {}", name, lane
                );
            }
            prop_assert_eq!(group.dump_mem(lane, mem), scalar.dump_mem(mem));
        }
    }

    /// Forking mid-run must broadcast the scalar sim's state exactly:
    /// the group then tracks a scalar continuation lane for lane.
    #[test]
    fn mid_run_fork_inherits_state(
        recipes in proptest::collection::vec(
            (any::<u8>(), any::<u16>(), any::<u16>(), any::<u8>()), 8..24),
        seed in any::<u64>(),
        warmup in 1u64..200,
    ) {
        let (design, outputs) = build_design(&recipes);
        let mem = design.find_memory("m").unwrap();

        let mut scalar = Sim::new(&design);
        let mut stim = XorShift(seed);
        for i in 0..N_INPUTS {
            scalar.set(&format!("in{i}"), stim.next());
        }
        scalar.run(warmup);

        let mut group = scalar.fork_lanes(3);
        prop_assert_eq!(group.cycle(), scalar.cycle());
        group.run_batch(50);
        scalar.run(50);
        for lane in 0..3 {
            for name in &outputs {
                prop_assert_eq!(
                    group.get(lane, name),
                    scalar.get(name),
                    "output {} lane {}", name, lane
                );
            }
            prop_assert_eq!(group.dump_mem(lane, mem), scalar.dump_mem(mem));
        }
    }
}
