//! Shared random-netlist generator for the equivalence suites
//! (`engine_equiv.rs`, `lane_equiv.rs`).
//!
//! Grows a design from a list of [`Recipe`]s covering arithmetic, logic,
//! muxes, slices, concats, registers (with enables/clears), FSMs and a
//! memory with a write port plus async and sync read ports — every node
//! kind the engines must agree on.

use atlantis_chdl::prelude::*;

/// One generated component: `(kind, a, b, aux)`. Operand selectors are
/// reduced modulo the current signal pool.
pub type Recipe = (u8, u16, u16, u8);

pub const N_INPUTS: usize = 4;
pub const IN_WIDTH: u8 = 12;
pub const MEM_WORDS: usize = 32;

/// Coerce `s` to exactly `w` bits: slice down or zero-extend via concat.
fn fit(d: &mut Design, s: Signal, w: u8) -> Signal {
    use std::cmp::Ordering;
    match s.width().cmp(&w) {
        Ordering::Equal => s,
        Ordering::Greater => d.slice(s, 0, w),
        Ordering::Less => {
            let zeros = d.lit(0, w - s.width());
            d.concat(zeros, s)
        }
    }
}

/// Grow a design from recipes. Every generated signal goes into the pool so
/// later components can reference it; a rolling subset is exposed as outputs.
#[allow(dead_code)] // each equivalence suite uses its own subset of netgen
pub fn build_design(recipes: &[Recipe]) -> (Design, Vec<String>) {
    let (d, outputs, _) = build_pool(recipes);
    (d, outputs)
}

/// Like [`build_design`], then grow a deep combinational chain of `depth`
/// ops from the pool, exposed as `chain_out`. The chain drives level
/// counts far past the recipe mix alone, exercising the engines'
/// dense/cascade sweeps and partitioned evaluation, and its op→op runs
/// (NOT→AND, const sides, slice/concat re-packs) give the fusion pass
/// real absorption targets in a randomized setting.
#[allow(dead_code)] // each equivalence suite uses its own subset of netgen
pub fn build_design_with_chain(recipes: &[Recipe], depth: usize) -> (Design, Vec<String>) {
    let (mut d, mut outputs, pool) = build_pool(recipes);
    let seed = pool[pool.len() - 1];
    let mut cur = fit(&mut d, seed, IN_WIDTH);
    let x = fit(&mut d, pool[0], IN_WIDTH);
    for k in 0..depth {
        cur = match k % 10 {
            0 => d.add(cur, x),
            1 => {
                // NOT feeding AND — the ANDN superop shape.
                let n = d.not(cur);
                d.and(n, x)
            }
            2 => d.xor(cur, x),
            3 => {
                // Constant operand — the OR_IMM peephole shape.
                let c = d.lit((k as u64).wrapping_mul(0x9E37) & 0x7FF, IN_WIDTH);
                d.or(cur, c)
            }
            4 => {
                // Slice+concat — the REPACK superop shape.
                let hi = d.slice(cur, 6, 6);
                let lo = d.slice(cur, 0, 6);
                d.concat(hi, lo)
            }
            5 => {
                let s = d.eq(cur, x);
                d.mux(s, cur, x)
            }
            6 => {
                // AND of two bit-extracts — the ANDSHR superop shape.
                let cb = d.bit(cur, ((k / 7) % usize::from(IN_WIDTH)) as u8);
                let xb = d.bit(x, (k % usize::from(IN_WIDTH)) as u8);
                let g = d.and(cb, xb);
                fit(&mut d, g, IN_WIDTH)
            }
            7 => {
                // A 1-bit slice selecting a mux — the MUX_BIT shape.
                let s = d.bit(cur, ((k / 10) % usize::from(IN_WIDTH)) as u8);
                d.mux(s, x, cur)
            }
            8 => {
                // CONCAT feeding CONCAT — the CAT3 left-fold `cat` shape.
                let a = d.slice(cur, 8, 4);
                let b = d.slice(cur, 4, 4);
                let c = d.slice(cur, 0, 4);
                d.cat(&[a, b, c])
            }
            _ => {
                // Guarded counter increment — the INC_IF shape.
                let en = d.bit(x, (k % usize::from(IN_WIDTH)) as u8);
                let one = d.lit(1 + (k as u64 % 5), IN_WIDTH);
                let inc = d.add(cur, one);
                d.mux(en, inc, cur)
            }
        };
    }
    d.expose_output("chain_out", cur);
    outputs.push("chain_out".to_string());
    (d, outputs)
}

/// Like [`build_design`], then graft `shapes` deliberately redundant
/// structures onto the pool: dead cones nothing consumes, duplicated
/// subexpressions elaborated twice from scratch, constant-only cones,
/// identity chains (`x+0`, `x*1`, `x&mask`, `mux(s,x,x)`) and
/// `dont_touch`-pinned nodes (some of them dead). This is the netlist
/// optimizer's diet: every shape is a target for exactly one pass
/// (dead-gate elimination, subexpression sharing, constant folding),
/// while the pinned nodes must survive all of them.
#[allow(dead_code)] // each equivalence suite uses its own subset of netgen
pub fn build_design_with_redundancy(recipes: &[Recipe], shapes: usize) -> (Design, Vec<String>) {
    let (mut d, mut outputs, pool) = build_pool(recipes);
    for k in 0..shapes {
        let ra = pool[k % pool.len()];
        let rb = pool[(k * 7 + 3) % pool.len()];
        let x = fit(&mut d, ra, IN_WIDTH);
        let y = fit(&mut d, rb, IN_WIDTH);
        match k % 5 {
            0 => {
                // Dead cone: three chained ops, never consumed.
                let a = d.mul(x, y);
                let b = d.sub(a, x);
                let _dead = d.xor(b, y);
            }
            1 => {
                // The same subtree elaborated twice — CSE bait. Both
                // copies feed an output so sharing must stay sound.
                let mut arms = Vec::new();
                for _ in 0..2 {
                    let p = d.xor(x, y);
                    let q = d.and(x, y);
                    arms.push(d.add(p, q));
                }
                let z = d.or(arms[0], arms[1]);
                let name = format!("dup{k}");
                d.expose_output(&name, z);
                outputs.push(name);
            }
            2 => {
                // Constant-only cone feeding live logic: folds to one
                // literal, then the add's const side becomes an imm.
                let c1 = d.lit(0x0ff & (k as u64 + 1), IN_WIDTH);
                let c2 = d.lit(0x321, IN_WIDTH);
                let c3 = d.mul(c1, c2);
                let c4 = d.xor(c3, c1);
                let z = d.add(x, c4);
                let name = format!("konst{k}");
                d.expose_output(&name, z);
                outputs.push(name);
            }
            3 => {
                // Identity chain: every link aliases back to `x`.
                let zero = d.lit(0, IN_WIDTH);
                let ones = d.lit(0xFFF, IN_WIDTH);
                let one = d.lit(1, IN_WIDTH);
                let i1 = d.add(x, zero);
                let i2 = d.mul(i1, one);
                let i3 = d.and(i2, ones);
                let s = d.reduce_xor(y);
                let z = d.mux(s, i3, i3); // mux of identical arms
                let name = format!("ident{k}");
                d.expose_output(&name, z);
                outputs.push(name);
            }
            _ => {
                // Pinned nodes: a live probe target and a dead gate that
                // only `dont_touch` keeps alive.
                let g = d.and(x, y);
                let probe = d.not(g);
                d.set_dont_touch(probe);
                d.label(format!("pin{k}"), probe);
                let dead_pin = d.sub(y, x);
                d.set_dont_touch(dead_pin);
            }
        }
    }
    (d, outputs)
}

fn build_pool(recipes: &[Recipe]) -> (Design, Vec<String>, Vec<Signal>) {
    let mut d = Design::new("generated");
    let mut pool: Vec<Signal> = (0..N_INPUTS)
        .map(|i| d.input(format!("in{i}"), IN_WIDTH))
        .collect();
    let c1 = d.lit(0x5a5, IN_WIDTH);
    let c2 = d.lit(1, IN_WIDTH);
    pool.push(c1);
    pool.push(c2);

    // One memory with a write port and both read-port flavours, driven by
    // generated signals so its traffic depends on the whole netlist.
    let mem = d.memory("m", MEM_WORDS, IN_WIDTH);

    let mut outputs = Vec::new();
    for (i, &(kind, a_sel, b_sel, aux)) in recipes.iter().enumerate() {
        let ra = pool[a_sel as usize % pool.len()];
        let rb = pool[b_sel as usize % pool.len()];
        // Binary components need matching widths; coerce to the nominal
        // width (slices keep narrower signals flowing through the pool).
        let a = fit(&mut d, ra, IN_WIDTH);
        let b = fit(&mut d, rb, IN_WIDTH);
        let sig = match kind % 19 {
            0 => d.add(a, b),
            1 => d.sub(a, b),
            2 => d.mul(a, b),
            3 => d.and(a, b),
            4 => d.or(a, b),
            5 => d.xor(a, b),
            6 => d.not(ra),
            7 => d.eq(a, b),
            8 => d.lt(a, b),
            9 => {
                let sel = d.reduce_xor(rb);
                d.mux(sel, a, b)
            }
            10 => {
                let lo = aux % ra.width();
                let width = 1 + (aux / 16) % (ra.width() - lo);
                d.slice(ra, lo, width)
            }
            11 => {
                if ra.width() + rb.width() <= 32 {
                    d.concat(ra, rb)
                } else {
                    d.xor(a, b)
                }
            }
            12 => {
                let amt = d.slice(b, 0, 3);
                d.shl(a, amt)
            }
            13 => {
                let amt = d.slice(b, 0, 3);
                d.shr(a, amt)
            }
            14 => d.reg(format!("r{i}"), a),
            15 => {
                // Register with enable and clear, init from aux.
                let en = d.reduce_or(rb);
                let clr = d.eq(a, b);
                d.reg_full(format!("rf{i}"), a, Some(en), Some(clr), u64::from(aux))
            }
            16 => {
                let addr = d.slice(a, 0, 5);
                d.read_async(mem, addr)
            }
            17 => {
                let addr = d.slice(b, 0, 5);
                d.read_sync(mem, addr)
            }
            _ => {
                // A small FSM whose guards are driven by the pool —
                // state machines are CHDL's second entry form and
                // exercise the eq-const / mux-chain shapes the builder
                // emits, observed through a Moore output.
                let mut fb = FsmBuilder::new(format!("f{i}"));
                let s0 = fb.state("idle");
                let s1 = fb.state("busy");
                let s2 = fb.state("done");
                let g01 = d.reduce_or(a);
                let g12 = d.reduce_xor(b);
                fb.transition(s0, g01, s1);
                fb.transition(s1, g12, s2);
                fb.always(&mut d, s2, s0);
                let fsm = fb.build(&mut d);
                fsm.moore_output(
                    &mut d,
                    &[u64::from(aux), 0x0F0, 0x5A5 ^ u64::from(aux)],
                    IN_WIDTH,
                )
            }
        };
        pool.push(sig);
        if i % 3 == 0 {
            let name = format!("o{i}");
            d.expose_output(&name, sig);
            outputs.push(name);
        }
    }

    // Wire the write port from the freshest pool entries.
    let n = pool.len();
    let waddr_src = pool[n - 1];
    let wdata = pool[n - 2];
    let we_src = pool[n - 3];
    let waddr_full = fit(&mut d, waddr_src, IN_WIDTH);
    let waddr = d.slice(waddr_full, 0, 5);
    let we = d.reduce_or(we_src);
    let wdata12 = fit(&mut d, wdata, IN_WIDTH);
    d.write_port(mem, waddr, wdata12, we);

    // Always observe at least one signal.
    if outputs.is_empty() {
        d.expose_output("o_last", pool[n - 1]);
        outputs.push("o_last".to_string());
    }
    (d, outputs, pool)
}

/// Cheap deterministic stimulus shared across all sims in a case.
pub struct XorShift(pub u64);

impl XorShift {
    pub fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}
