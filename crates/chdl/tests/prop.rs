//! Property-based tests: CHDL arithmetic must agree with host arithmetic
//! for arbitrary operands and widths, and structural generators must match
//! their behavioural models.

use atlantis_chdl::prelude::*;
use proptest::prelude::*;

fn mask(w: u8) -> u64 {
    if w == 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

/// Build a two-input design computing several operators at once.
fn alu_design(w: u8) -> Design {
    let mut d = Design::new("alu");
    let a = d.input("a", w);
    let b = d.input("b", w);
    let ops: Vec<(&str, Signal)> = vec![
        ("add", d.add(a, b)),
        ("sub", d.sub(a, b)),
        ("mul", d.mul(a, b)),
        ("and", d.and(a, b)),
        ("or", d.or(a, b)),
        ("xor", d.xor(a, b)),
        ("eq", d.eq(a, b)),
        ("lt", d.lt(a, b)),
        ("le", d.le(a, b)),
    ];
    for (name, sig) in ops {
        d.expose_output(name, sig);
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn alu_matches_u64_semantics(w in 1u8..=64, a in any::<u64>(), b in any::<u64>()) {
        let d = alu_design(w);
        let mut sim = Sim::new(&d);
        let (am, bm) = (a & mask(w), b & mask(w));
        sim.set("a", am);
        sim.set("b", bm);
        prop_assert_eq!(sim.get("add"), am.wrapping_add(bm) & mask(w));
        prop_assert_eq!(sim.get("sub"), am.wrapping_sub(bm) & mask(w));
        prop_assert_eq!(sim.get("mul"), am.wrapping_mul(bm) & mask(w));
        prop_assert_eq!(sim.get("and"), am & bm);
        prop_assert_eq!(sim.get("or"), am | bm);
        prop_assert_eq!(sim.get("xor"), am ^ bm);
        prop_assert_eq!(sim.get("eq"), u64::from(am == bm));
        prop_assert_eq!(sim.get("lt"), u64::from(am < bm));
        prop_assert_eq!(sim.get("le"), u64::from(am <= bm));
    }

    #[test]
    fn slice_concat_round_trip(w in 2u8..=64, v in any::<u64>(), cut in 1u8..=63) {
        prop_assume!(cut < w);
        let mut d = Design::new("rt");
        let a = d.input("a", w);
        let lo = d.slice(a, 0, cut);
        let hi = d.slice(a, cut, w - cut);
        let back = d.concat(hi, lo);
        d.expose_output("back", back);
        let mut sim = Sim::new(&d);
        let vm = v & mask(w);
        sim.set("a", vm);
        prop_assert_eq!(sim.get("back"), vm);
    }

    #[test]
    fn popcount_matches(w in 1u8..=64, v in any::<u64>()) {
        let mut d = Design::new("pc");
        let a = d.input("a", w);
        let pc = d.popcount(a);
        d.expose_output("pc", pc);
        let mut sim = Sim::new(&d);
        let vm = v & mask(w);
        sim.set("a", vm);
        prop_assert_eq!(sim.get("pc"), vm.count_ones() as u64);
    }

    #[test]
    fn select_matches_indexing(n in 2usize..=24, values in proptest::collection::vec(any::<u64>(), 24), sel in 0usize..24) {
        prop_assume!(sel < n);
        let mut d = Design::new("sel");
        let sw = atlantis_chdl::signal::bits_for(n as u64);
        let s = d.input("s", sw);
        let opts: Vec<Signal> = values[..n].iter().map(|&v| d.lit(v & mask(32), 32)).collect();
        let out = d.select(s, &opts);
        d.expose_output("out", out);
        let mut sim = Sim::new(&d);
        sim.set("s", sel as u64);
        prop_assert_eq!(sim.get("out"), values[sel] & mask(32));
    }

    #[test]
    fn fifo_behaves_like_vecdeque(ops in proptest::collection::vec((any::<bool>(), any::<bool>(), 0u64..256), 1..200)) {
        let mut d = Design::new("f");
        let din = d.input("din", 8);
        let push = d.input("push", 1);
        let pop = d.input("pop", 1);
        let f = d.fifo("f", 5, din, push, pop);
        d.expose_output("dout", f.dout);
        d.expose_output("empty", f.empty);
        d.expose_output("full", f.full);
        d.expose_output("count", f.count);
        let mut sim = Sim::new(&d);
        let mut model = std::collections::VecDeque::new();

        for (do_push, do_pop, val) in ops {
            sim.set("din", val);
            sim.set("push", u64::from(do_push));
            sim.set("pop", u64::from(do_pop));
            prop_assert_eq!(sim.get("count"), model.len() as u64);
            prop_assert_eq!(sim.get("empty"), u64::from(model.is_empty()));
            prop_assert_eq!(sim.get("full"), u64::from(model.len() == 5));
            if !model.is_empty() {
                prop_assert_eq!(sim.get("dout"), *model.front().unwrap());
            }
            // Model the hardware's edge semantics.
            let popped = do_pop && !model.is_empty();
            let pushed = do_push && model.len() < 5;
            sim.step();
            if popped {
                model.pop_front();
            }
            if pushed {
                model.push_back(val);
            }
        }
    }

    #[test]
    fn counter_mod_is_modular(limit in 1u64..200, steps in 0u64..500) {
        let mut d = Design::new("c");
        let en = d.input("en", 1);
        let c = d.counter_mod("c", 8, limit, en);
        d.expose_output("v", c.value);
        let mut sim = Sim::new(&d);
        sim.set("en", 1);
        sim.run(steps);
        prop_assert_eq!(sim.get("v"), steps % limit);
    }

    #[test]
    fn add_sat_never_wraps(w in 2u8..=32, a in any::<u64>(), b in any::<u64>()) {
        let mut d = Design::new("s");
        let x = d.input("x", w);
        let y = d.input("y", w);
        let s = d.add_sat(x, y);
        d.expose_output("s", s);
        let mut sim = Sim::new(&d);
        let (am, bm) = (a & mask(w), b & mask(w));
        sim.set("x", am);
        sim.set("y", bm);
        let expect = (am + bm).min(mask(w));
        prop_assert_eq!(sim.get("s"), expect);
    }

    #[test]
    fn regfile_holds_writes(writes in proptest::collection::vec((0u64..16, any::<u64>()), 1..64)) {
        let mut d = Design::new("rf");
        let waddr = d.input("waddr", 4);
        let wdata = d.input("wdata", 16);
        let we = d.input("we", 1);
        let raddr = d.input("raddr", 4);
        let (_m, rdata) = d.regfile("rf", 16, 16, waddr, wdata, we, raddr);
        d.expose_output("rdata", rdata);
        let mut sim = Sim::new(&d);
        let mut model = [0u64; 16];
        sim.set("we", 1);
        for (addr, data) in writes {
            let dm = data & mask(16);
            sim.set("waddr", addr);
            sim.set("wdata", dm);
            sim.step();
            model[addr as usize] = dm;
        }
        sim.set("we", 0);
        for (addr, &expect) in model.iter().enumerate() {
            sim.set("raddr", addr as u64);
            prop_assert_eq!(sim.get("rdata"), expect);
        }
    }

    /// The optimizer never changes observable behaviour and never grows
    /// the netlist, for a generated family with constants, identities and
    /// dead branches.
    #[test]
    fn optimizer_preserves_behaviour(taps in proptest::collection::vec(0u64..4, 1..8),
                                     stim in proptest::collection::vec(any::<u64>(), 1..20)) {
        let mut d = Design::new("family");
        let x = d.input("x", 16);
        let zero = d.lit(0, 16);
        let mut acc = zero;
        for (i, &t) in taps.iter().enumerate() {
            let k = d.lit(t, 16);
            let term = d.mul(x, k); // t ∈ {0,1} fold/alias; others stay
            let summed = d.add(acc, term);
            // A dead side branch per tap.
            let _dead = d.sub(summed, k);
            acc = if i % 2 == 0 { summed } else { d.reg(format!("r{i}"), summed) };
        }
        d.expose_output("y", acc);
        let (opt, _) = d.optimized();
        prop_assert!(opt.stats().gates <= d.stats().gates);
        prop_assert!(opt.stats().components <= d.stats().components);
        let mut s1 = Sim::new(&d);
        let mut s2 = Sim::new(&opt);
        for v in stim {
            let vm = v & mask(16);
            s1.set("x", vm);
            s2.set("x", vm);
            prop_assert_eq!(s1.get("y"), s2.get("y"));
            s1.step();
            s2.step();
        }
    }

    #[test]
    fn structural_bytes_stable_under_rebuild(seed in any::<u64>()) {
        let build = || {
            let mut d = Design::new("s");
            let a = d.input("a", 32);
            let k = d.lit(seed & mask(32), 32);
            let x = d.xor(a, k);
            let r = d.reg("r", x);
            d.expose_output("r", r);
            d.structural_bytes()
        };
        prop_assert_eq!(build(), build());
    }
}
