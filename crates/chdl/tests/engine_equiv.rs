//! Randomized co-simulation of the three execution paths:
//!
//! * the **compiled engine** (micro-op stream, the default),
//! * the **tree-walking interpreter** (the reference oracle), and
//! * the compiled engine running the **optimizer's output**
//!   ([`Design::optimized`]).
//!
//! For generated netlists (shared generator in `netgen`) mixing arithmetic,
//! logic, muxes, slices, concats, registers (with enables/clears), FSMs and
//! a memory with write port plus async and sync read ports, all three must
//! produce bit-exact outputs on every cycle of a shared random stimulus —
//! at least 1000 cycles per case, covering both per-cycle stepping (the
//! incremental path) and [`Sim::run_batch`] (the fused dense path) — and
//! identical final memory contents.

mod netgen;

use atlantis_chdl::prelude::*;
use atlantis_chdl::sim::ExecMode;
use atlantis_chdl::{DispatchMode, EngineConfig, ParallelEval};
use netgen::{build_design, build_design_with_chain, XorShift, MEM_WORDS, N_INPUTS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// ≥1000 cycles per case: 600 individually stepped with fresh inputs
    /// each cycle (exercises the incremental dirty-queue path), then a
    /// 424-cycle fused batch with inputs held (exercises the dense path).
    #[test]
    fn three_way_equivalence(
        recipes in proptest::collection::vec(
            (any::<u8>(), any::<u16>(), any::<u16>(), any::<u8>()), 8..40),
        seed in any::<u64>(),
    ) {
        let (design, outputs) = build_design(&recipes);
        let (optimized, _) = design.optimized();

        let mut compiled = Sim::new(&design);
        let mut oracle = Sim::with_mode(&design, ExecMode::Interpreted);
        let mut opt_sim = Sim::new(&optimized);
        prop_assert_eq!(compiled.mode(), ExecMode::Compiled);
        prop_assert_eq!(oracle.mode(), ExecMode::Interpreted);

        let mut stim = XorShift(seed);
        for cycle in 0..600u32 {
            for i in 0..N_INPUTS {
                let v = stim.next();
                compiled.set(&format!("in{i}"), v);
                oracle.set(&format!("in{i}"), v);
                opt_sim.set(&format!("in{i}"), v);
            }
            for name in &outputs {
                let c = compiled.get(name);
                let o = oracle.get(name);
                let p = opt_sim.get(name);
                prop_assert_eq!(c, o, "compiled vs oracle: {} cycle {}", name, cycle);
                prop_assert_eq!(c, p, "compiled vs optimized: {} cycle {}", name, cycle);
            }
            compiled.step();
            oracle.step();
            opt_sim.step();
        }

        // Batch phase: inputs held steady, fused fast path vs stepping.
        compiled.run_batch(424);
        oracle.run(424);
        opt_sim.run_batch(424);
        for name in &outputs {
            let c = compiled.get(name);
            let o = oracle.get(name);
            let p = opt_sim.get(name);
            prop_assert_eq!(c, o, "post-batch compiled vs oracle: {}", name);
            prop_assert_eq!(c, p, "post-batch compiled vs optimized: {}", name);
        }
        prop_assert_eq!(compiled.cycle(), 1024);
        prop_assert_eq!(oracle.cycle(), 1024);

        // Memory contents must agree word for word.
        let mem = design.find_memory("m").unwrap();
        prop_assert_eq!(compiled.dump_mem(mem), oracle.dump_mem(mem));
        if let Some(opt_mem) = optimized.find_memory("m") {
            prop_assert_eq!(compiled.dump_mem(mem), opt_sim.dump_mem(opt_mem));
        }
    }

    /// Fused-vs-unfused, partitioned-vs-serial and threaded-vs-match
    /// co-simulation on netlists with deep combinational chains and
    /// memory traffic. Every engine tuning must be bit-exact with the
    /// interpreter oracle, and the deep chain guarantees the fusion pass
    /// actually fires.
    #[test]
    fn fused_and_partitioned_equivalence(
        recipes in proptest::collection::vec(
            (any::<u8>(), any::<u16>(), any::<u16>(), any::<u8>()), 8..24),
        depth in 64usize..160,
        seed in any::<u64>(),
    ) {
        let (design, outputs) = build_design_with_chain(&recipes, depth);

        let mut oracle = Sim::with_mode(&design, ExecMode::Interpreted);
        let configs = [
            EngineConfig::default(),                 // fused, auto partitioning + dispatch
            EngineConfig::unfused(),                 // raw stream, serial, match
            EngineConfig {
                fuse: true,
                parallel: ParallelEval::Force(4),
                dispatch: DispatchMode::Match,       // partitioned match dispatch
                ..EngineConfig::default()
            },
            EngineConfig {
                fuse: false,
                parallel: ParallelEval::Force(2),
                dispatch: DispatchMode::Threaded,    // partitioned threaded, raw stream
                ..EngineConfig::default()
            },
            EngineConfig {
                fuse: true,
                parallel: ParallelEval::Off,
                dispatch: DispatchMode::Threaded,    // serial closure chains, fused
                ..EngineConfig::default()
            },
            EngineConfig {
                fuse: true,
                parallel: ParallelEval::Off,
                dispatch: DispatchMode::Match,       // serial match (the PR 6 engine)
                ..EngineConfig::default()
            },
            EngineConfig {
                netopt: false,                       // raw netlist, fused stream
                ..EngineConfig::default()
            },
            EngineConfig {
                netopt: false,                       // raw netlist, raw stream, threaded
                fuse: false,
                dispatch: DispatchMode::Threaded,
                ..EngineConfig::default()
            },
            EngineConfig {
                streaming: true,                     // pinned full-stream sweeps, match
                dispatch: DispatchMode::Match,
                ..EngineConfig::default()
            },
            EngineConfig {
                streaming: true,                     // pinned full-stream sweeps, threaded
                dispatch: DispatchMode::Threaded,
                ..EngineConfig::default()
            },
        ];
        let mut sims: Vec<Sim> = configs
            .iter()
            .map(|&c| Sim::with_config(&design, ExecMode::Compiled, c))
            .collect();
        let fused_stats = sims[0].engine_stats().unwrap().clone();
        prop_assert!(fused_stats.ops_fused > 0, "deep chain produced no superops");
        prop_assert!(
            fused_stats.ops_final < fused_stats.ops_lowered,
            "fusion did not shrink the stream"
        );

        let mut stim = XorShift(seed);
        for cycle in 0..200u32 {
            let vals: Vec<u64> = (0..N_INPUTS).map(|_| stim.next()).collect();
            for (i, v) in vals.iter().enumerate() {
                oracle.set(&format!("in{i}"), *v);
                for sim in &mut sims {
                    sim.set(&format!("in{i}"), *v);
                }
            }
            for name in &outputs {
                let want = oracle.get(name);
                for (k, sim) in sims.iter_mut().enumerate() {
                    prop_assert_eq!(
                        sim.get(name), want,
                        "config {} vs oracle: {} cycle {}", k, name, cycle
                    );
                }
            }
            oracle.step();
            for sim in &mut sims {
                sim.step();
            }
        }

        // Batch phase: fused dense/cascade sweeps vs the oracle.
        oracle.run(100);
        for sim in &mut sims {
            sim.run_batch(100);
        }
        for name in &outputs {
            let want = oracle.get(name);
            for (k, sim) in sims.iter_mut().enumerate() {
                prop_assert_eq!(sim.get(name), want, "post-batch config {}: {}", k, name);
            }
        }
        let mem = design.find_memory("m").unwrap();
        for sim in &sims {
            prop_assert_eq!(sim.dump_mem(mem), oracle.dump_mem(mem));
        }
    }

    /// The backdoor must invalidate the compiled engine's read cones just
    /// like it marks the interpreter dirty.
    #[test]
    fn backdoor_pokes_stay_equivalent(
        pokes in proptest::collection::vec((0usize..MEM_WORDS, any::<u64>()), 1..32),
        seed in any::<u64>(),
    ) {
        let mut d = Design::new("poked");
        let addr = d.input("addr", 5);
        let mem = d.memory("m", MEM_WORDS, 16);
        let ra = d.read_async(mem, addr);
        let rs = d.read_sync(mem, addr);
        d.expose_output("ra", ra);
        d.expose_output("rs", rs);

        let mut compiled = Sim::new(&d);
        // The stream is far below the Auto threshold, so force the closure
        // chains on: pokes must drop the compiled program, not stale-read it.
        let mut threaded = Sim::with_config(
            &d,
            ExecMode::Compiled,
            EngineConfig { dispatch: DispatchMode::Threaded, ..EngineConfig::default() },
        );
        let mut oracle = Sim::with_mode(&d, ExecMode::Interpreted);
        let mut stim = XorShift(seed);
        for (a, v) in pokes {
            compiled.poke_mem(mem, a, v & 0xFFFF);
            threaded.poke_mem(mem, a, v & 0xFFFF);
            oracle.poke_mem(mem, a, v & 0xFFFF);
            let probe = stim.next() % MEM_WORDS as u64;
            compiled.set("addr", probe);
            threaded.set("addr", probe);
            oracle.set("addr", probe);
            prop_assert_eq!(compiled.get("ra"), oracle.get("ra"));
            prop_assert_eq!(threaded.get("ra"), oracle.get("ra"));
            compiled.step();
            threaded.step();
            oracle.step();
            prop_assert_eq!(compiled.get("rs"), oracle.get("rs"));
            prop_assert_eq!(threaded.get("rs"), oracle.get("rs"));
        }
        prop_assert_eq!(compiled.dump_mem(mem), oracle.dump_mem(mem));
        prop_assert_eq!(threaded.dump_mem(mem), oracle.dump_mem(mem));
    }
}

/// `DispatchMode::Auto` must pick the dispatch tier from the stream size:
/// tiny netlists stay on match dispatch (no compile pass at all), big ones
/// compile closure chains eagerly — and a backdoor poke must tear the
/// compiled program down, run exactly one match-dispatched eval, then
/// recompile.
#[test]
fn auto_dispatch_threshold_and_poke_fallback() {
    // Small design: two memory reads, well under the Auto threshold.
    let mut d = Design::new("tiny");
    let addr = d.input("addr", 5);
    let mem = d.memory("m", MEM_WORDS, 16);
    let ra = d.read_async(mem, addr);
    d.expose_output("ra", ra);

    let mut small = Sim::new(&d);
    for a in 0..8u64 {
        small.set("addr", a);
        let _ = small.get("ra");
        small.step();
    }
    let st = small.engine_stats().unwrap();
    assert_eq!(st.compiles, 0, "tiny stream must not trigger a compile");
    assert_eq!(st.evals_threaded, 0);
    assert!(
        st.evals_match > 0,
        "tiny stream evals must run match dispatch"
    );

    // Big design: deep chain far above the Auto threshold.
    let recipes: Vec<(u8, u16, u16, u8)> = (0..16u16)
        .map(|i| (i as u8 * 17, 1000 + i, 2000 + 3 * i, i as u8))
        .collect();
    let (big, outputs) = build_design_with_chain(&recipes, 600);
    let mut sim = Sim::new(&big);
    let mut stim = XorShift(0x41544C41_u64);
    for _ in 0..8 {
        for i in 0..N_INPUTS {
            sim.set(&format!("in{i}"), stim.next());
        }
        for name in &outputs {
            let _ = sim.get(name);
        }
        sim.step();
    }
    let before = sim.engine_stats().unwrap().clone();
    assert!(before.compiles >= 1, "big stream must compile under Auto");
    assert!(
        before.evals_threaded > 0,
        "big stream evals must run threaded"
    );
    assert!(before.closures_specialized >= before.ops_final);
    assert!(before.blocks_built > 0);

    // Backdoor poke: program dropped, one match eval, then a recompile.
    let big_mem = big.find_memory("m").unwrap();
    sim.poke_mem(big_mem, 0, 0xBEEF);
    for name in &outputs {
        let _ = sim.get(name);
    }
    let after = sim.engine_stats().unwrap().clone();
    assert_eq!(
        after.evals_match,
        before.evals_match + 1,
        "the first post-poke eval must fall back to match dispatch"
    );
    assert!(
        after.compiles > before.compiles,
        "poke must force a recompile"
    );

    // And the eval after the recompile is threaded again.
    sim.set("in0", 7);
    for name in &outputs {
        let _ = sim.get(name);
    }
    let settled = sim.engine_stats().unwrap().clone();
    assert!(settled.evals_threaded > after.evals_threaded);
    assert_eq!(settled.evals_match, after.evals_match);
}
