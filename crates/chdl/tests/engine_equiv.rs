//! Randomized co-simulation of the three execution paths:
//!
//! * the **compiled engine** (micro-op stream, the default),
//! * the **tree-walking interpreter** (the reference oracle), and
//! * the compiled engine running the **optimizer's output**
//!   ([`Design::optimized`]).
//!
//! For generated netlists mixing arithmetic, logic, muxes, slices, concats,
//! registers (with enables/clears) and a memory with write port plus async
//! and sync read ports, all three must produce bit-exact outputs on every
//! cycle of a shared random stimulus — at least 1000 cycles per case,
//! covering both per-cycle stepping (the incremental path) and
//! [`Sim::run_batch`] (the fused dense path) — and identical final memory
//! contents.

use atlantis_chdl::prelude::*;
use atlantis_chdl::sim::ExecMode;
use proptest::prelude::*;

/// One generated combinational/sequential component: `(kind, a, b, aux)`.
/// Operand selectors are reduced modulo the current signal pool.
type Recipe = (u8, u16, u16, u8);

const N_INPUTS: usize = 4;
const IN_WIDTH: u8 = 12;
const MEM_WORDS: usize = 32;

/// Coerce `s` to exactly `w` bits: slice down or zero-extend via concat.
fn fit(d: &mut Design, s: Signal, w: u8) -> Signal {
    use std::cmp::Ordering;
    match s.width().cmp(&w) {
        Ordering::Equal => s,
        Ordering::Greater => d.slice(s, 0, w),
        Ordering::Less => {
            let zeros = d.lit(0, w - s.width());
            d.concat(zeros, s)
        }
    }
}

/// Grow a design from recipes. Every generated signal goes into the pool so
/// later components can reference it; a rolling subset is exposed as outputs.
fn build_design(recipes: &[Recipe]) -> (Design, Vec<String>) {
    let mut d = Design::new("generated");
    let mut pool: Vec<Signal> = (0..N_INPUTS)
        .map(|i| d.input(format!("in{i}"), IN_WIDTH))
        .collect();
    let c1 = d.lit(0x5a5, IN_WIDTH);
    let c2 = d.lit(1, IN_WIDTH);
    pool.push(c1);
    pool.push(c2);

    // One memory with a write port and both read-port flavours, driven by
    // generated signals so its traffic depends on the whole netlist.
    let mem = d.memory("m", MEM_WORDS, IN_WIDTH);

    let mut outputs = Vec::new();
    for (i, &(kind, a_sel, b_sel, aux)) in recipes.iter().enumerate() {
        let ra = pool[a_sel as usize % pool.len()];
        let rb = pool[b_sel as usize % pool.len()];
        // Binary components need matching widths; coerce to the nominal
        // width (slices keep narrower signals flowing through the pool).
        let a = fit(&mut d, ra, IN_WIDTH);
        let b = fit(&mut d, rb, IN_WIDTH);
        let sig = match kind % 18 {
            0 => d.add(a, b),
            1 => d.sub(a, b),
            2 => d.mul(a, b),
            3 => d.and(a, b),
            4 => d.or(a, b),
            5 => d.xor(a, b),
            6 => d.not(ra),
            7 => d.eq(a, b),
            8 => d.lt(a, b),
            9 => {
                let sel = d.reduce_xor(rb);
                d.mux(sel, a, b)
            }
            10 => {
                let lo = aux % ra.width();
                let width = 1 + (aux / 16) % (ra.width() - lo);
                d.slice(ra, lo, width)
            }
            11 => {
                if ra.width() + rb.width() <= 32 {
                    d.concat(ra, rb)
                } else {
                    d.xor(a, b)
                }
            }
            12 => {
                let amt = d.slice(b, 0, 3);
                d.shl(a, amt)
            }
            13 => {
                let amt = d.slice(b, 0, 3);
                d.shr(a, amt)
            }
            14 => d.reg(format!("r{i}"), a),
            15 => {
                // Register with enable and clear, init from aux.
                let en = d.reduce_or(rb);
                let clr = d.eq(a, b);
                d.reg_full(format!("rf{i}"), a, Some(en), Some(clr), u64::from(aux))
            }
            16 => {
                let addr = d.slice(a, 0, 5);
                d.read_async(mem, addr)
            }
            _ => {
                let addr = d.slice(b, 0, 5);
                d.read_sync(mem, addr)
            }
        };
        pool.push(sig);
        if i % 3 == 0 {
            let name = format!("o{i}");
            d.expose_output(&name, sig);
            outputs.push(name);
        }
    }

    // Wire the write port from the freshest pool entries.
    let n = pool.len();
    let waddr_src = pool[n - 1];
    let wdata = pool[n - 2];
    let we_src = pool[n - 3];
    let waddr_full = fit(&mut d, waddr_src, IN_WIDTH);
    let waddr = d.slice(waddr_full, 0, 5);
    let we = d.reduce_or(we_src);
    let wdata12 = fit(&mut d, wdata, IN_WIDTH);
    d.write_port(mem, waddr, wdata12, we);

    // Always observe at least one signal.
    if outputs.is_empty() {
        d.expose_output("o_last", pool[n - 1]);
        outputs.push("o_last".to_string());
    }
    (d, outputs)
}

/// Cheap deterministic stimulus shared across all sims.
struct XorShift(u64);
impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// ≥1000 cycles per case: 600 individually stepped with fresh inputs
    /// each cycle (exercises the incremental dirty-queue path), then a
    /// 424-cycle fused batch with inputs held (exercises the dense path).
    #[test]
    fn three_way_equivalence(
        recipes in proptest::collection::vec(
            (any::<u8>(), any::<u16>(), any::<u16>(), any::<u8>()), 8..40),
        seed in any::<u64>(),
    ) {
        let (design, outputs) = build_design(&recipes);
        let (optimized, _) = design.optimized();

        let mut compiled = Sim::new(&design);
        let mut oracle = Sim::with_mode(&design, ExecMode::Interpreted);
        let mut opt_sim = Sim::new(&optimized);
        prop_assert_eq!(compiled.mode(), ExecMode::Compiled);
        prop_assert_eq!(oracle.mode(), ExecMode::Interpreted);

        let mut stim = XorShift(seed);
        for cycle in 0..600u32 {
            for i in 0..N_INPUTS {
                let v = stim.next();
                compiled.set(&format!("in{i}"), v);
                oracle.set(&format!("in{i}"), v);
                opt_sim.set(&format!("in{i}"), v);
            }
            for name in &outputs {
                let c = compiled.get(name);
                let o = oracle.get(name);
                let p = opt_sim.get(name);
                prop_assert_eq!(c, o, "compiled vs oracle: {} cycle {}", name, cycle);
                prop_assert_eq!(c, p, "compiled vs optimized: {} cycle {}", name, cycle);
            }
            compiled.step();
            oracle.step();
            opt_sim.step();
        }

        // Batch phase: inputs held steady, fused fast path vs stepping.
        compiled.run_batch(424);
        oracle.run(424);
        opt_sim.run_batch(424);
        for name in &outputs {
            let c = compiled.get(name);
            let o = oracle.get(name);
            let p = opt_sim.get(name);
            prop_assert_eq!(c, o, "post-batch compiled vs oracle: {}", name);
            prop_assert_eq!(c, p, "post-batch compiled vs optimized: {}", name);
        }
        prop_assert_eq!(compiled.cycle(), 1024);
        prop_assert_eq!(oracle.cycle(), 1024);

        // Memory contents must agree word for word.
        let mem = design.find_memory("m").unwrap();
        prop_assert_eq!(compiled.dump_mem(mem), oracle.dump_mem(mem));
        if let Some(opt_mem) = optimized.find_memory("m") {
            prop_assert_eq!(compiled.dump_mem(mem), opt_sim.dump_mem(opt_mem));
        }
    }

    /// The backdoor must invalidate the compiled engine's read cones just
    /// like it marks the interpreter dirty.
    #[test]
    fn backdoor_pokes_stay_equivalent(
        pokes in proptest::collection::vec((0usize..MEM_WORDS, any::<u64>()), 1..32),
        seed in any::<u64>(),
    ) {
        let mut d = Design::new("poked");
        let addr = d.input("addr", 5);
        let mem = d.memory("m", MEM_WORDS, 16);
        let ra = d.read_async(mem, addr);
        let rs = d.read_sync(mem, addr);
        d.expose_output("ra", ra);
        d.expose_output("rs", rs);

        let mut compiled = Sim::new(&d);
        let mut oracle = Sim::with_mode(&d, ExecMode::Interpreted);
        let mut stim = XorShift(seed);
        for (a, v) in pokes {
            compiled.poke_mem(mem, a, v & 0xFFFF);
            oracle.poke_mem(mem, a, v & 0xFFFF);
            let probe = stim.next() % MEM_WORDS as u64;
            compiled.set("addr", probe);
            oracle.set("addr", probe);
            prop_assert_eq!(compiled.get("ra"), oracle.get("ra"));
            compiled.step();
            oracle.step();
            prop_assert_eq!(compiled.get("rs"), oracle.get("rs"));
        }
        prop_assert_eq!(compiled.dump_mem(mem), oracle.dump_mem(mem));
    }
}
