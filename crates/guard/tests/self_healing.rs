//! End-to-end reliability acceptance tests: the protected runtime must
//! never hand a corrupt result to a client, and the unprotected runtime
//! must demonstrably do so under the same fault load — otherwise the
//! protection is either broken or untested.

use atlantis_apps::jobs::{JobSpec, WorkloadContext};
use atlantis_core::AtlantisSystem;
use atlantis_guard::{run_point, CampaignConfig};
use atlantis_runtime::{
    GuardConfig, JobRequest, Runtime, RuntimeConfig, RuntimeError, RuntimeStats,
};
use atlantis_simcore::SimDuration;

/// Serve `specs` under `guard` on `devices` boards and audit every
/// completed checksum against the fault-free software oracle.
/// Returns (completed, faulted, mismatches, stats).
fn serve_audited(
    devices: usize,
    specs: &[JobSpec],
    guard: GuardConfig,
) -> (u64, u64, u64, RuntimeStats) {
    let mut ctx = WorkloadContext::new();
    let oracle: Vec<u64> = specs.iter().map(|s| ctx.execute(s).checksum).collect();
    let system = AtlantisSystem::builder().with_acbs(devices).build();
    let config = RuntimeConfig {
        guard,
        queue_capacity: specs.len().max(1),
        ..RuntimeConfig::default()
    };
    let rt = Runtime::serve(system, config).unwrap();
    let handles: Vec<_> = specs
        .iter()
        .map(|&s| rt.submit(JobRequest::new(0, s)).unwrap())
        .collect();
    let (mut completed, mut faulted, mut mismatches) = (0u64, 0u64, 0u64);
    for (i, h) in handles.into_iter().enumerate() {
        match h.wait() {
            Ok(r) => {
                completed += 1;
                if r.checksum != oracle[i] {
                    mismatches += 1;
                }
            }
            Err(RuntimeError::Faulted { .. }) => faulted += 1,
            Err(e) => panic!("job {i} failed unexpectedly: {e}"),
        }
    }
    (completed, faulted, mismatches, rt.shutdown())
}

#[test]
fn protected_serving_never_leaks_a_corrupt_result() {
    // ~2k upsets/s against ~40 µs jobs: roughly one beat in twelve is
    // hit, so retries succeed and the runtime keeps making progress
    // (far above that the machine thrashes in repair — a regime the
    // bench sweep explores, not this guarantee).
    let cfg = CampaignConfig {
        devices: 2,
        jobs: 200,
        seed: 11,
        ..CampaignConfig::default()
    };
    let p = run_point(&cfg, 2_000.0);
    assert!(
        p.stats.upsets_injected > 0,
        "the campaign must actually inject faults ({} upsets)",
        p.stats.upsets_injected
    );
    assert_eq!(
        p.stats.silent_corruptions, 0,
        "protected serving leaked a corrupt execution to a client"
    );
    assert_eq!(
        p.mismatches, 0,
        "a returned checksum disagrees with the fault-free oracle"
    );
    assert_eq!(p.completed + p.faulted, cfg.jobs, "every job is answered");
    assert!(p.completed > 0, "the runtime still makes progress");
    assert!(
        p.stats.detected_corruptions > 0,
        "with this fault load the detectors must fire"
    );
    assert!(p.stats.detected_upsets > 0);
    assert!(p.stats.mean_detection_latency_us() > 0.0);
    let avail = p.stats.availability();
    assert!(
        avail > 0.0 && avail < 1.0,
        "availability under fault load is positive but below 1 ({avail})"
    );
    assert!(p.stats.mtbf().is_finite());
}

#[test]
fn unprotected_serving_demonstrably_corrupts_results() {
    // Same fault process, but every detector off: injection without
    // protection. Ground truth (corrupt executions that completed) and
    // the external audit (checksum vs oracle) must agree exactly.
    let cfg = CampaignConfig {
        devices: 1,
        jobs: 120,
        seed: 11,
        policy: GuardConfig::disabled(),
        ..CampaignConfig::default()
    };
    let p = run_point(&cfg, 50_000.0);
    assert!(p.stats.upsets_injected > 0);
    assert_eq!(p.completed, cfg.jobs, "nothing fails — it just lies");
    assert!(
        p.stats.silent_corruptions > 0,
        "an unprotected run under this fault load must corrupt results"
    );
    assert_eq!(
        p.mismatches, p.stats.silent_corruptions,
        "every ground-truth corrupt completion is visible to the oracle audit"
    );
    assert_eq!(p.stats.detected_corruptions, 0);
    assert_eq!(p.stats.guard_scrubs + p.stats.guard_repairs, 0);
}

#[test]
fn stealthy_upsets_evade_crc_scans_but_not_re_execution_votes() {
    // All-TRT workload: one design, so no task switch ever heals the
    // fabric behind the detectors' backs.
    let specs: Vec<JobSpec> = (0..60).map(JobSpec::trt).collect();

    // CRC-only protection is blind to CRC-stealthy upsets.
    let crc_only = GuardConfig {
        upset_rate: 12_000.0,
        stealth_fraction: 1.0,
        upset_seed: 3,
        crc_every: 1,
        ..GuardConfig::disabled()
    };
    let (completed, _, mismatches, stats) = serve_audited(1, &specs, crc_only);
    assert!(stats.upsets_injected > 0);
    assert_eq!(stats.upsets_stealthy, stats.upsets_injected);
    assert!(completed > 0);
    assert!(
        stats.silent_corruptions > 0 && mismatches > 0,
        "CRC scans alone must miss stealthy corruption ({} silent)",
        stats.silent_corruptions
    );

    // Re-execution voting on the RISC host catches what the CRC can't.
    // A stealthy remainder forces a full anti-stealth scrub (~36.6 ms
    // of virtual time), during which this rate breeds fresh upsets —
    // deliberate thrash: many jobs honestly fault, none lie.
    let voting = GuardConfig {
        vote_every: 1,
        max_retries: 2,
        retry_backoff: SimDuration::from_micros(50),
        ..crc_only
    };
    let vote_specs = &specs[..40];
    let (completed, faulted, mismatches, stats) = serve_audited(1, vote_specs, voting);
    assert!(stats.upsets_injected > 0);
    assert_eq!(
        stats.silent_corruptions, 0,
        "voting must catch every stealthy corruption"
    );
    assert_eq!(mismatches, 0);
    assert_eq!(completed + faulted, vote_specs.len() as u64);
    assert!(stats.detected_corruptions > 0, "the votes must fire");
}

#[test]
fn a_repeatedly_failing_device_is_quarantined_and_its_work_drained() {
    let specs: Vec<JobSpec> = (0..100).map(JobSpec::mixed).collect();
    let guard = GuardConfig {
        upset_rate: 6_000.0,
        upset_seed: 5,
        quarantine_after: 2,
        max_retries: 12,
        retry_backoff: SimDuration::from_micros(10),
        ..GuardConfig::protected()
    };
    let (completed, faulted, mismatches, stats) = serve_audited(2, &specs, guard);
    assert_eq!(
        stats.quarantined_devices, 1,
        "exactly one board is pulled — the last active board never is"
    );
    assert_eq!(completed + faulted, specs.len() as u64, "no job is lost");
    assert!(completed > 0, "healthy capacity keeps serving");
    assert_eq!(stats.silent_corruptions, 0);
    assert_eq!(mismatches, 0);
}

#[test]
fn scrub_overhead_scales_with_the_upset_rate() {
    let cfg = CampaignConfig {
        devices: 1,
        jobs: 100,
        seed: 2,
        ..CampaignConfig::default()
    };
    let reports = atlantis_guard::run_campaign(&CampaignConfig {
        upset_rates: vec![0.0, 4_000.0],
        ..cfg
    });
    assert_eq!(reports.len(), 2);
    let (clean, hot) = (&reports[0], &reports[1]);
    assert_eq!(clean.stats.upsets_injected, 0);
    assert!(clean.clean());
    assert!(hot.stats.upsets_injected > 0);
    assert!(hot.clean(), "protected points stay clean at every rate");
    assert!(
        hot.stats.scrub_time + hot.stats.check_time
            > clean.stats.scrub_time + clean.stats.check_time,
        "repair work must show up in the overhead accounting"
    );
    assert!(hot.stats.availability() < clean.stats.availability());
}
