//! Quarantine events as capacity deltas — the guard layer's interface
//! to the cluster's elastic capacity tracking.
//!
//! The threaded runtime's guard quarantines a board after repeated
//! dirty integrity events (DESIGN.md §11). At cluster scale the router
//! needs that same signal *ahead of time* on the deterministic virtual
//! clock: a shard whose board goes dark advertises less capacity and
//! the router re-weights live. [`QuarantinePlan`] precomputes, from the
//! same seeded Poisson upset model [`GuardState`](atlantis_runtime)
//! uses, the virtual instant each board accumulates enough upsets to be
//! quarantined, and replays those instants as ordered
//! [`CapacityDelta`]s while the cluster clock advances.

use atlantis_simcore::rng::WorkloadRng;
use atlantis_simcore::{SimDuration, SimTime};

/// Seeded degradation model for one shard's boards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationConfig {
    /// Single-event upsets per second of virtual time, per board.
    pub upset_rate: f64,
    /// A board is quarantined at its N-th upset — the same
    /// repeated-dirty threshold the threaded guard applies
    /// ([`GuardConfig::quarantine_after`](atlantis_runtime::GuardConfig)).
    pub quarantine_after: u32,
    /// Seed of the upset arrival process.
    pub seed: u64,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        DegradationConfig {
            upset_rate: 0.0,
            quarantine_after: 3,
            seed: 0xA71A_5EED,
        }
    }
}

impl DegradationConfig {
    /// Whether the model injects anything at all.
    pub fn is_active(&self) -> bool {
        self.upset_rate > 0.0
    }
}

/// One board dropping out of a shard's advertised capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityDelta {
    /// Virtual instant the quarantine takes effect.
    pub at: SimTime,
    /// The shard-local board index quarantined.
    pub board: usize,
}

/// The precomputed quarantine schedule for one shard: each board's
/// N-th-upset instant, replayed in time order as the clock advances.
#[derive(Debug, Clone)]
pub struct QuarantinePlan {
    events: Vec<CapacityDelta>,
    cursor: usize,
}

impl QuarantinePlan {
    /// Build the schedule for `boards` boards. `stream` decorrelates
    /// shards sharing one [`DegradationConfig`] (pass the shard index);
    /// each board then draws from its own forked RNG stream, mirroring
    /// the per-device streams of the threaded guard.
    pub fn new(cfg: &DegradationConfig, boards: usize, stream: u64) -> Self {
        let mut events = Vec::new();
        if cfg.is_active() && cfg.quarantine_after > 0 {
            let root =
                WorkloadRng::seed_from_u64(cfg.seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            for board in 0..boards {
                let mut rng = root.fork(board as u64 + 1);
                let mut at = SimTime::ZERO;
                for _ in 0..cfg.quarantine_after {
                    at += SimDuration::from_secs_f64(rng.exp_gap(cfg.upset_rate));
                }
                events.push(CapacityDelta { at, board });
            }
            // Replay order must be deterministic: time, then board.
            events.sort_by_key(|e| (e.at, e.board));
        }
        QuarantinePlan { events, cursor: 0 }
    }

    /// A plan that never quarantines anything.
    pub fn inactive() -> Self {
        QuarantinePlan {
            events: Vec::new(),
            cursor: 0,
        }
    }

    /// The next scheduled quarantine instant, if any remain.
    pub fn peek_next(&self) -> Option<SimTime> {
        self.events.get(self.cursor).map(|e| e.at)
    }

    /// Drain every delta scheduled at or before `now`, in time order.
    pub fn pending_until(&mut self, now: SimTime) -> Vec<CapacityDelta> {
        let start = self.cursor;
        while self.cursor < self.events.len() && self.events[self.cursor].at <= now {
            self.cursor += 1;
        }
        self.events[start..self.cursor].to_vec()
    }

    /// Deltas not yet replayed.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(rate: f64) -> DegradationConfig {
        DegradationConfig {
            upset_rate: rate,
            quarantine_after: 3,
            seed: 42,
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = QuarantinePlan::new(&cfg(100.0), 4, 0);
        let b = QuarantinePlan::new(&cfg(100.0), 4, 0);
        assert_eq!(a.events, b.events);
        assert_eq!(a.events.len(), 4);
    }

    #[test]
    fn streams_decorrelate_shards() {
        let a = QuarantinePlan::new(&cfg(100.0), 4, 0);
        let b = QuarantinePlan::new(&cfg(100.0), 4, 1);
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn higher_rate_quarantines_sooner() {
        let slow = QuarantinePlan::new(&cfg(10.0), 8, 0);
        let fast = QuarantinePlan::new(&cfg(10_000.0), 8, 0);
        let first = |p: &QuarantinePlan| p.events[0].at;
        assert!(first(&fast) < first(&slow));
    }

    #[test]
    fn pending_drains_in_time_order_exactly_once() {
        let mut p = QuarantinePlan::new(&cfg(1000.0), 6, 3);
        let all = p.events.clone();
        assert!(all.windows(2).all(|w| w[0].at <= w[1].at), "sorted");
        let mid = all[2].at;
        let early = p.pending_until(mid);
        assert_eq!(early, all[..3].to_vec());
        assert_eq!(p.remaining(), 3);
        assert_eq!(p.peek_next(), Some(all[3].at));
        let late = p.pending_until(SimTime::ZERO + SimDuration::from_secs(3600));
        assert_eq!(late, all[3..].to_vec());
        assert_eq!(p.remaining(), 0);
        assert!(p
            .pending_until(SimTime::ZERO + SimDuration::from_secs(7200))
            .is_empty());
    }

    #[test]
    fn inactive_plans_schedule_nothing() {
        let mut p = QuarantinePlan::new(&cfg(0.0), 4, 0);
        assert_eq!(p.peek_next(), None);
        assert!(p
            .pending_until(SimTime::ZERO + SimDuration::from_secs(10))
            .is_empty());
        assert_eq!(QuarantinePlan::inactive().remaining(), 0);
    }
}
