//! atlantis-guard — fault-injection campaigns over the self-healing
//! serving runtime.
//!
//! The paper's configuration interface (§2) lists *read-back and test*
//! alongside full and partial configuration: the host can read a
//! device's configuration memory back and compare it against the golden
//! image. On the real machine that facility existed to catch single
//! event upsets (SEUs) — radiation-induced bit flips in configuration
//! SRAM — which matter because ATLANTIS was built for detector
//! environments where a corrupted LUT silently computes wrong answers
//! for hours.
//!
//! This crate closes the loop on that facility. It drives seeded SEU
//! campaigns against the simulated machine while the runtime serves a
//! live workload, and measures the reliability envelope of the
//! detection/repair policy in
//! [`GuardConfig`]:
//!
//! * **Campaign driver** — [`run_point`] serves a deterministic job mix
//!   under one upset rate and audits every returned checksum against a
//!   fault-free software oracle, so *silent corruption* is measured
//!   end to end, not inferred from internal counters.
//! * **Rate sweep** — [`run_campaign`] repeats the same workload across
//!   a list of upset rates (events per second of device busy time),
//!   recording detection latency, silent-corruption and retry counts,
//!   scrub overhead, and availability at each point.
//!
//! Campaigns are deterministic in virtual time: upset arrivals are a
//! seeded Poisson process over each device's virtual clock, so a fixed
//! [`CampaignConfig::seed`] replays the same fault pattern regardless
//! of host scheduling.
//!
//! ```no_run
//! use atlantis_guard::CampaignConfig;
//!
//! let mut cfg = CampaignConfig::default();
//! cfg.jobs = 200;
//! for p in atlantis_guard::run_campaign(&cfg) {
//!     println!(
//!         "{:>8.0}/s: {} silent, {:.1}% available",
//!         p.upset_rate,
//!         p.stats.silent_corruptions,
//!         p.stats.availability() * 100.0
//!     );
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capacity;

pub use capacity::{CapacityDelta, DegradationConfig, QuarantinePlan};

use atlantis_apps::jobs::{JobSpec, WorkloadContext};
use atlantis_core::AtlantisSystem;
use atlantis_runtime::{
    GuardConfig, JobRequest, Runtime, RuntimeConfig, RuntimeError, RuntimeStats,
};

/// One fault-injection campaign: a fixed workload served under a fixed
/// protection policy, swept across upset rates.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// ACB devices in the simulated machine.
    pub devices: usize,
    /// Jobs served per campaign point.
    pub jobs: u64,
    /// Upset rates to sweep (events per second of device busy time).
    /// `0.0` is the fault-free baseline.
    pub upset_rates: Vec<f64>,
    /// Fraction of upsets injected stealthily (frame CRC refreshed, so
    /// CRC scans can't see them — only deep scrubs and votes can).
    pub stealth_fraction: f64,
    /// Seed for both the job mix and the upset arrival process.
    pub seed: u64,
    /// The protection policy under test; each point overrides its
    /// `upset_rate`, `stealth_fraction`, and `upset_seed` from this
    /// config.
    pub policy: GuardConfig,
    /// Base runtime configuration. The queue capacity is raised to hold
    /// the whole campaign so backpressure never rejects a campaign job.
    pub runtime: RuntimeConfig,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            devices: 2,
            jobs: 400,
            upset_rates: vec![0.0, 500.0, 2000.0, 8000.0],
            stealth_fraction: 0.0,
            seed: 7,
            policy: GuardConfig::protected(),
            runtime: RuntimeConfig::default(),
        }
    }
}

impl CampaignConfig {
    /// The `i`-th job of the campaign's deterministic mixed workload.
    pub fn spec(&self, i: u64) -> JobSpec {
        JobSpec::mixed(self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(i))
    }

    /// Fault-free reference checksums for every campaign job, computed
    /// through the deterministic software model — the oracle campaign
    /// results are audited against.
    pub fn oracle(&self) -> Vec<u64> {
        let mut ctx = WorkloadContext::new();
        (0..self.jobs)
            .map(|i| ctx.execute(&self.spec(i)).checksum)
            .collect()
    }

    fn guard_at(&self, upset_rate: f64) -> GuardConfig {
        GuardConfig {
            upset_rate,
            stealth_fraction: self.stealth_fraction,
            upset_seed: self.seed,
            ..self.policy
        }
    }
}

/// The measured outcome of one campaign point (one upset rate).
#[derive(Debug, Clone)]
pub struct PointReport {
    /// The upset rate this point was served under.
    pub upset_rate: f64,
    /// Jobs that completed with a result.
    pub completed: u64,
    /// Jobs answered with [`RuntimeError::Faulted`] after exhausting
    /// their retry budget.
    pub faulted: u64,
    /// Completed jobs whose checksum disagrees with the fault-free
    /// oracle — corruption that *reached a client*. The end-to-end
    /// ground truth the protection policy is judged by.
    pub mismatches: u64,
    /// The runtime's final statistics for this point.
    pub stats: RuntimeStats,
}

impl PointReport {
    /// Whether every answered job was either correct or honestly
    /// failed — no corrupt result reached a client.
    pub fn clean(&self) -> bool {
        self.mismatches == 0 && self.stats.silent_corruptions == 0
    }
}

/// Serve one campaign point at `upset_rate`, auditing results against
/// `oracle` (as produced by [`CampaignConfig::oracle`]).
pub fn run_point_with_oracle(cfg: &CampaignConfig, upset_rate: f64, oracle: &[u64]) -> PointReport {
    assert_eq!(oracle.len() as u64, cfg.jobs, "oracle covers every job");
    let system = AtlantisSystem::builder().with_acbs(cfg.devices).build();
    let rt_cfg = RuntimeConfig {
        guard: cfg.guard_at(upset_rate),
        queue_capacity: cfg.runtime.queue_capacity.max(cfg.jobs as usize),
        ..cfg.runtime
    };
    let rt = Runtime::serve(system, rt_cfg).expect("campaign system has devices");
    let handles: Vec<_> = (0..cfg.jobs)
        .map(|i| {
            rt.submit(JobRequest::new((i % 4) as u32, cfg.spec(i)))
                .expect("campaign queue holds the whole workload")
        })
        .collect();
    let mut completed = 0u64;
    let mut faulted = 0u64;
    let mut mismatches = 0u64;
    for (i, h) in handles.into_iter().enumerate() {
        match h.wait() {
            Ok(r) => {
                completed += 1;
                if r.checksum != oracle[i] {
                    mismatches += 1;
                }
            }
            Err(RuntimeError::Faulted { .. }) => faulted += 1,
            Err(e) => panic!("campaign job {i} failed unexpectedly: {e}"),
        }
    }
    let stats = rt.shutdown();
    PointReport {
        upset_rate,
        completed,
        faulted,
        mismatches,
        stats,
    }
}

/// Serve one campaign point at `upset_rate`, computing the fault-free
/// oracle first. Prefer [`run_campaign`] (or computing the oracle once
/// via [`CampaignConfig::oracle`]) when sweeping several rates.
pub fn run_point(cfg: &CampaignConfig, upset_rate: f64) -> PointReport {
    run_point_with_oracle(cfg, upset_rate, &cfg.oracle())
}

/// Sweep the campaign's upset rates, reusing one fault-free oracle.
pub fn run_campaign(cfg: &CampaignConfig) -> Vec<PointReport> {
    let oracle = cfg.oracle();
    cfg.upset_rates
        .iter()
        .map(|&rate| run_point_with_oracle(cfg, rate, &oracle))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_oracle_is_deterministic_and_job_indexed() {
        let cfg = CampaignConfig {
            jobs: 12,
            ..CampaignConfig::default()
        };
        let a = cfg.oracle();
        let b = cfg.oracle();
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        // Different seeds give a different workload.
        let other = CampaignConfig {
            jobs: 12,
            seed: 8,
            ..CampaignConfig::default()
        };
        assert_ne!(a, other.oracle());
    }

    #[test]
    fn a_fault_free_point_matches_the_oracle_exactly() {
        let cfg = CampaignConfig {
            devices: 1,
            jobs: 24,
            ..CampaignConfig::default()
        };
        let p = run_point(&cfg, 0.0);
        assert_eq!(p.completed, 24);
        assert_eq!(p.faulted, 0);
        assert!(p.clean(), "fault-free serving must match the oracle");
        assert_eq!(p.stats.upsets_injected, 0);
        assert_eq!(p.stats.mtbf(), f64::INFINITY);
    }
}
