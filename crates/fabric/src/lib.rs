//! # `atlantis-fabric` — FPGA device models
//!
//! The ATLANTIS boards carry two FPGA families (paper §2): the **Lucent
//! ORCA 3T125** on the computing board (“an average gate count of
//! approximately 186k per chip”, 422 I/O signals used per chip) and the
//! **Xilinx Virtex XCV600** on the I/O board. The paper lists the features
//! that drove the device choice: high I/O pin count, ~100k-gate complexity,
//! **read-back/test support** and **partial reconfiguration** (“of great
//! interest for co-processing applications involving hardware task
//! switches”).
//!
//! This crate models exactly those properties:
//!
//! * [`Device`] — capacity model (system gates, flip-flops, block-RAM bits,
//!   user I/O, configuration frames) for the parts used in the project and
//!   its predecessors,
//! * [`fit()`](fit()) — fits an `atlantis-chdl` netlist onto a device, rejecting
//!   designs that exceed any budget,
//! * [`Bitstream`] — deterministic frame-based configuration images with
//!   per-frame CRCs, derived from the netlist structure,
//! * [`Fpga`] — a configurable part: full configuration, **partial
//!   reconfiguration** (only the differing frames are rewritten, enabling
//!   fast hardware task switches), and **read-back**,
//! * [`ProgrammableClock`] — the software-programmable clocks, “a few MHz
//!   up to at least 80 MHz” (§2).
//!
//! A configured [`Fpga`] owns a live [`Sim`](atlantis_chdl::Sim) of its
//! design, so the host application drives the simulated hardware exactly
//! as the CHDL workflow prescribes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitstream;
pub mod clock;
pub mod config;
pub mod device;
pub mod fit;
pub mod par;
pub mod scrub;

pub use bitstream::{Bitstream, Frame, PartialBitstream};
pub use clock::ProgrammableClock;
pub use config::{ConfigError, Fpga};
pub use device::Device;
pub use fit::{fit, FitError, FitReport, FittedDesign};
pub use par::run_cycles_parallel;
pub use scrub::{CrcCheck, ScrubReport, Upset};

/// Commonly used re-exports.
pub mod prelude {
    pub use crate::bitstream::Bitstream;
    pub use crate::clock::ProgrammableClock;
    pub use crate::config::Fpga;
    pub use crate::device::Device;
    pub use crate::fit::{fit, FittedDesign};
}
