//! Parallel stepping of independent FPGA devices.
//!
//! The ATLANTIS boards carry several FPGAs that run independent designs
//! between I/O exchanges (four ORCAs on the computing board, two Virtex
//! parts on the I/O board). Their simulators share no state, so a batch of
//! design-clock cycles can advance every device concurrently — one
//! [`Sim::run_batch`](atlantis_chdl::Sim::run_batch) per device, fanned
//! out with `rayon`.
//!
//! Parallel stepping is **cycle-identical** to stepping each device in
//! sequence: each simulator is deterministic and touches only its own
//! state, so the schedule cannot change results (asserted by the tests
//! below and used by the ACB/AIB board models).

use crate::config::{ConfigError, Fpga};
use atlantis_simcore::SimDuration;
use rayon::prelude::*;

/// Advance every configured FPGA by `n` design-clock cycles, stepping the
/// devices concurrently. Returns one result per device, in order: the
/// virtual time consumed at that device's clock, or
/// [`ConfigError::NotConfigured`] for devices with no design loaded
/// (which are left untouched, exactly as sequential
/// [`Fpga::run_cycles`] would).
pub fn run_cycles_parallel(fpgas: &mut [Fpga], n: u64) -> Vec<Result<SimDuration, ConfigError>> {
    fpgas.par_iter_mut().for_each(|fpga| {
        if let Some(sim) = fpga.sim_mut() {
            sim.run_batch(n);
        }
    });
    fpgas
        .iter()
        .map(|fpga| {
            if fpga.is_configured() {
                Ok(fpga.clock().cycles(n))
            } else {
                Err(ConfigError::NotConfigured)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::fit::fit;
    use atlantis_chdl::Design;

    fn lfsr_design(taps: u64) -> Design {
        let mut d = Design::new(format!("lfsr_{taps}"));
        let q = d.reg_feedback("q", 16, |d, q| {
            let hi = d.slice(q, 15, 1);
            let shifted = d.slice(q, 0, 15);
            let fb = d.lit(taps & 0x7FFF, 15);
            let masked = d.and(shifted, fb);
            let step = d.concat(masked, hi);
            let one = d.lit(1, 16);
            d.add(step, one)
        });
        d.expose_output("q", q);
        d
    }

    fn configured(taps: u64) -> Fpga {
        let dev = Device::orca_3t125();
        let mut fpga = Fpga::new(dev.clone());
        fpga.configure(&fit(&lfsr_design(taps), &dev).unwrap())
            .unwrap();
        fpga
    }

    #[test]
    fn parallel_matches_sequential_cycle_for_cycle() {
        let mut par: Vec<Fpga> = (1..=4).map(|t| configured(t * 7)).collect();
        let mut seq: Vec<Fpga> = (1..=4).map(|t| configured(t * 7)).collect();

        let par_times = run_cycles_parallel(&mut par, 10_000);
        let seq_times: Vec<_> = seq.iter_mut().map(|f| f.run_cycles(10_000)).collect();
        assert_eq!(par_times, seq_times);

        for (p, s) in par.iter_mut().zip(seq.iter_mut()) {
            assert_eq!(
                p.sim_mut().unwrap().get("q"),
                s.sim_mut().unwrap().get("q"),
                "parallel stepping must be cycle-identical"
            );
            assert_eq!(p.sim_mut().unwrap().cycle(), 10_000);
        }
    }

    #[test]
    fn unconfigured_devices_are_reported_not_stepped() {
        let mut fpgas = vec![configured(3), Fpga::new(Device::orca_3t125())];
        let results = run_cycles_parallel(&mut fpgas, 100);
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(ConfigError::NotConfigured));
        assert_eq!(fpgas[0].sim_mut().unwrap().cycle(), 100);
        assert!(fpgas[1].sim_mut().is_none());
    }

    #[test]
    fn empty_slice_is_fine() {
        assert!(run_cycles_parallel(&mut [], 5).is_empty());
    }
}
