//! Capacity models of the FPGA parts used across the ATLANTIS project and
//! its predecessors.
//!
//! Capacities follow the vendors' late-1990s data sheets, with the paper's
//! own figures taking precedence where the two differ (the paper quotes an
//! average of 186k usable gates and 422 used I/O signals for the ORCA
//! 3T125). “System gates” is the marketing unit of the era; our netlist
//! cost model (see [`atlantis_chdl::Design::stats`]) is calibrated to the
//! same unit.

use atlantis_simcore::{Bandwidth, Frequency, SimDuration};
use serde::{Deserialize, Serialize};

/// A static description of one FPGA part.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Device {
    /// Part name, e.g. `"ORCA 3T125"`.
    pub name: String,
    /// Usable system gates.
    pub system_gates: u64,
    /// Flip-flops available in the logic fabric.
    pub flip_flops: u64,
    /// On-chip RAM capacity in bits (PFU/BlockRAM).
    pub block_ram_bits: u64,
    /// User I/O pins.
    pub user_io: u32,
    /// Number of configuration frames.
    pub config_frames: u32,
    /// Bytes per configuration frame.
    pub frame_bytes: u32,
    /// Configuration-port byte clock (frames stream in at one byte per
    /// cycle of this clock, as through a CPLD-driven serial/SelectMAP port).
    pub config_clock: Frequency,
    /// Whether the part supports partial reconfiguration.
    pub partial_reconfig: bool,
    /// Whether the part supports configuration read-back.
    pub readback: bool,
    /// Maximum supported design clock.
    pub max_clock: Frequency,
}

impl Device {
    /// The Lucent ORCA 3T125 used on the ACB (§2: ~186k average usable
    /// gates, 422 I/O signals used per chip, read-back and partial
    /// reconfiguration support).
    pub fn orca_3t125() -> Device {
        Device {
            name: "ORCA 3T125".to_string(),
            system_gates: 186_000,
            flip_flops: 10_368,      // 1296 PFUs × 8 FFs
            block_ram_bits: 165_888, // PFU LUT memory mode
            user_io: 432,
            config_frames: 856,
            frame_bytes: 428,
            config_clock: Frequency::from_mhz(10),
            partial_reconfig: true,
            readback: true,
            max_clock: Frequency::from_mhz(80),
        }
    }

    /// The Xilinx Virtex XCV600 used in pairs on the AIB (§2.2).
    pub fn virtex_xcv600() -> Device {
        Device {
            name: "Virtex XCV600".to_string(),
            system_gates: 661_000,
            flip_flops: 13_824,     // 6912 slices × 2 FFs
            block_ram_bits: 98_304, // 24 BlockRAMs × 4096 bits
            user_io: 512,
            config_frames: 1_752,
            frame_bytes: 532,
            config_clock: Frequency::from_mhz(33),
            partial_reconfig: true,
            readback: true,
            max_clock: Frequency::from_mhz(100),
        }
    }

    /// The AIB's paired XCV600s presented as one logical part (§2.2: the
    /// interface board carries two Virtex chips side by side). Capacity
    /// doubles; configuration streams both chips' frames through the one
    /// 33 MHz port, so a full load costs twice an XCV600's — the trade a
    /// cluster scheduler must price when it considers moving work onto
    /// Virtex fabric: faster design clock, dearer design switch.
    pub fn virtex_aib_pair() -> Device {
        let chip = Device::virtex_xcv600();
        Device {
            name: "Virtex AIB pair (2× XCV600)".to_string(),
            system_gates: 2 * chip.system_gates,
            flip_flops: 2 * chip.flip_flops,
            block_ram_bits: 2 * chip.block_ram_bits,
            user_io: 2 * chip.user_io,
            config_frames: 2 * chip.config_frames,
            ..chip
        }
    }

    /// The Xilinx XC4013E of the Enable++ generation — kept for historical
    /// speed-up comparisons (§3.1 cites Enable-era measurements).
    pub fn xc4013e() -> Device {
        Device {
            name: "XC4013E".to_string(),
            system_gates: 13_000,
            flip_flops: 1_536,
            block_ram_bits: 18_432,
            user_io: 192,
            config_frames: 316,
            frame_bytes: 98,
            config_clock: Frequency::from_mhz(8),
            partial_reconfig: false,
            readback: true,
            max_clock: Frequency::from_mhz(40),
        }
    }

    /// Total configuration image size in bytes.
    pub fn bitstream_bytes(&self) -> u64 {
        self.config_frames as u64 * self.frame_bytes as u64
    }

    /// Time for a full configuration (all frames streamed through the
    /// configuration port).
    pub fn full_config_time(&self) -> SimDuration {
        self.config_clock.cycles(self.bitstream_bytes())
    }

    /// Time to write `frames` configuration frames (partial reconfig).
    pub fn frame_config_time(&self, frames: u32) -> SimDuration {
        self.config_clock
            .cycles(frames as u64 * self.frame_bytes as u64)
    }

    /// Effective configuration bandwidth.
    pub fn config_bandwidth(&self) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.config_clock.as_hz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orca_matches_paper_figures() {
        let d = Device::orca_3t125();
        // §2.1: “an average gate count of approximately 186k per chip”.
        assert_eq!(d.system_gates, 186_000);
        // §2.1: 422 I/O signals used per FPGA must fit the package.
        assert!(d.user_io >= 422);
        // §2: read-back and partial reconfiguration drove the choice.
        assert!(d.partial_reconfig);
        assert!(d.readback);
        // §2: clocks programmable up to at least 80 MHz.
        assert!(d.max_clock >= Frequency::from_mhz(80));
    }

    #[test]
    fn acb_matrix_reaches_744k_gates() {
        // §2.1: 2×2 ORCA matrix “sums up to 744k FPGA gates”.
        let d = Device::orca_3t125();
        assert_eq!(4 * d.system_gates, 744_000);
    }

    #[test]
    fn virtex_is_larger_than_orca() {
        let o = Device::orca_3t125();
        let v = Device::virtex_xcv600();
        assert!(v.system_gates > o.system_gates);
        assert!(v.user_io >= o.user_io);
    }

    #[test]
    fn config_time_scales_with_frames() {
        let d = Device::orca_3t125();
        let full = d.full_config_time();
        let one = d.frame_config_time(1);
        assert_eq!(one * d.config_frames as u64, full);
        // A 10 MHz byte port: 856 × 428 bytes ≈ 366 kB ⇒ ~36.6 ms.
        assert!((full.as_millis_f64() - 36.6).abs() < 0.1, "{full}");
    }

    #[test]
    fn frame_time_invariants_hold_on_every_part() {
        // Writing every frame one at a time must cost exactly a full
        // configuration, and writing nothing must cost nothing — the
        // identities the runtime's reconfiguration accounting leans on.
        for d in [
            Device::orca_3t125(),
            Device::virtex_xcv600(),
            Device::virtex_aib_pair(),
            Device::xc4013e(),
        ] {
            assert_eq!(
                d.full_config_time(),
                d.frame_config_time(d.config_frames),
                "{}: full != per-frame sum",
                d.name
            );
            assert_eq!(
                d.frame_config_time(0),
                SimDuration::ZERO,
                "{}: zero frames must be free",
                d.name
            );
        }
    }

    #[test]
    fn aib_pair_doubles_capacity_and_config_cost() {
        let chip = Device::virtex_xcv600();
        let pair = Device::virtex_aib_pair();
        assert_eq!(pair.system_gates, 2 * chip.system_gates);
        assert_eq!(pair.block_ram_bits, 2 * chip.block_ram_bits);
        assert_eq!(pair.bitstream_bytes(), 2 * chip.bitstream_bytes());
        assert!(pair.full_config_time() > chip.full_config_time());
        assert_eq!(pair.max_clock, chip.max_clock);
    }

    #[test]
    fn enable_era_part_is_small() {
        let d = Device::xc4013e();
        assert!(d.system_gates < 20_000);
        assert!(!d.partial_reconfig);
    }
}
