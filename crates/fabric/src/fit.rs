//! Netlist-to-device fitting.
//!
//! The fitter is the reproduction's stand-in for the vendor place-and-route
//! flow: it checks an `atlantis-chdl` netlist against a [`Device`]'s
//! capacity model and, on success, yields a [`FittedDesign`] from which a
//! configuration [`Bitstream`] can be produced. Utilization reports use the
//! same “system gates” unit as the paper (“744k FPGA gates” per ACB).

use crate::bitstream::Bitstream;
use crate::device::Device;
use atlantis_chdl::{Design, NetlistStats};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a design does not fit a device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// The design needs more logic gates than the device provides.
    Gates {
        /// Gates required by the netlist.
        need: u64,
        /// Gates available on the device.
        have: u64,
    },
    /// The design needs more flip-flops than the device provides.
    FlipFlops {
        /// Flip-flops required.
        need: u64,
        /// Flip-flops available.
        have: u64,
    },
    /// The design needs more on-chip RAM than the device provides.
    RamBits {
        /// RAM bits required.
        need: u64,
        /// RAM bits available.
        have: u64,
    },
    /// The design needs more I/O pins than the device provides.
    IoPins {
        /// Pins required.
        need: u64,
        /// Pins available.
        have: u64,
    },
    /// The structural image exceeds the configuration address space.
    BitstreamOverflow {
        /// Bytes required.
        need: u64,
        /// Bytes available.
        have: u64,
    },
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::Gates { need, have } => write!(f, "needs {need} gates, device has {have}"),
            FitError::FlipFlops { need, have } => {
                write!(f, "needs {need} flip-flops, device has {have}")
            }
            FitError::RamBits { need, have } => {
                write!(f, "needs {need} RAM bits, device has {have}")
            }
            FitError::IoPins { need, have } => {
                write!(f, "needs {need} I/O pins, device has {have}")
            }
            FitError::BitstreamOverflow { need, have } => {
                write!(
                    f,
                    "structure needs {need} bitstream bytes, device has {have}"
                )
            }
        }
    }
}

impl std::error::Error for FitError {}

/// Resource utilization report of a fitted design.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FitReport {
    /// Gates used.
    pub gates: u64,
    /// Flip-flops used.
    pub flip_flops: u64,
    /// RAM bits used.
    pub ram_bits: u64,
    /// I/O pins used.
    pub io_pins: u64,
    /// Gate utilization as a fraction of the device (0–1).
    pub gate_utilization: f64,
    /// Pin utilization as a fraction of the device (0–1).
    pub pin_utilization: f64,
}

/// A design successfully fitted onto a device.
#[derive(Debug, Clone)]
pub struct FittedDesign {
    design: Design,
    device: Device,
    stats: NetlistStats,
}

impl FittedDesign {
    /// The fitted netlist.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// The target device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Raw netlist statistics.
    pub fn stats(&self) -> NetlistStats {
        self.stats
    }

    /// Utilization report.
    pub fn report(&self) -> FitReport {
        FitReport {
            gates: self.stats.gates,
            flip_flops: self.stats.flip_flops,
            ram_bits: self.stats.ram_bits,
            io_pins: self.stats.io_pins,
            gate_utilization: self.stats.gates as f64 / self.device.system_gates as f64,
            pin_utilization: self.stats.io_pins as f64 / self.device.user_io as f64,
        }
    }

    /// Generate the configuration image for this design.
    pub fn bitstream(&self) -> Bitstream {
        Bitstream::from_structure(&self.device, &self.design.structural_bytes())
    }
}

/// Fit `design` onto `device`, checking every capacity budget.
pub fn fit(design: &Design, device: &Device) -> Result<FittedDesign, FitError> {
    let stats = design.stats();
    if stats.gates > device.system_gates {
        return Err(FitError::Gates {
            need: stats.gates,
            have: device.system_gates,
        });
    }
    if stats.flip_flops > device.flip_flops {
        return Err(FitError::FlipFlops {
            need: stats.flip_flops,
            have: device.flip_flops,
        });
    }
    if stats.ram_bits > device.block_ram_bits {
        return Err(FitError::RamBits {
            need: stats.ram_bits,
            have: device.block_ram_bits,
        });
    }
    if stats.io_pins > device.user_io as u64 {
        return Err(FitError::IoPins {
            need: stats.io_pins,
            have: device.user_io as u64,
        });
    }
    let structure_len = design.structural_bytes().len() as u64;
    if structure_len > device.bitstream_bytes() {
        return Err(FitError::BitstreamOverflow {
            need: structure_len,
            have: device.bitstream_bytes(),
        });
    }
    Ok(FittedDesign {
        design: design.clone(),
        device: device.clone(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_design() -> Design {
        let mut d = Design::new("small");
        let a = d.input("a", 8);
        let b = d.input("b", 8);
        let s = d.add(a, b);
        let r = d.reg("r", s);
        d.expose_output("r", r);
        d
    }

    #[test]
    fn small_design_fits_orca() {
        let f = fit(&small_design(), &Device::orca_3t125()).expect("fits");
        let rep = f.report();
        assert!(rep.gate_utilization < 0.01);
        assert_eq!(rep.io_pins, 24);
        assert!(rep.pin_utilization > 0.0);
    }

    #[test]
    fn too_many_pins_rejected() {
        let mut d = Design::new("pins");
        // 10 × 64-bit ports = 640 pins > 432 on the ORCA.
        for i in 0..10 {
            let x = d.input(format!("x{i}"), 64);
            d.expose_output(format!("y{i}"), x);
        }
        let err = fit(&d, &Device::orca_3t125()).unwrap_err();
        assert!(matches!(
            err,
            FitError::IoPins {
                need: 1280,
                have: 432
            }
        ));
    }

    #[test]
    fn too_much_ram_rejected() {
        let mut d = Design::new("ram");
        d.memory("big", 1 << 16, 64); // 4 Mbit ≫ on-chip capacity
        let err = fit(&d, &Device::orca_3t125()).unwrap_err();
        assert!(matches!(err, FitError::RamBits { .. }));
    }

    #[test]
    fn too_many_gates_rejected() {
        let mut d = Design::new("gates");
        let mut acc = d.input("a", 64);
        // Each 64-bit multiplier costs 6·64² = 24576 gates; ten exceed 186k.
        for i in 0..10 {
            let k = d.lit(i + 1, 64);
            acc = d.mul(acc, k);
        }
        d.expose_output("out", acc);
        let err = fit(&d, &Device::orca_3t125()).unwrap_err();
        assert!(matches!(err, FitError::Gates { .. }), "{err:?}");
    }

    #[test]
    fn same_design_fits_larger_part() {
        let mut d = Design::new("gates");
        let mut acc = d.input("a", 64);
        for i in 0..10 {
            let k = d.lit(i + 1, 64);
            acc = d.mul(acc, k);
        }
        d.expose_output("out", acc);
        assert!(fit(&d, &Device::orca_3t125()).is_err());
        assert!(
            fit(&d, &Device::virtex_xcv600()).is_ok(),
            "bigger part accepts it"
        );
    }

    #[test]
    fn bitstream_generation_from_fit() {
        let f = fit(&small_design(), &Device::orca_3t125()).unwrap();
        let bs = f.bitstream();
        assert!(bs.verify());
        assert_eq!(bs.device_name, "ORCA 3T125");
    }

    #[test]
    fn fit_report_is_deterministic() {
        let f1 = fit(&small_design(), &Device::orca_3t125()).unwrap();
        let f2 = fit(&small_design(), &Device::orca_3t125()).unwrap();
        assert_eq!(f1.stats(), f2.stats());
        assert_eq!(f1.bitstream(), f2.bitstream());
    }
}
