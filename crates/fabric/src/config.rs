//! The configurable FPGA: full configuration, partial reconfiguration and
//! read-back.
//!
//! The paper singles out partial reconfiguration as “of great interest for
//! co-processing applications involving hardware task switches” (§2): a
//! coprocessor can swap algorithms without paying a full-device
//! configuration. [`Fpga`] models both paths with realistic virtual-time
//! cost (frames × frame time at the configuration clock) and gives the
//! host a live [`Sim`] of the configured design to drive.

use crate::bitstream::Bitstream;
use crate::clock::ProgrammableClock;
use crate::device::Device;
use crate::fit::FittedDesign;
use atlantis_chdl::{LaneGroup, Sim};
use atlantis_simcore::{Frequency, SimDuration};
use std::fmt;

/// Errors from configuration operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The fitted design targets a different part than this FPGA.
    DeviceMismatch {
        /// This FPGA's part name.
        expected: String,
        /// The design's target part name.
        got: String,
    },
    /// Operation requires a configured device.
    NotConfigured,
    /// This part does not support partial reconfiguration.
    PartialUnsupported,
    /// This part does not support configuration read-back.
    ReadbackUnsupported,
    /// The requested design clock exceeds the device's maximum.
    ClockTooFast {
        /// Requested frequency.
        requested: Frequency,
        /// Device maximum.
        max: Frequency,
    },
    /// An upset-injection coordinate lies outside the configuration
    /// image — frame or byte index past the device's geometry.
    UpsetOutOfRange {
        /// Requested frame index.
        frame: u32,
        /// Requested byte index within the frame.
        byte: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::DeviceMismatch { expected, got } => {
                write!(f, "design fitted for {got}, FPGA is {expected}")
            }
            ConfigError::NotConfigured => write!(f, "FPGA is not configured"),
            ConfigError::PartialUnsupported => {
                write!(f, "device does not support partial reconfiguration")
            }
            ConfigError::ReadbackUnsupported => write!(f, "device does not support read-back"),
            ConfigError::ClockTooFast { requested, max } => {
                write!(f, "requested {requested} exceeds device maximum {max}")
            }
            ConfigError::UpsetOutOfRange { frame, byte } => {
                write!(
                    f,
                    "upset target frame {frame} byte {byte} outside the config image"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[derive(Debug)]
struct Loaded {
    fitted: FittedDesign,
    bitstream: Bitstream,
    sim: Sim,
}

/// Lifetime statistics of one FPGA's configuration port.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfigStats {
    /// Full configurations performed.
    pub full_configs: u64,
    /// Partial reconfigurations performed.
    pub partial_configs: u64,
    /// Total configuration frames written.
    pub frames_written: u64,
    /// Total virtual time spent configuring.
    pub config_time: SimDuration,
    /// Scrub passes performed (see [`crate::scrub`]).
    pub scrub_passes: u64,
    /// Frames repaired by scrubbing.
    pub frames_scrubbed: u64,
}

/// One simulated FPGA on a board.
#[derive(Debug)]
pub struct Fpga {
    device: Device,
    clock: ProgrammableClock,
    loaded: Option<Loaded>,
    stats: ConfigStats,
    /// Injected-but-unrepaired upsets, in injection order (see
    /// [`crate::scrub`]). Any configuration write — full, partial or a
    /// scrub repair — rewrites the affected frames, so the tracker is
    /// cleared by those paths.
    upsets: Vec<crate::scrub::Upset>,
}

impl Fpga {
    /// An unconfigured FPGA of the given part, with its design clock
    /// initially programmed to 40 MHz (the paper's measurement setting).
    pub fn new(device: Device) -> Self {
        Fpga {
            device,
            clock: ProgrammableClock::new("design", Frequency::from_mhz(40)),
            loaded: None,
            stats: ConfigStats::default(),
            upsets: Vec::new(),
        }
    }

    /// The part description.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The design clock.
    pub fn clock(&self) -> &ProgrammableClock {
        &self.clock
    }

    /// Reprogram the design clock. Fails if the frequency exceeds the
    /// device's maximum (or the programmable range).
    pub fn set_clock(&mut self, freq: Frequency) -> Result<(), ConfigError> {
        if freq > self.device.max_clock {
            return Err(ConfigError::ClockTooFast {
                requested: freq,
                max: self.device.max_clock,
            });
        }
        if !self.clock.set_frequency(freq) {
            return Err(ConfigError::ClockTooFast {
                requested: freq,
                max: self.device.max_clock,
            });
        }
        Ok(())
    }

    /// Whether a design is currently loaded.
    pub fn is_configured(&self) -> bool {
        self.loaded.is_some()
    }

    /// Name of the loaded design, if any.
    pub fn design_name(&self) -> Option<&str> {
        self.loaded.as_ref().map(|l| l.fitted.design().name())
    }

    /// Configuration statistics.
    pub fn stats(&self) -> ConfigStats {
        self.stats
    }

    /// Full configuration: stream the complete bitstream through the
    /// configuration port. Returns the virtual time consumed.
    pub fn configure(&mut self, fitted: &FittedDesign) -> Result<SimDuration, ConfigError> {
        self.check_device(fitted)?;
        let bitstream = fitted.bitstream();
        let sim = Sim::new(fitted.design());
        let t = self.device.full_config_time();
        self.stats.full_configs += 1;
        self.stats.frames_written += self.device.config_frames as u64;
        self.stats.config_time += t;
        self.loaded = Some(Loaded {
            fitted: fitted.clone(),
            bitstream,
            sim,
        });
        // A full configuration rewrites every frame: pending upsets are
        // overwritten with fresh configuration data.
        self.upsets.clear();
        Ok(t)
    }

    /// Partial reconfiguration (hardware task switch): writes only the
    /// frames that differ between the current and the new design. The
    /// running design state is replaced (registers reset), as on real
    /// hardware where reconfigured logic comes up in its init state.
    /// Returns `(frames_written, virtual_time)`.
    pub fn partial_reconfigure(
        &mut self,
        fitted: &FittedDesign,
    ) -> Result<(u32, SimDuration), ConfigError> {
        self.check_device(fitted)?;
        if !self.device.partial_reconfig {
            return Err(ConfigError::PartialUnsupported);
        }
        let loaded = self.loaded.as_ref().ok_or(ConfigError::NotConfigured)?;
        let target = fitted.bitstream();
        let partial = loaded.bitstream.diff(&target);
        let frames = partial.frames.len() as u32;
        let t = self.device.frame_config_time(frames);
        let sim = Sim::new(fitted.design());
        self.stats.partial_configs += 1;
        self.stats.frames_written += frames as u64;
        self.stats.config_time += t;
        self.loaded = Some(Loaded {
            fitted: fitted.clone(),
            bitstream: target,
            sim,
        });
        // The diff is taken against the *live* (possibly corrupted)
        // image, so every corrupted frame differs from the target and is
        // rewritten — a task switch heals pending upsets as a side
        // effect, exactly as on real hardware.
        self.upsets.clear();
        Ok((frames, t))
    }

    /// Read back the current configuration for verification (§2's
    /// “read-back/test” feature).
    pub fn readback(&self) -> Result<Bitstream, ConfigError> {
        if !self.device.readback {
            return Err(ConfigError::ReadbackUnsupported);
        }
        self.loaded
            .as_ref()
            .map(|l| l.bitstream.clone())
            .ok_or(ConfigError::NotConfigured)
    }

    /// Clear the configuration (power-cycle / PRGM pin).
    pub fn deconfigure(&mut self) {
        self.loaded = None;
        self.upsets.clear();
    }

    /// Mutable access to the running design's simulator.
    pub fn sim_mut(&mut self) -> Option<&mut Sim> {
        self.loaded.as_mut().map(|l| &mut l.sim)
    }

    /// The fitted design currently loaded.
    pub fn fitted(&self) -> Option<&FittedDesign> {
        self.loaded.as_ref().map(|l| &l.fitted)
    }

    /// Step the running design `n` cycles and return the virtual time
    /// consumed at the current design clock. Uses the simulator's fused
    /// batch path ([`Sim::run_batch`]); see [`crate::par`] for stepping
    /// several devices concurrently.
    pub fn run_cycles(&mut self, n: u64) -> Result<SimDuration, ConfigError> {
        let clock_time = self.clock.cycles(n);
        let loaded = self.loaded.as_mut().ok_or(ConfigError::NotConfigured)?;
        loaded.sim.run_batch(n);
        Ok(clock_time)
    }

    /// Fork `lanes` instances of the configured design into a
    /// [`LaneGroup`] seeded from the running simulator's current state —
    /// the host-side model of streaming many independent work items
    /// through one configured design (the Mitrion-style data-parallel
    /// serving shape). The group runs on the host; virtual-time
    /// accounting stays with [`Fpga::run_lanes`].
    pub fn fork_lanes(&self, lanes: usize) -> Result<LaneGroup, ConfigError> {
        let loaded = self.loaded.as_ref().ok_or(ConfigError::NotConfigured)?;
        Ok(loaded.sim.fork_lanes(lanes))
    }

    /// Step a lane group `n` cycles and return the virtual time the
    /// device would spend serving every lane: **lanes serialize in
    /// virtual time** — the single physical device processes one
    /// instance's worth of cycles per lane, `clock.cycles(n × L)` — while
    /// the host steps all lanes together through the SIMD lane path.
    /// Wall clock shrinks; the virtual bill is unchanged versus serving
    /// each instance serially.
    pub fn run_lanes(&mut self, group: &mut LaneGroup, n: u64) -> Result<SimDuration, ConfigError> {
        if self.loaded.is_none() {
            return Err(ConfigError::NotConfigured);
        }
        let clock_time = self.clock.cycles(n * group.lanes() as u64);
        group.run_batch(n);
        Ok(clock_time)
    }

    /// Mutable access to the live configuration image (scrubbing and
    /// fault injection).
    pub(crate) fn live_bitstream_mut(&mut self) -> Option<&mut Bitstream> {
        self.loaded.as_mut().map(|l| &mut l.bitstream)
    }

    /// Shared access to the live configuration image (CRC scanning).
    pub(crate) fn live_bitstream(&self) -> Option<&Bitstream> {
        self.loaded.as_ref().map(|l| &l.bitstream)
    }

    /// Account a scrub pass in the statistics.
    pub(crate) fn note_scrub(&mut self, frames_repaired: u32, time: SimDuration) {
        self.stats.scrub_passes += 1;
        self.stats.frames_scrubbed += frames_repaired as u64;
        self.stats.config_time += time;
        self.stats.frames_written += frames_repaired as u64;
    }

    /// Account a targeted frame repair (not a full scrub pass).
    pub(crate) fn note_repair(&mut self, frames_repaired: u32, time: SimDuration) {
        self.stats.frames_scrubbed += frames_repaired as u64;
        self.stats.config_time += time;
        self.stats.frames_written += frames_repaired as u64;
    }

    /// Upsets injected since the last repair, scrub or configuration
    /// write, in injection order — the campaign driver's view of what is
    /// currently corrupting this device.
    pub fn pending_upsets(&self) -> &[crate::scrub::Upset] {
        &self.upsets
    }

    /// Mutable tracker access for the scrub module.
    pub(crate) fn upsets_mut(&mut self) -> &mut Vec<crate::scrub::Upset> {
        &mut self.upsets
    }

    fn check_device(&self, fitted: &FittedDesign) -> Result<(), ConfigError> {
        if fitted.device().name != self.device.name {
            return Err(ConfigError::DeviceMismatch {
                expected: self.device.name.clone(),
                got: fitted.device().name.clone(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fit::fit;
    use atlantis_chdl::Design;

    /// A counter design parameterised by its increment — pairs of these
    /// share most of their structure, giving small partial bitstreams.
    fn counter_design(step: u64) -> Design {
        let mut d = Design::new(format!("counter_x{step}"));
        let q = d.reg_feedback("q", 16, |d, q| d.add_const(q, step));
        d.expose_output("count", q);
        d
    }

    fn fitted(step: u64) -> FittedDesign {
        fit(&counter_design(step), &Device::orca_3t125()).unwrap()
    }

    #[test]
    fn configure_loads_and_runs() {
        let mut fpga = Fpga::new(Device::orca_3t125());
        assert!(!fpga.is_configured());
        let t = fpga.configure(&fitted(1)).unwrap();
        assert_eq!(t, Device::orca_3t125().full_config_time());
        assert!(fpga.is_configured());
        fpga.run_cycles(10).unwrap();
        assert_eq!(fpga.sim_mut().unwrap().get("count"), 10);
    }

    #[test]
    fn run_cycles_reports_clock_time() {
        let mut fpga = Fpga::new(Device::orca_3t125());
        fpga.configure(&fitted(1)).unwrap();
        let t = fpga.run_cycles(40_000).unwrap();
        assert_eq!(t, Frequency::from_mhz(40).cycles(40_000));
        fpga.set_clock(Frequency::from_mhz(20)).unwrap();
        let t2 = fpga.run_cycles(40_000).unwrap();
        assert_eq!(t2, t * 2, "half the clock, twice the time");
    }

    #[test]
    fn clock_limit_enforced() {
        let mut fpga = Fpga::new(Device::orca_3t125());
        let err = fpga.set_clock(Frequency::from_mhz(90)).unwrap_err();
        assert!(matches!(err, ConfigError::ClockTooFast { .. }));
    }

    #[test]
    fn partial_reconfig_is_cheaper_than_full() {
        let mut fpga = Fpga::new(Device::orca_3t125());
        let full_t = fpga.configure(&fitted(1)).unwrap();
        let (frames, partial_t) = fpga.partial_reconfigure(&fitted(2)).unwrap();
        assert!(frames > 0, "designs differ");
        assert!(
            frames < Device::orca_3t125().config_frames / 4,
            "similar designs touch few frames: {frames}"
        );
        assert!(
            partial_t < full_t / 4,
            "partial {partial_t} vs full {full_t}"
        );
        // The new design is live.
        fpga.run_cycles(5).unwrap();
        assert_eq!(fpga.sim_mut().unwrap().get("count"), 10);
        assert_eq!(fpga.design_name(), Some("counter_x2"));
    }

    #[test]
    fn partial_reconfig_matches_full_config_state() {
        let mut a = Fpga::new(Device::orca_3t125());
        a.configure(&fitted(1)).unwrap();
        a.partial_reconfigure(&fitted(3)).unwrap();

        let mut b = Fpga::new(Device::orca_3t125());
        b.configure(&fitted(3)).unwrap();

        assert_eq!(
            a.readback().unwrap(),
            b.readback().unwrap(),
            "partial reconfig converges to the full image"
        );
    }

    #[test]
    fn partial_reconfig_requires_configuration() {
        let mut fpga = Fpga::new(Device::orca_3t125());
        let err = fpga.partial_reconfigure(&fitted(1)).unwrap_err();
        assert_eq!(err, ConfigError::NotConfigured);
    }

    #[test]
    fn partial_reconfig_rejected_on_non_pr_parts() {
        let dev = Device::xc4013e();
        let small = fit(&counter_design(1), &dev).unwrap();
        let small2 = fit(&counter_design(2), &dev).unwrap();
        let mut fpga = Fpga::new(dev);
        fpga.configure(&small).unwrap();
        let err = fpga.partial_reconfigure(&small2).unwrap_err();
        assert_eq!(err, ConfigError::PartialUnsupported);
    }

    #[test]
    fn device_mismatch_rejected() {
        let mut fpga = Fpga::new(Device::virtex_xcv600());
        let err = fpga.configure(&fitted(1)).unwrap_err();
        assert!(matches!(err, ConfigError::DeviceMismatch { .. }));
    }

    #[test]
    fn readback_returns_loaded_image() {
        let mut fpga = Fpga::new(Device::orca_3t125());
        let f = fitted(1);
        fpga.configure(&f).unwrap();
        let rb = fpga.readback().unwrap();
        assert_eq!(rb, f.bitstream());
        assert!(rb.verify());
    }

    #[test]
    fn readback_unconfigured_fails() {
        let fpga = Fpga::new(Device::orca_3t125());
        assert_eq!(fpga.readback().unwrap_err(), ConfigError::NotConfigured);
    }

    #[test]
    fn deconfigure_clears() {
        let mut fpga = Fpga::new(Device::orca_3t125());
        fpga.configure(&fitted(1)).unwrap();
        fpga.deconfigure();
        assert!(!fpga.is_configured());
        assert!(fpga.sim_mut().is_none());
    }

    #[test]
    fn lane_group_hosts_configured_design() {
        let mut fpga = Fpga::new(Device::orca_3t125());
        assert_eq!(
            fpga.fork_lanes(4).unwrap_err(),
            ConfigError::NotConfigured,
            "lanes need a configured design"
        );
        fpga.configure(&fitted(1)).unwrap();
        fpga.run_cycles(5).unwrap();
        let mut group = fpga.fork_lanes(4).unwrap();
        assert_eq!(group.lanes(), 4);
        // Lanes inherit the configured design's live state.
        for lane in 0..4 {
            assert_eq!(group.get(lane, "count"), 5, "lane {lane}");
        }
        let t = fpga.run_lanes(&mut group, 10).unwrap();
        // Lanes serialize in virtual time: the one physical device pays
        // for every instance's cycles.
        assert_eq!(t, Frequency::from_mhz(40).cycles(10 * 4));
        for lane in 0..4 {
            assert_eq!(group.get(lane, "count"), 15, "lane {lane}");
        }
    }

    #[test]
    fn lane_virtual_time_matches_serial_instances() {
        let mut fpga = Fpga::new(Device::orca_3t125());
        fpga.configure(&fitted(3)).unwrap();
        let mut group = fpga.fork_lanes(8).unwrap();
        let laned = fpga.run_lanes(&mut group, 1000).unwrap();
        let mut serial = SimDuration::ZERO;
        for _ in 0..8 {
            serial += fpga.run_cycles(1000).unwrap();
        }
        assert_eq!(laned, serial, "identical virtual bill");
    }

    #[test]
    fn stats_accumulate() {
        let mut fpga = Fpga::new(Device::orca_3t125());
        fpga.configure(&fitted(1)).unwrap();
        fpga.partial_reconfigure(&fitted(2)).unwrap();
        fpga.partial_reconfigure(&fitted(1)).unwrap();
        let s = fpga.stats();
        assert_eq!(s.full_configs, 1);
        assert_eq!(s.partial_configs, 2);
        assert!(s.frames_written > Device::orca_3t125().config_frames as u64);
        assert!(s.config_time > SimDuration::ZERO);
    }
}
