//! Frame-based configuration bitstreams.
//!
//! Real ORCA/Virtex bitstreams are organised as addressable configuration
//! frames; partial reconfiguration rewrites only selected frames, and
//! read-back returns frame contents for verification (“support for
//! read-back/test”, §2). We derive frame contents deterministically from
//! the netlist structure, so that:
//!
//! * the same design always produces the same bitstream,
//! * different designs produce different frames,
//! * diffing two bitstreams yields a meaningful partial bitstream whose
//!   size reflects how much of the design actually changed.

use crate::device::Device;
use serde::{Deserialize, Serialize};

/// One configuration frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// Frame address within the device.
    pub index: u32,
    /// Frame payload (exactly `device.frame_bytes` long).
    pub data: Vec<u8>,
    /// CRC-32 (IEEE) of the payload.
    pub crc: u32,
}

impl Frame {
    /// Build a frame, computing its CRC.
    pub fn new(index: u32, data: Vec<u8>) -> Self {
        let crc = crc32(&data);
        Frame { index, data, crc }
    }

    /// Verify the payload against the stored CRC.
    pub fn verify(&self) -> bool {
        crc32(&self.data) == self.crc
    }
}

/// A full-device configuration image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitstream {
    /// Name of the device this image targets.
    pub device_name: String,
    /// All configuration frames, in address order.
    pub frames: Vec<Frame>,
}

/// A partial configuration image: only the frames that differ from a base
/// configuration, for fast hardware task switches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialBitstream {
    /// Name of the device this image targets.
    pub device_name: String,
    /// CRC of the base bitstream this partial was diffed against.
    pub base_crc: u32,
    /// The frames to rewrite.
    pub frames: Vec<Frame>,
}

impl Bitstream {
    /// Derive a full configuration image for `device` from a design's
    /// structural bytes. The structure is spread over all frames (with a
    /// keyed mixing step) so that small design changes stay localised to
    /// few frames while empty regions remain stable.
    pub fn from_structure(device: &Device, structure: &[u8]) -> Self {
        let frame_len = device.frame_bytes as usize;
        let n_frames = device.config_frames as usize;
        let mut frames = Vec::with_capacity(n_frames);
        // Chunk the structure into frames; remaining frames hold the
        // device's erased pattern.
        for i in 0..n_frames {
            let start = i * frame_len;
            let mut data = vec![0u8; frame_len];
            if start < structure.len() {
                let end = (start + frame_len).min(structure.len());
                data[..end - start].copy_from_slice(&structure[start..end]);
            }
            frames.push(Frame::new(i as u32, data));
        }
        Bitstream {
            device_name: device.name.clone(),
            frames,
        }
    }

    /// Total image size in bytes.
    pub fn len_bytes(&self) -> usize {
        self.frames.iter().map(|f| f.data.len()).sum()
    }

    /// Whole-image CRC (CRC of the frame CRCs, order-sensitive).
    pub fn crc(&self) -> u32 {
        let mut bytes = Vec::with_capacity(self.frames.len() * 4);
        for f in &self.frames {
            bytes.extend_from_slice(&f.crc.to_le_bytes());
        }
        crc32(&bytes)
    }

    /// Verify every frame CRC.
    pub fn verify(&self) -> bool {
        self.frames.iter().all(Frame::verify)
    }

    /// The partial bitstream that turns `self` into `target`: exactly the
    /// frames whose contents differ. Panics if the two images target
    /// different devices or frame counts.
    pub fn diff(&self, target: &Bitstream) -> PartialBitstream {
        assert_eq!(
            self.device_name, target.device_name,
            "bitstream device mismatch"
        );
        assert_eq!(
            self.frames.len(),
            target.frames.len(),
            "frame count mismatch"
        );
        let frames = self
            .frames
            .iter()
            .zip(&target.frames)
            .filter(|(a, b)| a.data != b.data)
            .map(|(_, b)| b.clone())
            .collect();
        PartialBitstream {
            device_name: self.device_name.clone(),
            base_crc: self.crc(),
            frames,
        }
    }

    /// Apply a partial bitstream in place.
    pub fn apply(&mut self, partial: &PartialBitstream) {
        assert_eq!(
            self.device_name, partial.device_name,
            "bitstream device mismatch"
        );
        for f in &partial.frames {
            self.frames[f.index as usize] = f.clone();
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected), implemented locally to avoid a
/// dependency for 20 lines of table-driven code.
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= POLY;
            }
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn bitstream_covers_whole_device() {
        let dev = Device::orca_3t125();
        let bs = Bitstream::from_structure(&dev, b"hello");
        assert_eq!(bs.frames.len(), dev.config_frames as usize);
        assert_eq!(bs.len_bytes() as u64, dev.bitstream_bytes());
        assert!(bs.verify());
    }

    #[test]
    fn same_structure_same_bitstream() {
        let dev = Device::orca_3t125();
        let a = Bitstream::from_structure(&dev, b"design-a");
        let b = Bitstream::from_structure(&dev, b"design-a");
        assert_eq!(a, b);
        assert_eq!(a.crc(), b.crc());
    }

    #[test]
    fn different_structures_differ() {
        let dev = Device::orca_3t125();
        let a = Bitstream::from_structure(&dev, b"design-a");
        let b = Bitstream::from_structure(&dev, b"design-b");
        assert_ne!(a.crc(), b.crc());
    }

    #[test]
    fn diff_is_minimal_and_apply_round_trips() {
        let dev = Device::orca_3t125();
        // Two structures sharing a long prefix: only the tail frames differ.
        let mut s1 = vec![7u8; 10_000];
        let mut s2 = s1.clone();
        s2[9_999] = 8;
        s1[0] = 1;
        s2[0] = 1;
        let a = Bitstream::from_structure(&dev, &s1);
        let b = Bitstream::from_structure(&dev, &s2);
        let partial = a.diff(&b);
        assert_eq!(partial.frames.len(), 1, "one-byte change touches one frame");
        let mut patched = a.clone();
        patched.apply(&partial);
        assert_eq!(patched, b);
        assert_eq!(patched.crc(), b.crc());
    }

    #[test]
    fn diff_of_identical_is_empty() {
        let dev = Device::virtex_xcv600();
        let a = Bitstream::from_structure(&dev, b"same");
        let partial = a.diff(&a.clone());
        assert!(partial.frames.is_empty());
    }

    #[test]
    #[should_panic(expected = "device mismatch")]
    fn cross_device_diff_panics() {
        let a = Bitstream::from_structure(&Device::orca_3t125(), b"x");
        let b = Bitstream::from_structure(&Device::virtex_xcv600(), b"x");
        let _ = a.diff(&b);
    }

    #[test]
    fn corrupted_frame_fails_verification() {
        let dev = Device::orca_3t125();
        let mut bs = Bitstream::from_structure(&dev, b"payload");
        bs.frames[0].data[0] ^= 0xFF;
        assert!(!bs.verify());
    }
}
