//! Programmable clock sources.
//!
//! Paper §2: “All clocks are programmable in the range of a few MHz up to
//! at least 80 MHz. Programming is done under software control from the
//! CPU module.” Each board has a central AAB clock, per-I/O-port clocks
//! and a local fallback clock; this type models any of them.

use atlantis_simcore::{Frequency, SimDuration};
use serde::{Deserialize, Serialize};

/// Lower programming bound (“a few MHz”).
pub fn min_clock() -> Frequency {
    Frequency::from_mhz(1)
}

/// Upper programming bound for ORCA-class logic (“at least 80 MHz”).
pub fn max_clock() -> Frequency {
    Frequency::from_mhz(80)
}

/// A software-programmable clock generator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgrammableClock {
    name: String,
    freq: Frequency,
    reprogram_count: u64,
}

impl ProgrammableClock {
    /// A clock programmed to `freq`. Panics outside the 1–80 MHz
    /// programming range; use [`ProgrammableClock::try_new`] to handle it.
    pub fn new(name: impl Into<String>, freq: Frequency) -> Self {
        Self::try_new(name, freq).expect("clock frequency out of programming range")
    }

    /// A clock programmed to `freq`, or `None` outside 1–80 MHz.
    pub fn try_new(name: impl Into<String>, freq: Frequency) -> Option<Self> {
        if freq < min_clock() || freq > max_clock() {
            return None;
        }
        Some(ProgrammableClock {
            name: name.into(),
            freq,
            reprogram_count: 0,
        })
    }

    /// The clock's name (e.g. `"AAB main"`, `"ACB local"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The programmed frequency.
    pub fn frequency(&self) -> Frequency {
        self.freq
    }

    /// Reprogram under software control. Returns `false` (and leaves the
    /// clock unchanged) outside the programming range.
    pub fn set_frequency(&mut self, freq: Frequency) -> bool {
        if freq < min_clock() || freq > max_clock() {
            return false;
        }
        self.freq = freq;
        self.reprogram_count += 1;
        true
    }

    /// How many times the clock has been reprogrammed.
    pub fn reprogram_count(&self) -> u64 {
        self.reprogram_count
    }

    /// Virtual time for `cycles` of this clock.
    pub fn cycles(&self, cycles: u64) -> SimDuration {
        self.freq.cycles(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programming_range_enforced() {
        assert!(ProgrammableClock::try_new("c", Frequency::from_khz(500)).is_none());
        assert!(ProgrammableClock::try_new("c", Frequency::from_mhz(81)).is_none());
        assert!(ProgrammableClock::try_new("c", Frequency::from_mhz(1)).is_some());
        assert!(ProgrammableClock::try_new("c", Frequency::from_mhz(80)).is_some());
    }

    #[test]
    fn reprogramming() {
        let mut c = ProgrammableClock::new("design", Frequency::from_mhz(40));
        assert_eq!(c.frequency(), Frequency::from_mhz(40));
        assert!(c.set_frequency(Frequency::from_mhz(25)));
        assert_eq!(c.frequency(), Frequency::from_mhz(25));
        assert_eq!(c.reprogram_count(), 1);
        assert!(
            !c.set_frequency(Frequency::from_mhz(200)),
            "out of range rejected"
        );
        assert_eq!(
            c.frequency(),
            Frequency::from_mhz(25),
            "unchanged after reject"
        );
    }

    #[test]
    fn cycles_at_40mhz() {
        let c = ProgrammableClock::new("design", Frequency::from_mhz(40));
        assert_eq!(c.cycles(40_000_000), SimDuration::from_secs(1));
    }
}
