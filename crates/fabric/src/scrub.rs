//! Single-event-upset injection and configuration scrubbing.
//!
//! The paper lists “support for read-back/test” among the features that
//! drove the FPGA choice (§2). In the HEP environments ATLANTIS targeted,
//! configuration memory is exposed to radiation: a single-event upset
//! (SEU) silently flips a configuration bit and corrupts the logic. The
//! standard defence — then and now — is *scrubbing*: periodically read
//! back the configuration, compare against the golden image, and rewrite
//! any corrupted frames through partial reconfiguration.
//!
//! This module adds both halves to [`Fpga`]: fault injection for tests,
//! and the scrubber with realistic virtual-time cost (full read-back plus
//! per-repaired-frame writes).

use crate::bitstream::Frame;
use crate::config::{ConfigError, Fpga};
use atlantis_simcore::SimDuration;

/// Result of one scrub pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubReport {
    /// Frames whose contents differed from the golden image.
    pub frames_repaired: u32,
    /// Frames whose stored CRC no longer matched their contents (a
    /// subset of the corruption detectable without a golden image).
    pub crc_detectable: u32,
    /// Virtual time for the pass (read-back + repairs).
    pub time: SimDuration,
}

impl Fpga {
    /// Flip one bit of the live configuration — a simulated SEU.
    /// The frame's stored CRC is *not* updated, exactly as a real upset
    /// leaves the originally-computed CRC stale.
    pub fn inject_upset(&mut self, frame: u32, byte: u32, bit: u8) -> Result<(), ConfigError> {
        let bitstream = self
            .live_bitstream_mut()
            .ok_or(ConfigError::NotConfigured)?;
        let f = &mut bitstream.frames[frame as usize];
        let idx = byte as usize % f.data.len();
        f.data[idx] ^= 1 << (bit % 8);
        Ok(())
    }

    /// Whether the live configuration still matches its golden image.
    pub fn integrity_ok(&self) -> Result<bool, ConfigError> {
        let golden = self.fitted().ok_or(ConfigError::NotConfigured)?.bitstream();
        let live = self.readback()?;
        Ok(live == golden)
    }

    /// One scrub pass: read back every frame, compare against the golden
    /// image, rewrite corrupted frames. Costs a full read-back plus one
    /// frame-write per repair.
    pub fn scrub(&mut self) -> Result<ScrubReport, ConfigError> {
        let golden = self.fitted().ok_or(ConfigError::NotConfigured)?.bitstream();
        let readback_time = self.device().full_config_time();
        let mut repaired = 0u32;
        let mut crc_detectable = 0u32;
        {
            let live = self
                .live_bitstream_mut()
                .ok_or(ConfigError::NotConfigured)?;
            for (live_f, golden_f) in live.frames.iter_mut().zip(&golden.frames) {
                if live_f.data != golden_f.data {
                    if !live_f.verify() {
                        crc_detectable += 1;
                    }
                    *live_f = Frame::new(golden_f.index, golden_f.data.clone());
                    repaired += 1;
                }
            }
        }
        let time = readback_time + self.device().frame_config_time(repaired);
        self.note_scrub(repaired, time);
        Ok(ScrubReport {
            frames_repaired: repaired,
            crc_detectable,
            time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::fit::fit;
    use atlantis_chdl::Design;

    fn configured_fpga() -> Fpga {
        let mut d = Design::new("victim");
        let x = d.input("x", 16);
        let q = d.reg("r", x);
        d.expose_output("q", q);
        let fitted = fit(&d, &Device::orca_3t125()).unwrap();
        let mut fpga = Fpga::new(Device::orca_3t125());
        fpga.configure(&fitted).unwrap();
        fpga
    }

    #[test]
    fn pristine_configuration_has_integrity() {
        let fpga = configured_fpga();
        assert!(fpga.integrity_ok().unwrap());
    }

    #[test]
    fn upset_breaks_integrity_and_crc() {
        let mut fpga = configured_fpga();
        fpga.inject_upset(10, 3, 5).unwrap();
        assert!(!fpga.integrity_ok().unwrap());
        let rb = fpga.readback().unwrap();
        assert!(!rb.verify(), "a stale frame CRC exposes the flip");
    }

    #[test]
    fn scrub_repairs_and_reports() {
        let mut fpga = configured_fpga();
        fpga.inject_upset(10, 3, 5).unwrap();
        fpga.inject_upset(200, 0, 0).unwrap();
        fpga.inject_upset(200, 1, 7).unwrap(); // second flip, same frame
        let report = fpga.scrub().unwrap();
        assert_eq!(report.frames_repaired, 2, "two distinct frames corrupted");
        assert_eq!(report.crc_detectable, 2);
        assert!(fpga.integrity_ok().unwrap());
        assert!(
            report.time > fpga.device().full_config_time(),
            "read-back + repairs"
        );
    }

    #[test]
    fn scrub_on_clean_device_repairs_nothing() {
        let mut fpga = configured_fpga();
        let report = fpga.scrub().unwrap();
        assert_eq!(report.frames_repaired, 0);
        assert_eq!(
            report.time,
            fpga.device().full_config_time(),
            "read-back only"
        );
    }

    #[test]
    fn even_bit_flips_cancelling_crc_are_caught_by_golden_compare() {
        // Two flips of the same bit restore the data; flip two *different*
        // bits so the data stays corrupted but craft the case where a CRC
        // could collide: the golden compare catches corruption regardless.
        let mut fpga = configured_fpga();
        fpga.inject_upset(5, 0, 0).unwrap();
        fpga.inject_upset(5, 0, 0).unwrap(); // cancels itself
        assert!(
            fpga.integrity_ok().unwrap(),
            "self-cancelling flips are harmless"
        );
        fpga.inject_upset(5, 0, 1).unwrap();
        assert!(!fpga.integrity_ok().unwrap());
        let r = fpga.scrub().unwrap();
        assert_eq!(r.frames_repaired, 1);
    }

    #[test]
    fn unconfigured_device_rejects_scrub_api() {
        let mut fpga = Fpga::new(Device::orca_3t125());
        assert!(matches!(
            fpga.inject_upset(0, 0, 0),
            Err(ConfigError::NotConfigured)
        ));
        assert!(matches!(fpga.scrub(), Err(ConfigError::NotConfigured)));
        assert!(matches!(
            fpga.integrity_ok(),
            Err(ConfigError::NotConfigured)
        ));
    }

    #[test]
    fn scrub_stats_accumulate() {
        let mut fpga = configured_fpga();
        fpga.inject_upset(1, 0, 0).unwrap();
        fpga.scrub().unwrap();
        fpga.inject_upset(2, 0, 0).unwrap();
        fpga.scrub().unwrap();
        let s = fpga.stats();
        assert_eq!(s.scrub_passes, 2);
        assert_eq!(s.frames_scrubbed, 2);
    }
}
