//! Single-event-upset injection and configuration scrubbing.
//!
//! The paper lists “support for read-back/test” among the features that
//! drove the FPGA choice (§2). In the HEP environments ATLANTIS targeted,
//! configuration memory is exposed to radiation: a single-event upset
//! (SEU) silently flips a configuration bit and corrupts the logic. The
//! standard defence — then and now — is *scrubbing*: periodically read
//! back the configuration, compare against the golden image, and rewrite
//! any corrupted frames through partial reconfiguration.
//!
//! This module gives [`Fpga`] the full detection/repair ladder the guard
//! subsystem (`atlantis-guard`, DESIGN.md §11) builds on:
//!
//! * **Injection** — [`Fpga::inject_upset`] flips a configuration bit and
//!   leaves the frame's stored CRC stale, exactly as a real upset would;
//!   [`Fpga::inject_upset_stealthy`] additionally refreshes the stored
//!   CRC, modelling the (rarer) upsets a CRC read-back cannot see. Every
//!   injection is recorded in a pending-upset tracker
//!   ([`Fpga::pending_upsets`]) — the campaign driver's iterator over
//!   live corruption.
//! * **Cheap detection** — [`Fpga::crc_check`] models the configuration
//!   port's frame-CRC scan: the scrub controller streams the stored
//!   frame CRCs (four per config-clock cycle over its 32-bit test port)
//!   against shadow CRCs it maintains, so a scan costs cycles
//!   proportional to the frame *count*, not the image size.
//! * **Targeted repair** — [`Fpga::repair_upsets`] rewrites only the
//!   frames the CRC scan can identify, at one frame-write each.
//! * **Full scrub** — [`Fpga::scrub`] reads back everything, compares
//!   against the golden image and repairs all corruption (including
//!   CRC-stealthy flips), at full read-back cost plus per-frame repairs.

use crate::bitstream::Frame;
use crate::config::{ConfigError, Fpga};
use atlantis_simcore::SimDuration;

/// One injected-but-unrepaired configuration upset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Upset {
    /// Configuration frame hit.
    pub frame: u32,
    /// Byte within the frame.
    pub byte: u32,
    /// Bit within the byte (0..8).
    pub bit: u8,
    /// Whether the stored frame CRC was refreshed (invisible to a CRC
    /// read-back; only a golden-image compare or result voting sees it).
    pub stealthy: bool,
}

/// Result of one scrub pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrubReport {
    /// Frames whose contents differed from the golden image.
    pub frames_repaired: u32,
    /// Frames whose stored CRC no longer matched their contents (a
    /// subset of the corruption detectable without a golden image).
    pub crc_detectable: u32,
    /// Virtual time for the pass (read-back + repairs).
    pub time: SimDuration,
}

/// Result of one frame-CRC scan ([`Fpga::crc_check`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrcCheck {
    /// Frames whose stored CRC no longer matches their contents.
    pub stale_frames: u32,
    /// Virtual time of the scan (frame count / 4 config-clock cycles).
    pub time: SimDuration,
}

impl Fpga {
    /// Flip one bit of the live configuration — a simulated SEU.
    /// The frame's stored CRC is *not* updated, exactly as a real upset
    /// leaves the originally-computed CRC stale. Out-of-range frame or
    /// byte coordinates return [`ConfigError::UpsetOutOfRange`] instead
    /// of silently aliasing a different location.
    pub fn inject_upset(&mut self, frame: u32, byte: u32, bit: u8) -> Result<(), ConfigError> {
        self.inject(frame, byte, bit, false)
    }

    /// Like [`Fpga::inject_upset`], but the frame's stored CRC is
    /// recomputed over the corrupted contents — the upset a CRC
    /// read-back cannot see. Only a golden-image scrub (or re-execution
    /// voting at the serving layer) detects it.
    pub fn inject_upset_stealthy(
        &mut self,
        frame: u32,
        byte: u32,
        bit: u8,
    ) -> Result<(), ConfigError> {
        self.inject(frame, byte, bit, true)
    }

    fn inject(
        &mut self,
        frame: u32,
        byte: u32,
        bit: u8,
        stealthy: bool,
    ) -> Result<(), ConfigError> {
        let bitstream = self
            .live_bitstream_mut()
            .ok_or(ConfigError::NotConfigured)?;
        if frame as usize >= bitstream.frames.len() {
            return Err(ConfigError::UpsetOutOfRange { frame, byte });
        }
        let f = &mut bitstream.frames[frame as usize];
        if byte as usize >= f.data.len() {
            return Err(ConfigError::UpsetOutOfRange { frame, byte });
        }
        let bit = bit % 8;
        f.data[byte as usize] ^= 1 << bit;
        if stealthy {
            *f = Frame::new(f.index, f.data.clone());
        }
        self.upsets_mut().push(Upset {
            frame,
            byte,
            bit,
            stealthy,
        });
        Ok(())
    }

    /// Whether the live configuration still matches its golden image.
    pub fn integrity_ok(&self) -> Result<bool, ConfigError> {
        let golden = self.fitted().ok_or(ConfigError::NotConfigured)?.bitstream();
        let live = self.readback()?;
        Ok(live == golden)
    }

    /// A deterministic digest of the pending upsets — what the guard
    /// layer folds into a job's checksum to model the corrupted logic
    /// producing a wrong (but reproducible) answer. Zero when no upset
    /// is pending.
    pub fn upset_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut push = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for u in self.pending_upsets() {
            push(u.frame as u64);
            push(u.byte as u64);
            push(u.bit as u64 | (u.stealthy as u64) << 8);
        }
        if self.pending_upsets().is_empty() {
            0
        } else {
            h
        }
    }

    /// The configuration port's frame-CRC scan: compare every frame's
    /// stored CRC against the controller's shadow CRC, streaming four
    /// CRC words per config-clock cycle. Detects exactly the frames a
    /// normal upset leaves stale — CRC-stealthy corruption passes. Costs
    /// `⌈frames / 4⌉` config-clock cycles (≈ 21 µs on the ORCA 3T125),
    /// far below the full read-back a [`Fpga::scrub`] pays, which is
    /// what makes per-job integrity checking affordable.
    pub fn crc_check(&self) -> Result<CrcCheck, ConfigError> {
        let live = self.live_bitstream().ok_or(ConfigError::NotConfigured)?;
        let mut frames: Vec<u32> = self.pending_upsets().iter().map(|u| u.frame).collect();
        frames.sort_unstable();
        frames.dedup();
        let stale = frames
            .iter()
            .filter(|&&f| !live.frames[f as usize].verify())
            .count() as u32;
        let cycles = u64::from(self.device().config_frames.div_ceil(4));
        Ok(CrcCheck {
            stale_frames: stale,
            time: self.device().config_clock.cycles(cycles),
        })
    }

    /// Targeted repair: rewrite the golden contents of every frame the
    /// CRC scan can identify (stale stored CRC), at one frame-write
    /// each — the fast path after a detection, without the full
    /// read-back a periodic [`Fpga::scrub`] pays. CRC-stealthy upsets on
    /// *other* frames survive; stealthy flips sharing a repaired frame
    /// are healed with it.
    pub fn repair_upsets(&mut self) -> Result<ScrubReport, ConfigError> {
        let golden = self.fitted().ok_or(ConfigError::NotConfigured)?.bitstream();
        let mut frames: Vec<u32> = self.pending_upsets().iter().map(|u| u.frame).collect();
        frames.sort_unstable();
        frames.dedup();
        let mut repaired = 0u32;
        let mut healed = Vec::new();
        {
            let live = self
                .live_bitstream_mut()
                .ok_or(ConfigError::NotConfigured)?;
            for &f in &frames {
                if !live.frames[f as usize].verify() {
                    let gf = &golden.frames[f as usize];
                    live.frames[f as usize] = Frame::new(gf.index, gf.data.clone());
                    repaired += 1;
                    healed.push(f);
                }
            }
        }
        self.upsets_mut().retain(|u| !healed.contains(&u.frame));
        let time = self.device().frame_config_time(repaired);
        self.note_repair(repaired, time);
        Ok(ScrubReport {
            frames_repaired: repaired,
            crc_detectable: repaired,
            time,
        })
    }

    /// One scrub pass: read back every frame, compare against the golden
    /// image, rewrite corrupted frames. Costs a full read-back plus one
    /// frame-write per repair. Clears the pending-upset tracker — after
    /// a scrub the whole image has been verified against the golden
    /// bitstream, stealthy corruption included.
    pub fn scrub(&mut self) -> Result<ScrubReport, ConfigError> {
        let golden = self.fitted().ok_or(ConfigError::NotConfigured)?.bitstream();
        let readback_time = self.device().full_config_time();
        let mut repaired = 0u32;
        let mut crc_detectable = 0u32;
        {
            let live = self
                .live_bitstream_mut()
                .ok_or(ConfigError::NotConfigured)?;
            for (live_f, golden_f) in live.frames.iter_mut().zip(&golden.frames) {
                if live_f.data != golden_f.data {
                    if !live_f.verify() {
                        crc_detectable += 1;
                    }
                    *live_f = Frame::new(golden_f.index, golden_f.data.clone());
                    repaired += 1;
                }
            }
        }
        self.upsets_mut().clear();
        let time = readback_time + self.device().frame_config_time(repaired);
        self.note_scrub(repaired, time);
        Ok(ScrubReport {
            frames_repaired: repaired,
            crc_detectable,
            time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Device;
    use crate::fit::fit;
    use atlantis_chdl::Design;

    fn configured_fpga() -> Fpga {
        let mut d = Design::new("victim");
        let x = d.input("x", 16);
        let q = d.reg("r", x);
        d.expose_output("q", q);
        let fitted = fit(&d, &Device::orca_3t125()).unwrap();
        let mut fpga = Fpga::new(Device::orca_3t125());
        fpga.configure(&fitted).unwrap();
        fpga
    }

    #[test]
    fn pristine_configuration_has_integrity() {
        let fpga = configured_fpga();
        assert!(fpga.integrity_ok().unwrap());
        assert!(fpga.pending_upsets().is_empty());
        assert_eq!(fpga.upset_digest(), 0);
    }

    #[test]
    fn upset_breaks_integrity_and_crc() {
        let mut fpga = configured_fpga();
        fpga.inject_upset(10, 3, 5).unwrap();
        assert!(!fpga.integrity_ok().unwrap());
        let rb = fpga.readback().unwrap();
        assert!(!rb.verify(), "a stale frame CRC exposes the flip");
        assert_eq!(fpga.pending_upsets().len(), 1);
        assert_ne!(fpga.upset_digest(), 0);
    }

    #[test]
    fn out_of_range_injection_is_rejected_not_aliased() {
        let mut fpga = configured_fpga();
        let dev = Device::orca_3t125();
        // Frame past the end.
        assert_eq!(
            fpga.inject_upset(dev.config_frames, 0, 0),
            Err(ConfigError::UpsetOutOfRange {
                frame: dev.config_frames,
                byte: 0
            })
        );
        // Byte past the end of an in-range frame (the old code wrapped
        // this onto byte `frame_bytes % len == 0` silently).
        assert_eq!(
            fpga.inject_upset(0, dev.frame_bytes, 1),
            Err(ConfigError::UpsetOutOfRange {
                frame: 0,
                byte: dev.frame_bytes
            })
        );
        assert!(
            fpga.integrity_ok().unwrap(),
            "a rejected injection must not corrupt anything"
        );
        assert!(fpga.pending_upsets().is_empty());
        // The last valid coordinate is accepted.
        fpga.inject_upset(dev.config_frames - 1, dev.frame_bytes - 1, 7)
            .unwrap();
        assert!(!fpga.integrity_ok().unwrap());
    }

    #[test]
    fn stealthy_upset_evades_crc_but_not_golden_compare() {
        let mut fpga = configured_fpga();
        fpga.inject_upset_stealthy(42, 7, 3).unwrap();
        assert!(!fpga.integrity_ok().unwrap(), "data is corrupted");
        assert!(
            fpga.readback().unwrap().verify(),
            "the refreshed CRC hides the flip from read-back"
        );
        assert_eq!(fpga.crc_check().unwrap().stale_frames, 0);
        // Targeted repair sees nothing to fix...
        assert_eq!(fpga.repair_upsets().unwrap().frames_repaired, 0);
        assert!(!fpga.integrity_ok().unwrap());
        // ...but the golden-image scrub catches it.
        let r = fpga.scrub().unwrap();
        assert_eq!(r.frames_repaired, 1);
        assert_eq!(r.crc_detectable, 0, "CRC alone could not have seen it");
        assert!(fpga.integrity_ok().unwrap());
        assert!(fpga.pending_upsets().is_empty());
    }

    #[test]
    fn crc_check_is_cheap_and_counts_stale_frames() {
        let mut fpga = configured_fpga();
        let clean = fpga.crc_check().unwrap();
        assert_eq!(clean.stale_frames, 0);
        assert!(
            clean.time * 100 < fpga.device().full_config_time(),
            "a CRC scan must cost far less than a read-back: {} vs {}",
            clean.time,
            fpga.device().full_config_time()
        );
        fpga.inject_upset(3, 0, 0).unwrap();
        fpga.inject_upset(3, 5, 1).unwrap(); // same frame
        fpga.inject_upset(700, 9, 2).unwrap();
        let c = fpga.crc_check().unwrap();
        assert_eq!(c.stale_frames, 2, "two distinct frames stale");
        assert_eq!(c.time, clean.time, "scan cost is data-independent");
    }

    #[test]
    fn repair_upsets_is_targeted_and_clears_the_tracker() {
        let mut fpga = configured_fpga();
        fpga.inject_upset(3, 0, 0).unwrap();
        fpga.inject_upset(700, 9, 2).unwrap();
        let r = fpga.repair_upsets().unwrap();
        assert_eq!(r.frames_repaired, 2);
        assert_eq!(
            r.time,
            fpga.device().frame_config_time(2),
            "repairs cost frame writes only — no full read-back"
        );
        assert!(fpga.integrity_ok().unwrap());
        assert!(fpga.pending_upsets().is_empty());
        assert_eq!(fpga.stats().scrub_passes, 0, "a repair is not a scrub pass");
        assert_eq!(fpga.stats().frames_scrubbed, 2);
    }

    #[test]
    fn reconfiguration_heals_pending_upsets() {
        let mut fpga = configured_fpga();
        fpga.inject_upset(10, 3, 5).unwrap();
        assert_eq!(fpga.pending_upsets().len(), 1);
        let fitted = fpga.fitted().unwrap().clone();
        fpga.partial_reconfigure(&fitted).unwrap();
        assert!(fpga.pending_upsets().is_empty());
        assert!(fpga.integrity_ok().unwrap());
    }

    #[test]
    fn scrub_repairs_and_reports() {
        let mut fpga = configured_fpga();
        fpga.inject_upset(10, 3, 5).unwrap();
        fpga.inject_upset(200, 0, 0).unwrap();
        fpga.inject_upset(200, 1, 7).unwrap(); // second flip, same frame
        let report = fpga.scrub().unwrap();
        assert_eq!(report.frames_repaired, 2, "two distinct frames corrupted");
        assert_eq!(report.crc_detectable, 2);
        assert!(fpga.integrity_ok().unwrap());
        assert!(
            report.time > fpga.device().full_config_time(),
            "read-back + repairs"
        );
    }

    #[test]
    fn scrub_on_clean_device_repairs_nothing() {
        let mut fpga = configured_fpga();
        let report = fpga.scrub().unwrap();
        assert_eq!(report.frames_repaired, 0);
        assert_eq!(
            report.time,
            fpga.device().full_config_time(),
            "read-back only"
        );
    }

    #[test]
    fn even_bit_flips_cancelling_crc_are_caught_by_golden_compare() {
        // Two flips of the same bit restore the data; flip two *different*
        // bits so the data stays corrupted but craft the case where a CRC
        // could collide: the golden compare catches corruption regardless.
        let mut fpga = configured_fpga();
        fpga.inject_upset(5, 0, 0).unwrap();
        fpga.inject_upset(5, 0, 0).unwrap(); // cancels itself
        assert!(
            fpga.integrity_ok().unwrap(),
            "self-cancelling flips are harmless"
        );
        fpga.inject_upset(5, 0, 1).unwrap();
        assert!(!fpga.integrity_ok().unwrap());
        let r = fpga.scrub().unwrap();
        assert_eq!(r.frames_repaired, 1);
    }

    #[test]
    fn unconfigured_device_rejects_scrub_api() {
        let mut fpga = Fpga::new(Device::orca_3t125());
        assert!(matches!(
            fpga.inject_upset(0, 0, 0),
            Err(ConfigError::NotConfigured)
        ));
        assert!(matches!(
            fpga.inject_upset_stealthy(0, 0, 0),
            Err(ConfigError::NotConfigured)
        ));
        assert!(matches!(fpga.scrub(), Err(ConfigError::NotConfigured)));
        assert!(matches!(
            fpga.repair_upsets(),
            Err(ConfigError::NotConfigured)
        ));
        assert!(matches!(fpga.crc_check(), Err(ConfigError::NotConfigured)));
        assert!(matches!(
            fpga.integrity_ok(),
            Err(ConfigError::NotConfigured)
        ));
    }

    #[test]
    fn scrub_stats_accumulate() {
        let mut fpga = configured_fpga();
        fpga.inject_upset(1, 0, 0).unwrap();
        fpga.scrub().unwrap();
        fpga.inject_upset(2, 0, 0).unwrap();
        fpga.scrub().unwrap();
        let s = fpga.stats();
        assert_eq!(s.scrub_passes, 2);
        assert_eq!(s.frames_scrubbed, 2);
    }

    #[test]
    fn upset_digest_is_deterministic_and_order_sensitive() {
        let mut a = configured_fpga();
        let mut b = configured_fpga();
        for f in [7u32, 300, 7] {
            a.inject_upset(f, 1, 2).unwrap();
            b.inject_upset(f, 1, 2).unwrap();
        }
        assert_eq!(a.upset_digest(), b.upset_digest());
        a.scrub().unwrap();
        assert_eq!(a.upset_digest(), 0, "repair clears the digest");
    }
}
