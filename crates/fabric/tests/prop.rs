//! Property tests for the fabric layer: bitstream diff/apply algebra,
//! CRC detection, and fitting monotonicity.

use atlantis_chdl::Design;
use atlantis_fabric::{fit, Bitstream, Device, Fpga};
use proptest::prelude::*;

fn design_from_taps(taps: &[u64]) -> Design {
    let mut d = Design::new("fir");
    let x = d.input("x", 16);
    let mut acc = d.lit(0, 16);
    for (i, &t) in taps.iter().enumerate() {
        let k = d.lit(t & 0xFFFF, 16);
        let m = d.mul(x, k);
        let r = d.reg(format!("z{i}"), m);
        acc = d.add(acc, r);
    }
    d.expose_output("y", acc);
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// diff→apply round-trips between arbitrary byte structures.
    #[test]
    fn diff_apply_round_trips(a in proptest::collection::vec(any::<u8>(), 0..4096),
                              b in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let dev = Device::xc4013e(); // small part: fast frames
        let bs_a = Bitstream::from_structure(&dev, &a);
        let bs_b = Bitstream::from_structure(&dev, &b);
        let partial = bs_a.diff(&bs_b);
        let mut patched = bs_a.clone();
        patched.apply(&partial);
        prop_assert_eq!(&patched, &bs_b);
        prop_assert!(patched.verify());
        // diff size bounds: no more frames than the device has, and zero
        // iff the structures produce identical images.
        prop_assert!(partial.frames.len() <= dev.config_frames as usize);
        prop_assert_eq!(partial.frames.is_empty(), bs_a == bs_b);
    }

    /// Any single-bit corruption of any frame is caught by verify().
    #[test]
    fn single_bit_corruption_always_detected(payload in proptest::collection::vec(any::<u8>(), 1..2048),
                                             frame_pick in any::<u32>(),
                                             byte_pick in any::<u32>(),
                                             bit in 0u8..8) {
        let dev = Device::xc4013e();
        let mut bs = Bitstream::from_structure(&dev, &payload);
        let f = (frame_pick % dev.config_frames) as usize;
        let by = (byte_pick % dev.frame_bytes) as usize;
        bs.frames[f].data[by] ^= 1 << bit;
        prop_assert!(!bs.verify(), "frame {f} byte {by} bit {bit}");
    }

    /// The fitter is monotone: a design that fits a small device fits
    /// every larger device.
    #[test]
    fn fitting_is_monotone_across_devices(taps in proptest::collection::vec(0u64..0x10000, 1..8)) {
        let d = design_from_taps(&taps);
        let small = Device::xc4013e();
        let medium = Device::orca_3t125();
        let large = Device::virtex_xcv600();
        if fit(&d, &small).is_ok() {
            prop_assert!(fit(&d, &medium).is_ok());
        }
        if fit(&d, &medium).is_ok() {
            prop_assert!(fit(&d, &large).is_ok());
        }
    }

    /// Configure → inject arbitrary upsets → scrub always restores the
    /// exact golden image, and the repaired-frame count equals the number
    /// of distinct corrupted frames.
    #[test]
    fn scrub_always_restores(upsets in proptest::collection::vec((any::<u32>(), any::<u32>(), 0u8..8, any::<bool>()), 1..24)) {
        let dev = Device::orca_3t125();
        let fitted = fit(&design_from_taps(&[3, 5, 7]), &dev).unwrap();
        let mut fpga = Fpga::new(dev.clone());
        fpga.configure(&fitted).unwrap();
        let golden = fitted.bitstream();
        for (f, b, bit, stealthy) in upsets {
            let frame = f % dev.config_frames;
            let byte = b % dev.frame_bytes;
            // A self-cancelling double flip leaves the frame clean; the
            // *net* effect is measured against golden below. Stealthy
            // flips refresh the stored CRC, so they must show up in
            // frames_repaired but never in crc_detectable.
            if stealthy {
                fpga.inject_upset_stealthy(frame, byte, bit).unwrap();
            } else {
                fpga.inject_upset(frame, byte, bit).unwrap();
            }
        }
        let actually_corrupt = {
            let live = fpga.readback().unwrap();
            live.frames
                .iter()
                .zip(&golden.frames)
                .filter(|(a, b)| a.data != b.data)
                .count() as u32
        };
        let report = fpga.scrub().unwrap();
        prop_assert_eq!(report.frames_repaired, actually_corrupt);
        prop_assert!(report.crc_detectable <= report.frames_repaired,
                     "CRC-visible corruption is a subset of all corruption");
        prop_assert!(fpga.integrity_ok().unwrap());
        prop_assert!(fpga.pending_upsets().is_empty());
        prop_assert_eq!(fpga.readback().unwrap(), golden);
    }

    /// A partially reconfigured FPGA behaves exactly like one configured
    /// directly with the target design, for any tap pair.
    #[test]
    fn partial_reconfig_behavioural_equivalence(t1 in proptest::collection::vec(0u64..0x100, 1..4),
                                                t2 in proptest::collection::vec(0u64..0x100, 1..4),
                                                stim in proptest::collection::vec(0u64..0x10000, 1..12)) {
        let dev = Device::orca_3t125();
        let f1 = fit(&design_from_taps(&t1), &dev).unwrap();
        let f2 = fit(&design_from_taps(&t2), &dev).unwrap();
        let mut via_partial = Fpga::new(dev.clone());
        via_partial.configure(&f1).unwrap();
        via_partial.partial_reconfigure(&f2).unwrap();
        let mut direct = Fpga::new(dev);
        direct.configure(&f2).unwrap();
        for &v in &stim {
            let s1 = via_partial.sim_mut().unwrap();
            s1.set("x", v);
            s1.step();
            let y1 = s1.get("y");
            let s2 = direct.sim_mut().unwrap();
            s2.set("x", v);
            s2.step();
            prop_assert_eq!(y1, s2.get("y"));
        }
    }
}
