//! atlantis-runtime — a multi-tenant job scheduler for the simulated
//! ATLANTIS machine.
//!
//! The paper's machine (§1–§3) is a farm of reconfigurable coprocessor
//! boards behind a CompactPCI backplane; its economics hinge on
//! *hardware task switching* — swapping the design on an FPGA by
//! partial reconfiguration instead of re-fitting and fully re-loading
//! it. This crate adds the serving layer that exploits that: a job
//! server that accepts heterogeneous requests (TRT trigger events,
//! volume-rendering frames, 2-D image filters, N-body steps) from many
//! concurrent client threads, queues them with priorities under a
//! bounded-capacity admission policy, and schedules them across the
//! system's ACB devices.
//!
//! The scheduler is reconfiguration-aware: each worker tracks the
//! design currently loaded on its FPGA and prefers nearby queued jobs
//! for that design (bounded look-ahead, bounded batch length, bounded
//! skip count — no starvation), so same-design jobs batch and the
//! per-switch configuration cost amortises. Fitted bitstreams are kept
//! in a shared [`BitstreamCache`], so no job ever waits on the fitter
//! after warm-up.
//!
//! ```no_run
//! use atlantis_core::AtlantisSystem;
//! use atlantis_runtime::{JobRequest, Runtime, RuntimeConfig};
//! use atlantis_apps::jobs::JobSpec;
//!
//! let system = AtlantisSystem::builder().with_acbs(4).build();
//! let rt = Runtime::serve(system, RuntimeConfig::default()).unwrap();
//! let handle = rt.submit(JobRequest::new(0, JobSpec::trt(42))).unwrap();
//! let result = handle.wait().unwrap();
//! println!("checksum {:016x} in {:?}", result.checksum, result.timings.wall);
//! let stats = rt.shutdown();
//! println!("{} jobs, {:.2} switches/job", stats.completed, stats.switches_per_job());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bufpool;
mod cache;
mod error;
mod guard;
mod job;
mod queue;
mod shard;
mod stats;
mod worker;

pub use bufpool::{BufferPool, PoolBuf, PAGE_BYTES};
pub use cache::BitstreamCache;
pub use error::RuntimeError;
pub use guard::GuardConfig;
pub use job::{JobHandle, JobRequest, JobResult, JobTimings, Priority};
pub use shard::{
    FabricKind, ShardCompletion, ShardConfig, ShardJob, ShardReject, ShardScheduler, ShardStats,
    StolenJob,
};
pub use stats::{LatencyHistogram, LogHistogram, RuntimeStats};
pub use worker::SchedPolicy;

use atlantis_core::coprocessor::TaskError;
use atlantis_core::AtlantisSystem;
use atlantis_fabric::Device;
use atlantis_pci::OverlapConfig;
use atlantis_simcore::SimDuration;
use job::QueuedJob;
use queue::{JobQueue, PickConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;
use worker::{SharedStats, Worker};

/// Tunables for [`Runtime::serve`].
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Hard bound on queued (not yet running) jobs; submissions beyond
    /// it are rejected with [`RuntimeError::Overloaded`].
    pub queue_capacity: usize,
    /// The scheduling policy.
    pub policy: SchedPolicy,
    /// How far into a priority class a reconfiguration-aware worker may
    /// look for a job matching its loaded design.
    pub scan_depth: usize,
    /// A queued job skipped this many times is served next regardless
    /// of the loaded design (starvation bound).
    pub aging_limit: u32,
    /// Serve through the three-stage software pipeline (prefetch /
    /// execute / writeback on the PLX9080's two DMA channels) so DMA and
    /// compute overlap. `false` serves each job end to end — the
    /// baseline the pipeline is measured against.
    pub pipeline: bool,
    /// Timing model for overlapped phases on the board — how much of
    /// the non-dominant phases' time local-bus contention serialises.
    pub overlap: OverlapConfig,
    /// Max same-design jobs a pipelined worker gathers into one laned
    /// execute pass (`1` disables gathering). Lanes step many instances
    /// of the loaded design together through the SIMD multi-lane CHDL
    /// engine, amortising the host-side execution cost; virtual-time
    /// accounting is unaffected — lanes serialise in virtual time on
    /// the one physical device, so checksums, per-job timings and every
    /// virtual statistic are identical to `lanes = 1`.
    pub lanes: usize,
    /// Reliability policy: fault injection, scrub scheduling, integrity
    /// checks, and the self-healing recovery path. The default,
    /// [`GuardConfig::disabled`], injects nothing and checks nothing —
    /// exactly the pre-guard runtime.
    pub guard: GuardConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            queue_capacity: 256,
            policy: SchedPolicy::ReconfigAware { batch_window: 32 },
            scan_depth: 64,
            aging_limit: 8,
            pipeline: true,
            overlap: OverlapConfig::default(),
            lanes: 8,
            guard: GuardConfig::disabled(),
        }
    }
}

impl RuntimeConfig {
    /// The default configuration but with strict FIFO scheduling — the
    /// baseline the reconfiguration-aware policy is measured against.
    pub fn fifo() -> Self {
        RuntimeConfig {
            policy: SchedPolicy::Fifo,
            ..Self::default()
        }
    }

    /// The default configuration but serving each job end to end with
    /// no DMA/compute overlap — the baseline the pipeline is measured
    /// against.
    pub fn serial() -> Self {
        RuntimeConfig {
            pipeline: false,
            ..Self::default()
        }
    }
}

/// The job server: owns the machine's ACBs (one worker thread each),
/// the admission queue, and the bitstream cache.
#[derive(Debug)]
pub struct Runtime {
    queue: Arc<JobQueue>,
    cache: Arc<BitstreamCache>,
    pool: Arc<BufferPool>,
    shared: Arc<Mutex<SharedStats>>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
    submitted: AtomicU64,
    rejected: AtomicU64,
    rejected_by_class: [AtomicU64; 3],
    started: Instant,
    devices: usize,
}

impl Runtime {
    /// Take ownership of `system`'s boards and start serving: one
    /// worker thread per ACB, all workload bitstreams pre-fitted.
    ///
    /// Fails with [`RuntimeError::NoDevices`] when the system has no
    /// ACBs, and propagates fitter errors should a workload design not
    /// fit the device family.
    pub fn serve(mut system: AtlantisSystem, config: RuntimeConfig) -> Result<Self, RuntimeError> {
        // Preflight through the non-panicking accessors before
        // committing to teardown of the system value.
        if system.try_acb(0).is_none() {
            return Err(RuntimeError::NoDevices);
        }
        let (_host, acbs, _aibs) = system.into_boards();
        let devices = acbs.len();

        let cache = Arc::new(BitstreamCache::new(Device::orca_3t125()));
        cache.prefit_all().map_err(TaskError::Fit)?;

        let queue = Arc::new(JobQueue::new(config.queue_capacity));
        queue.set_workers(devices);
        let pool = BufferPool::new();
        let shared = Arc::new(Mutex::new(SharedStats::new(devices)));
        let pick = PickConfig {
            scan_depth: config.scan_depth,
            batch_window: match config.policy {
                SchedPolicy::Fifo => 0,
                SchedPolicy::ReconfigAware { batch_window } => batch_window,
            },
            aging_limit: config.aging_limit,
        };

        let mut workers = Vec::with_capacity(devices);
        for (i, mut driver) in acbs.into_iter().enumerate() {
            driver.set_overlap(config.overlap);
            let worker = Worker::new(
                i,
                driver,
                Arc::clone(&queue),
                Arc::clone(&cache),
                config.policy,
                pick,
                Arc::clone(&shared),
                Arc::clone(&pool),
                config.pipeline,
                config.lanes,
                config.guard,
            );
            let handle = std::thread::Builder::new()
                .name(format!("atlantis-acb-{i}"))
                .spawn(move || worker.run())
                .expect("spawn worker thread");
            workers.push(handle);
        }

        Ok(Runtime {
            queue,
            cache,
            pool,
            shared,
            workers,
            next_id: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            rejected_by_class: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            started: Instant::now(),
            devices,
        })
    }

    /// Submit a job. Returns a [`JobHandle`] to await the result, or
    /// [`RuntimeError::Overloaded`] when the admission queue is full —
    /// the backpressure signal; the caller decides whether to retry,
    /// shed, or slow down.
    pub fn submit(&self, request: JobRequest) -> Result<JobHandle, RuntimeError> {
        let (tx, rx) = mpsc::channel();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let class = request.priority.index();
        let queued = QueuedJob {
            id,
            request,
            submitted: Instant::now(),
            retries: 0,
            reply: tx,
        };
        match self.queue.push(queued) {
            Ok(()) => {
                self.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(JobHandle { id, rx })
            }
            Err(e) => {
                if matches!(e, RuntimeError::Overloaded { .. }) {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    self.rejected_by_class[class].fetch_add(1, Ordering::Relaxed);
                }
                Err(e)
            }
        }
    }

    /// Number of ACB devices serving jobs.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Jobs currently waiting in the admission queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The admission queue's capacity bound.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// A point-in-time snapshot of serving statistics. Cheap enough to
    /// poll from a monitoring thread while the runtime serves.
    pub fn stats(&self) -> RuntimeStats {
        let s = self.shared.lock().unwrap();
        let (cache_hits, cache_misses) = self.cache.counters();
        let (pool_hits, pool_misses) = self.pool.counters();
        RuntimeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: s.completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            rejected_by_class: [
                self.rejected_by_class[0].load(Ordering::Relaxed),
                self.rejected_by_class[1].load(Ordering::Relaxed),
                self.rejected_by_class[2].load(Ordering::Relaxed),
            ],
            failed: s.failed,
            per_kind: s.per_kind,
            full_loads: s.full_loads,
            partial_switches: s.partial_switches,
            frames_written: s.frames_written,
            reconfig_time: s.reconfig_time,
            dma_time: s.dma_time,
            execute_time: s.execute_time,
            virtual_makespan: s
                .device_busy
                .iter()
                .copied()
                .max()
                .unwrap_or(SimDuration::ZERO),
            pipeline_beats: s.pipeline_beats,
            pipeline_drains: s.pipeline_drains,
            stage_time: s.stage_time,
            window_time: s.window_time,
            overlap_saved: s.overlap_saved,
            laned_passes: s.laned_passes,
            scalar_passes: s.scalar_passes,
            laned_jobs: s.laned_jobs,
            upsets_injected: s.upsets_injected,
            upsets_stealthy: s.upsets_stealthy,
            corrupt_executes: s.corrupt_executes,
            detected_corruptions: s.detected_corruptions,
            silent_corruptions: s.silent_corruptions,
            guard_scrubs: s.guard_scrubs,
            guard_repairs: s.guard_repairs,
            scrub_time: s.scrub_time,
            check_time: s.check_time,
            wasted_time: s.wasted_time,
            retries: s.retries,
            faulted: s.faulted,
            quarantined_devices: s.quarantined_devices,
            detection_latency: s.detection_latency,
            detected_upsets: s.detected_upsets,
            device_scrub_frames: s.device_scrub_frames.clone(),
            busy_total: s.device_busy.iter().copied().sum(),
            pool_hits,
            pool_misses,
            cache_hits,
            cache_misses,
            latency: s.latency.clone(),
            virt_latency: s.virt_latency.clone(),
            wall_elapsed: self.started.elapsed(),
        }
    }

    /// Graceful shutdown: stop admissions, drain every accepted job,
    /// join the workers, and return the final statistics. No accepted
    /// job is lost.
    pub fn shutdown(mut self) -> RuntimeStats {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.stats()
    }
}

impl Drop for Runtime {
    /// Dropping the runtime without [`Runtime::shutdown`] still drains
    /// accepted jobs and joins the workers.
    fn drop(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atlantis_apps::jobs::JobSpec;

    fn small_system(acbs: usize) -> AtlantisSystem {
        AtlantisSystem::builder().with_acbs(acbs).build()
    }

    #[test]
    fn refuses_a_system_without_acbs() {
        let system = AtlantisSystem::builder().with_acbs(0).with_aibs(1).build();
        match Runtime::serve(system, RuntimeConfig::default()) {
            Err(RuntimeError::NoDevices) => {}
            other => panic!("expected NoDevices, got {other:?}"),
        }
    }

    #[test]
    fn serves_a_mixed_workload_to_completion() {
        let rt = Runtime::serve(small_system(2), RuntimeConfig::default()).unwrap();
        let handles: Vec<_> = (0..24)
            .map(|i| {
                rt.submit(JobRequest::new(i % 3, JobSpec::mixed(u64::from(i))))
                    .unwrap()
            })
            .collect();
        for h in handles {
            let r = h.wait().unwrap();
            assert!(r.timings.total_virtual() > SimDuration::ZERO);
        }
        let stats = rt.shutdown();
        assert_eq!(stats.completed, 24);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.per_kind.iter().sum::<u64>(), 24);
        assert!(stats.virtual_makespan > SimDuration::ZERO);
        assert!(stats.latency.count() == 24);
    }

    #[test]
    fn results_are_deterministic_across_policies_and_devices() {
        let specs: Vec<_> = (0..16).map(JobSpec::mixed).collect();
        let run = |config: RuntimeConfig, acbs: usize| -> Vec<(u64, u64)> {
            let rt = Runtime::serve(small_system(acbs), config).unwrap();
            let handles: Vec<_> = specs
                .iter()
                .map(|&s| rt.submit(JobRequest::new(0, s)).unwrap())
                .collect();
            let mut out: Vec<_> = handles
                .into_iter()
                .map(|h| h.wait().unwrap())
                .map(|r| (r.id, r.checksum))
                .collect();
            rt.shutdown();
            out.sort_unstable();
            out
        };
        let fifo = run(RuntimeConfig::fifo(), 1);
        let aware = run(RuntimeConfig::default(), 3);
        assert_eq!(
            fifo, aware,
            "checksums must not depend on policy or device count"
        );
    }

    #[test]
    fn high_priority_jobs_are_tracked_per_kind() {
        let rt = Runtime::serve(small_system(1), RuntimeConfig::default()).unwrap();
        let h = rt
            .submit(JobRequest::new(7, JobSpec::trt(1)).with_priority(Priority::High))
            .unwrap();
        let r = h.wait().unwrap();
        assert_eq!(r.client, 7);
        let stats = rt.shutdown();
        assert_eq!(stats.per_kind[0], 1);
    }

    #[test]
    fn shutdown_then_submit_is_rejected() {
        let rt = Runtime::serve(small_system(1), RuntimeConfig::default()).unwrap();
        let queue = Arc::clone(&rt.queue);
        let stats = rt.shutdown();
        assert_eq!(stats.completed, 0);
        // The queue object itself refuses pushes after close.
        let (tx, _rx) = mpsc::channel();
        let err = queue.push(QueuedJob {
            id: 0,
            request: JobRequest::new(0, JobSpec::trt(0)),
            submitted: Instant::now(),
            retries: 0,
            reply: tx,
        });
        assert!(matches!(err, Err(RuntimeError::ShuttingDown)));
    }
}
