//! Errors of the serving runtime.

use crate::job::Priority;
use atlantis_core::coprocessor::TaskError;
use std::fmt;
use std::time::Duration;

/// Why the runtime refused or failed a request.
#[derive(Debug)]
pub enum RuntimeError {
    /// The bounded admission queue is full — the caller must back off
    /// and retry. This is the graceful-degradation path: under overload
    /// the runtime rejects *new* work instead of growing without bound
    /// or stalling accepted jobs. The rejection carries enough context
    /// for the caller to act on it: how deep the rejecting queue was,
    /// which priority class was refused, and an estimate of when a slot
    /// is likely to free up.
    Overloaded {
        /// The queue capacity that was exhausted.
        capacity: usize,
        /// Jobs queued at the moment of rejection (≥ `capacity`).
        depth: usize,
        /// The refused job's priority class.
        priority: Priority,
        /// Estimated wall time until the queue drains a slot: the
        /// observed per-job service EWMA × depth ÷ workers. Zero until
        /// the first completion calibrates the estimate — treat it as a
        /// hint, not a guarantee.
        retry_after: Duration,
    },
    /// The runtime is shutting down and accepts no new jobs.
    ShuttingDown,
    /// The system handed to [`Runtime::serve`](crate::Runtime::serve)
    /// has no computing boards.
    NoDevices,
    /// A computing board expected at this index is missing.
    NoSuchDevice(usize),
    /// The coprocessor rejected a task operation (registration fit,
    /// reconfiguration).
    Task(TaskError),
    /// The job repeatedly executed on devices whose configuration was
    /// later found corrupted and exhausted its retry budget (see
    /// [`GuardConfig::max_retries`](crate::GuardConfig::max_retries)).
    Faulted {
        /// Clean re-execution attempts made before giving up.
        retries: u32,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Overloaded {
                capacity,
                depth,
                priority,
                retry_after,
            } => {
                write!(
                    f,
                    "admission queue full ({depth}/{capacity} jobs, {priority:?} class refused, \
                     retry in ~{retry_after:?})"
                )
            }
            RuntimeError::ShuttingDown => write!(f, "runtime is shutting down"),
            RuntimeError::NoDevices => write!(f, "system has no computing boards"),
            RuntimeError::NoSuchDevice(i) => write!(f, "no ACB at index {i}"),
            RuntimeError::Task(e) => write!(f, "coprocessor: {e}"),
            RuntimeError::Faulted { retries } => {
                write!(f, "job failed integrity checks after {retries} retries")
            }
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Task(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TaskError> for RuntimeError {
    fn from(e: TaskError) -> Self {
        RuntimeError::Task(e)
    }
}
