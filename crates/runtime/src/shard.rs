//! The embeddable per-shard scheduler: a deterministic, virtual-time
//! twin of the threaded [`Runtime`](crate::Runtime).
//!
//! The threaded runtime serves real client threads — wall clocks,
//! condvars, OS scheduling — which is the right shape for a live
//! process but the wrong shape for a cluster simulation that must
//! produce byte-identical statistics on every run. A [`ShardScheduler`]
//! is one simulated host: a backplane of ACB+AIB board pairs (payload
//! in and result out stream over the shard's own
//! [`Aab`](atlantis_backplane::Aab) connections, per the paper's §2.3
//! topology) plus the *same* scheduling semantics the threaded workers
//! use — a bounded admission queue with three priority classes and the
//! reconfiguration-aware pick (bounded look-ahead, bounded batch
//! window, bounded skip aging), per-board
//! [`Coprocessor`](atlantis_core::Coprocessor) hardware task switching
//! against the shared [`BitstreamCache`], and
//! [`WorkloadContext`](atlantis_apps::jobs::WorkloadContext) execution
//! for bit-exact outcomes.
//!
//! Everything advances on an explicit discrete-event clock: `submit`
//! admits (or sheds) at a virtual instant, `advance` retires
//! completions up to an instant and back-fills freed boards in
//! deterministic `(time, board index)` order. Two runs over the same
//! submission sequence produce identical completions, identical
//! histograms, identical everything — the property the cluster layer's
//! determinism fingerprints assert.

use crate::cache::BitstreamCache;
use crate::error::RuntimeError;
use crate::job::Priority;
use crate::stats::LogHistogram;
use crate::worker::SchedPolicy;
use atlantis_apps::jobs::{JobKind, JobSpec, WorkloadContext};
use atlantis_backplane::{Aab, BackplaneKind, ConnectionId};
use atlantis_core::coprocessor::TaskStats;
use atlantis_core::Coprocessor;
use atlantis_fabric::Device;
use atlantis_simcore::{SimDuration, SimTime};
use std::collections::VecDeque;
use std::sync::Arc;

/// The reconfigurable fabric family a shard's boards are built from.
///
/// The paper's machine is heterogeneous by construction: the ACB carries
/// a 2×2 matrix of ORCA 3T125s while the AIB pairs Virtex XCV600s
/// (§2.1–2.2). A cluster grown board-by-board inherits that mix, and the
/// two families differ in exactly the two costs the scheduler trades:
/// the design clock (ORCA programmable to 80 MHz, Virtex to 100 MHz —
/// the substitution table's service-rate ratio) and the design-switch
/// cost (the paired-Virtex board streams twice an XCV600's frames
/// through its 33 MHz port, so a full load is ~57 ms against the
/// ORCA's ~37 ms: faster service, dearer reconfiguration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FabricKind {
    /// Lucent ORCA 3T125 boards (the ACB family) — the baseline.
    #[default]
    Orca,
    /// Paired Xilinx Virtex XCV600 boards (the AIB family): 100/80
    /// design clock, double capacity, double configuration stream.
    Virtex,
}

impl FabricKind {
    /// The capacity model of this fabric family.
    pub fn device(self) -> Device {
        match self {
            FabricKind::Orca => Device::orca_3t125(),
            FabricKind::Virtex => Device::virtex_aib_pair(),
        }
    }

    /// Scale a baseline (ORCA-clock) execution time to this fabric:
    /// identical cycle counts retire faster on a faster design clock.
    /// ORCA is the identity, so homogeneous fleets are byte-for-byte
    /// unchanged.
    pub fn scale_execute(self, d: SimDuration) -> SimDuration {
        match self {
            FabricKind::Orca => d,
            // 80 MHz -> 100 MHz: same cycles in 4/5 the time.
            FabricKind::Virtex => SimDuration::from_picos(d.as_picos() * 4 / 5),
        }
    }
}

/// Tunables for one simulated shard host.
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// ACB+AIB board pairs on the shard's backplane.
    pub boards: usize,
    /// The fabric family of every board on this shard. Heterogeneous
    /// *clusters* mix shards of different kinds; one shard is uniform.
    pub fabric: FabricKind,
    /// Hard bound on queued (not yet running) jobs.
    pub queue_capacity: usize,
    /// The scheduling policy (same semantics as the threaded runtime).
    pub policy: SchedPolicy,
    /// Look-ahead distance of the reconfiguration-aware pick.
    pub scan_depth: usize,
    /// Starvation bound: a job skipped this many times is served next.
    pub aging_limit: u32,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            boards: 2,
            fabric: FabricKind::Orca,
            queue_capacity: 64,
            policy: SchedPolicy::ReconfigAware { batch_window: 32 },
            scan_depth: 64,
            aging_limit: 8,
        }
    }
}

/// One job submitted to a shard.
#[derive(Debug, Clone, Copy)]
pub struct ShardJob {
    /// Caller-assigned id, echoed into the completion.
    pub id: u64,
    /// The tenant the job belongs to.
    pub tenant: u32,
    /// Admission priority class.
    pub priority: Priority,
    /// The deterministic work description.
    pub spec: JobSpec,
}

/// Why a shard refused a job — the virtual-clock analogue of
/// [`RuntimeError::Overloaded`], carrying the same context (depth,
/// class, retry-after) in virtual time.
#[derive(Debug, Clone, Copy)]
pub struct ShardReject {
    /// The queue capacity that was exhausted.
    pub capacity: usize,
    /// Jobs queued at the moment of rejection.
    pub depth: usize,
    /// The refused job's priority class.
    pub priority: Priority,
    /// Estimated virtual time until a queue slot frees: per-job service
    /// EWMA × depth ÷ active boards. Zero until the first completion.
    pub retry_after: SimDuration,
}

/// One retired job with its full virtual-time decomposition.
#[derive(Debug, Clone, Copy)]
pub struct ShardCompletion {
    /// Caller-assigned id.
    pub id: u64,
    /// The tenant the job belonged to.
    pub tenant: u32,
    /// Admission priority class.
    pub priority: Priority,
    /// The work that was done.
    pub spec: JobSpec,
    /// The shard-local board that served the job.
    pub board: usize,
    /// Deterministic digest of the job's output.
    pub checksum: u64,
    /// FPGA cycles consumed.
    pub cycles: u64,
    /// When the job was admitted.
    pub submitted: SimTime,
    /// When a board picked it up.
    pub started: SimTime,
    /// When its result finished streaming off the backplane.
    pub done: SimTime,
    /// Virtual payload-in + result-out time on the shard's backplane.
    pub dma: SimDuration,
    /// Virtual reconfiguration time (zero on an affinity hit).
    pub reconfig: SimDuration,
    /// Virtual execution time at the design clock.
    pub execute: SimDuration,
    /// Whether serving required a hardware task switch. `false` is a
    /// *shard cache hit*: the design was already on the board's fabric —
    /// the affinity the cluster router exists to exploit.
    pub switched: bool,
}

impl ShardCompletion {
    /// Queue wait: admission → pickup.
    pub fn queue_wait(&self) -> SimDuration {
        self.started.since(self.submitted)
    }

    /// End-to-end virtual latency: admission → result out.
    pub fn latency(&self) -> SimDuration {
        self.done.since(self.submitted)
    }

    /// Virtual time the job occupied its board.
    pub fn service(&self) -> SimDuration {
        self.dma + self.reconfig + self.execute
    }
}

/// Deterministic counters of one shard. Every field derives from the
/// virtual clock, so fixed-seed campaigns fingerprint byte-identically.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardStats {
    /// Jobs admitted.
    pub submitted: u64,
    /// Jobs retired.
    pub completed: u64,
    /// Jobs refused with [`ShardReject`].
    pub rejected: u64,
    /// Refusals per priority class.
    pub rejected_by_class: [u64; 3],
    /// Completions per workload kind (indexed like [`JobKind::ALL`]).
    pub per_kind: [u64; 4],
    /// Jobs served without a hardware task switch — the shard's
    /// bitstream-affinity hits.
    pub affinity_hits: u64,
    /// Full FPGA configurations across the shard's boards.
    pub full_loads: u64,
    /// Partial-reconfiguration switches across the shard's boards.
    pub partial_switches: u64,
    /// Virtual time spent reconfiguring.
    pub reconfig_time: SimDuration,
    /// Virtual time payloads and results spent on the backplane.
    pub dma_time: SimDuration,
    /// Virtual execution time.
    pub execute_time: SimDuration,
    /// Per-board busy time.
    pub board_busy: Vec<SimDuration>,
    /// End-to-end virtual latency histogram (picoseconds).
    pub latency: LogHistogram,
    /// Queue-wait histogram (picoseconds).
    pub queue_wait: LogHistogram,
    /// Boards quarantined out of the advertised capacity.
    pub quarantined: u64,
    /// The latest completion instant seen.
    pub last_done: SimTime,
}

impl ShardStats {
    /// Fraction of completions served without a task switch.
    pub fn affinity_hit_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.affinity_hits as f64 / self.completed as f64
        }
    }
}

/// One board pair: the ACB-side coprocessor plus its reserved
/// backplane connection to the AIB that feeds it.
#[derive(Debug)]
struct Board {
    coproc: Coprocessor,
    conn: ConnectionId,
    /// The design currently on the fabric (mirrors
    /// `coproc.current_task()` without the borrow).
    loaded: Option<JobKind>,
    /// Consecutive same-design jobs — the batching window's counter.
    batch_len: usize,
    free_at: SimTime,
    in_flight: Option<ShardCompletion>,
    quarantined: bool,
}

#[derive(Debug)]
struct QueueEntry {
    job: ShardJob,
    submitted: SimTime,
    skips: u32,
    /// When the job's payload is resident on this host. `SimTime::ZERO`
    /// for locally admitted work; stolen jobs carry the instant their
    /// cross-shard hop transfer lands, and a board that picks one up
    /// earlier waits for the data (charged as DMA time).
    ready_at: SimTime,
}

/// A job lifted out of a donor shard's queue by the cluster's work
/// stealer: the job plus its original admission instant, preserved so
/// end-to-end latency keeps counting the time spent in the donor queue.
#[derive(Debug, Clone, Copy)]
pub struct StolenJob {
    /// The queued job, unchanged.
    pub job: ShardJob,
    /// When the donor admitted it.
    pub submitted: SimTime,
}

/// One simulated shard host — see the module docs.
#[derive(Debug)]
pub struct ShardScheduler {
    cfg: ShardConfig,
    boards: Vec<Board>,
    aab: Aab,
    /// Reserved full-width connection for cluster-level payload hops
    /// (work stealing): slots `2·boards` and `2·boards + 1`. Idle unless
    /// the cluster steals, so it never perturbs board-pair transfers.
    hop_conn: ConnectionId,
    classes: [VecDeque<QueueEntry>; Priority::CLASSES],
    queued: usize,
    cache: Arc<BitstreamCache>,
    ctx: WorkloadContext,
    stats: ShardStats,
    /// EWMA of per-job virtual service time, integer picoseconds.
    service_ewma_ps: u64,
    /// Full configuration time of this shard's fabric — the breakeven
    /// fallback before any task switch has been measured.
    full_config: SimDuration,
}

impl ShardScheduler {
    /// Build a shard: `cfg.boards` ACB+AIB pairs on a fresh backplane
    /// (ACB in slot `2i`, its AIB in slot `2i+1`, one full-width
    /// connection each — the §2.3 pairing that yields 1 GB/s per pair).
    /// `cache` is the cluster-wide fitted-bitstream cache; call
    /// [`BitstreamCache::prefit_all`] once before sharing it.
    pub fn new(cfg: ShardConfig, cache: Arc<BitstreamCache>) -> Result<Self, RuntimeError> {
        if cfg.boards == 0 {
            return Err(RuntimeError::NoDevices);
        }
        // Two extra slots host the reserved cluster-hop connection.
        let mut aab = Aab::new(BackplaneKind::Configurable, 2 * cfg.boards + 2);
        let mut boards = Vec::with_capacity(cfg.boards);
        let device = cfg.fabric.device();
        for i in 0..cfg.boards {
            let conn = aab
                .connect(2 * i, 2 * i + 1, aab.config().channels())
                .expect("fresh backplane has free channels");
            boards.push(Board {
                coproc: Coprocessor::new(device.clone()),
                conn,
                loaded: None,
                batch_len: 0,
                free_at: SimTime::ZERO,
                in_flight: None,
                quarantined: false,
            });
        }
        let hop_conn = aab
            .connect(2 * cfg.boards, 2 * cfg.boards + 1, aab.config().channels())
            .expect("fresh backplane has free channels");
        let stats = ShardStats {
            board_busy: vec![SimDuration::ZERO; cfg.boards],
            ..ShardStats::default()
        };
        Ok(ShardScheduler {
            cfg,
            boards,
            aab,
            hop_conn,
            classes: Default::default(),
            queued: 0,
            cache,
            ctx: WorkloadContext::new(),
            stats,
            service_ewma_ps: 0,
            full_config: device.full_config_time(),
        })
    }

    /// Admit `job` at virtual instant `now`, or shed it when the queue
    /// bound is reached. Admission immediately back-fills any idle
    /// board.
    pub fn submit(&mut self, now: SimTime, job: ShardJob) -> Result<(), ShardReject> {
        if self.queued >= self.cfg.queue_capacity {
            self.stats.rejected += 1;
            self.stats.rejected_by_class[job.priority.index()] += 1;
            return Err(ShardReject {
                capacity: self.cfg.queue_capacity,
                depth: self.queued,
                priority: job.priority,
                retry_after: self.retry_after(self.queued),
            });
        }
        self.stats.submitted += 1;
        self.classes[job.priority.index()].push_back(QueueEntry {
            job,
            submitted: now,
            skips: 0,
            ready_at: SimTime::ZERO,
        });
        self.queued += 1;
        self.schedule(now);
        Ok(())
    }

    /// Accept a job stolen from another shard's queue at virtual instant
    /// `now`. The original admission instant is preserved (latency keeps
    /// counting the donor-queue wait) and `ready_at` is when the payload
    /// lands on this host — a board that starts the job earlier waits
    /// for the data, charged as DMA time. Not counted as a submission:
    /// the donor already did, and the cluster's steal ledger reconciles
    /// the transfer. Returns `false` (job untouched) on a full queue.
    pub fn submit_stolen(&mut self, now: SimTime, stolen: StolenJob, ready_at: SimTime) -> bool {
        if self.queued >= self.cfg.queue_capacity {
            return false;
        }
        self.classes[stolen.job.priority.index()].push_back(QueueEntry {
            job: stolen.job,
            submitted: stolen.submitted,
            skips: 0,
            ready_at,
        });
        self.queued += 1;
        self.schedule(now);
        true
    }

    /// Lift up to `max` queued jobs of `kind` out of this shard's queue
    /// for a thief, least-urgent class first and newest-first within a
    /// class — the jobs that would otherwise wait longest. In-flight
    /// work is never stolen. Queue-bound accounting moves with them;
    /// admission stats stay (the jobs were genuinely admitted here).
    pub fn steal_queued(&mut self, kind: JobKind, max: usize) -> Vec<StolenJob> {
        let mut out = Vec::new();
        for class in self.classes.iter_mut().rev() {
            if out.len() >= max {
                break;
            }
            let mut i = class.len();
            while i > 0 && out.len() < max {
                i -= 1;
                if class[i].job.spec.kind == kind {
                    let e = class.remove(i).expect("index in range");
                    self.queued -= 1;
                    out.push(StolenJob {
                        job: e.job,
                        submitted: e.submitted,
                    });
                }
            }
        }
        out
    }

    /// `(jobs, payload bytes)` of up to `max` queued jobs of `kind`, in
    /// the order [`steal_queued`](Self::steal_queued) would take them —
    /// the thief's cost estimate before committing to a steal.
    pub fn queued_backlog(&self, kind: JobKind, max: usize) -> (usize, u64) {
        let mut n = 0usize;
        let mut bytes = 0u64;
        for class in self.classes.iter().rev() {
            for e in class.iter().rev() {
                if n >= max {
                    return (n, bytes);
                }
                if e.job.spec.kind == kind {
                    n += 1;
                    bytes += e.job.spec.payload_bytes();
                }
            }
        }
        (n, bytes)
    }

    /// The workload kind with the most queued jobs (ties to
    /// [`JobKind::ALL`] order), if anything is queued — the donor-side
    /// answer to "what is worth a design switch to take".
    pub fn dominant_queued_kind(&self) -> Option<JobKind> {
        let mut counts = [0usize; JobKind::COUNT];
        for class in &self.classes {
            for e in class {
                counts[e.job.spec.kind.index()] += 1;
            }
        }
        JobKind::ALL
            .iter()
            .copied()
            .max_by_key(|k| counts[k.index()])
            .filter(|k| counts[k.index()] > 0)
    }

    /// Whether any non-quarantined board is idle at `t` — the thief-side
    /// precondition of a steal.
    pub fn has_idle_board(&self, t: SimTime) -> bool {
        self.boards
            .iter()
            .any(|b| !b.quarantined && b.in_flight.is_none() && b.free_at <= t)
    }

    /// Designs resident on idle boards at `t`, in board order — what a
    /// steal can serve without a reconfiguration (a *warm* steal).
    pub fn idle_resident_kinds(&self, t: SimTime) -> Vec<JobKind> {
        self.boards
            .iter()
            .filter(|b| !b.quarantined && b.in_flight.is_none() && b.free_at <= t)
            .filter_map(|b| b.loaded)
            .collect()
    }

    /// The measured mean hardware task-switch cost on this shard —
    /// total serving-path reconfiguration time over total switches —
    /// falling back to a full configuration of this fabric before
    /// anything has been measured. Boot preloads increment the switch
    /// counters but record no reconfiguration time (boot precedes the
    /// serving clock), so the conservative full-configuration prior
    /// holds until a switch is actually *paid* mid-campaign. This is
    /// the self-calibrating reconfiguration term of the steal
    /// breakeven test.
    pub fn mean_switch_cost(&self) -> SimDuration {
        let switches = self.stats.full_loads + self.stats.partial_switches;
        if switches == 0 || self.stats.reconfig_time == SimDuration::ZERO {
            self.full_config
        } else {
            self.stats.reconfig_time / switches
        }
    }

    /// The calibrated mean service time (zero until the first
    /// completion) — the per-job term of the steal benefit estimate.
    pub fn service_ewma(&self) -> SimDuration {
        SimDuration::from_picos(self.service_ewma_ps)
    }

    /// Virtual time to move `bytes` over the shard's reserved cluster-hop
    /// backplane connection, were it free now.
    pub fn hop_cost(&self, bytes: u64) -> SimDuration {
        self.aab
            .connection_bandwidth(self.hop_conn)
            .transfer_time(bytes)
    }

    /// Stream `bytes` of stolen payload out over the reserved hop
    /// connection starting at `at` (serialized after previous hops —
    /// back-to-back steals queue on the link) and return the completion
    /// instant. Charged on this (the donor's) backplane, per §2.3: the
    /// payload crosses the donor's AAB on its way to the inter-host
    /// link.
    pub fn hop_transfer(&mut self, at: SimTime, bytes: u64) -> SimTime {
        let (_, done) = self
            .aab
            .transfer(self.hop_conn, at, bytes)
            .expect("hop connection is live");
        done
    }

    /// Estimated virtual time until `depth` queued jobs free one slot.
    pub fn retry_after(&self, depth: usize) -> SimDuration {
        let boards = self.active_boards().max(1) as u64;
        SimDuration::from_picos(self.service_ewma_ps.saturating_mul(depth as u64) / boards)
    }

    /// Retire every completion at or before `now` (cascading freed
    /// boards onto queued work at the exact completion instants) and
    /// return them ordered by `(done, board)`.
    pub fn advance(&mut self, now: SimTime) -> Vec<ShardCompletion> {
        let mut out = Vec::new();
        loop {
            let next = self
                .boards
                .iter()
                .enumerate()
                .filter_map(|(i, b)| b.in_flight.as_ref().map(|f| (f.done, i)))
                .filter(|&(done, _)| done <= now)
                .min();
            let Some((done, i)) = next else { break };
            let fin = self.boards[i].in_flight.take().expect("board has work");
            self.note_completion(&fin);
            out.push(fin);
            self.schedule(done);
        }
        self.schedule(now);
        out
    }

    /// The earliest in-flight completion instant, if any — the shard's
    /// contribution to the cluster's event horizon.
    pub fn next_completion(&self) -> Option<SimTime> {
        self.boards
            .iter()
            .filter_map(|b| b.in_flight.as_ref().map(|f| f.done))
            .min()
    }

    /// Run the shard to idle: retire everything queued and in flight.
    pub fn drain(&mut self) -> Vec<ShardCompletion> {
        let mut out = Vec::new();
        while let Some(t) = self.next_completion() {
            out.extend(self.advance(t));
        }
        out
    }

    /// Boot-time provisioning: configure `board` with `kind`'s design
    /// before serving begins, the way the paper's host software loads
    /// initial configurations at setup (§2.2). The configuration is
    /// counted in the task-switch stats, but the board is free
    /// immediately — boot precedes the serving clock. Returns `false`
    /// for an unknown, busy, or quarantined board.
    pub fn preload(&mut self, board: usize, kind: JobKind) -> bool {
        if board >= self.boards.len()
            || self.boards[board].quarantined
            || self.boards[board].in_flight.is_some()
        {
            return false;
        }
        let _ = self.switch_board(board, kind);
        // The serving batch window starts fresh.
        self.boards[board].batch_len = 0;
        true
    }

    /// Quarantine a board (a guard capacity delta): it finishes its
    /// in-flight job but is never scheduled again, shrinking the
    /// shard's advertised capacity. Refuses to quarantine the last
    /// active board — a shard always keeps serving. Returns whether the
    /// quarantine took effect.
    pub fn quarantine_board(&mut self, board: usize) -> bool {
        if board >= self.boards.len() || self.boards[board].quarantined {
            return false;
        }
        if self.active_boards() <= 1 {
            return false;
        }
        self.boards[board].quarantined = true;
        self.stats.quarantined += 1;
        true
    }

    /// Boards still serving (total minus quarantined) — the advertised
    /// capacity the router weighs.
    pub fn active_boards(&self) -> usize {
        self.boards.iter().filter(|b| !b.quarantined).count()
    }

    /// Total board pairs, quarantined or not.
    pub fn boards(&self) -> usize {
        self.boards.len()
    }

    /// The fabric family this shard's boards are built from.
    pub fn fabric(&self) -> FabricKind {
        self.cfg.fabric
    }

    /// Jobs queued (excluding in-flight work).
    pub fn queue_depth(&self) -> usize {
        self.queued
    }

    /// The admission bound.
    pub fn queue_capacity(&self) -> usize {
        self.cfg.queue_capacity
    }

    /// Jobs currently executing on boards.
    pub fn in_flight(&self) -> usize {
        self.boards.iter().filter(|b| b.in_flight.is_some()).count()
    }

    /// Outstanding work (queued + in flight) per active board — the
    /// load metric the router's spill decision compares.
    pub fn load(&self) -> f64 {
        (self.queued + self.in_flight()) as f64 / self.active_boards().max(1) as f64
    }

    /// The shard's deterministic counters.
    pub fn stats(&self) -> &ShardStats {
        &self.stats
    }

    /// The shard's backplane (per-slot accounting lives here).
    pub fn backplane(&self) -> &Aab {
        &self.aab
    }

    // ---- internals -----------------------------------------------------

    fn note_completion(&mut self, fin: &ShardCompletion) {
        let s = &mut self.stats;
        s.completed += 1;
        s.per_kind[JobKind::ALL
            .iter()
            .position(|&k| k == fin.spec.kind)
            .expect("kind is one of ALL")] += 1;
        if !fin.switched {
            s.affinity_hits += 1;
        }
        s.latency.record_virtual(fin.latency());
        s.queue_wait.record_virtual(fin.queue_wait());
        s.last_done = s.last_done.max(fin.done);
        let v = fin.service().as_picos();
        self.service_ewma_ps = if self.service_ewma_ps == 0 {
            v
        } else {
            self.service_ewma_ps - self.service_ewma_ps / 4 + v / 4
        };
    }

    /// Back-fill every board idle at `t` from the queue. Among idle
    /// boards, prefer one whose fabric already holds the head job's
    /// design (so two designs resident on two boards serve side by
    /// side instead of ping-ponging); otherwise lowest index. Jobs are
    /// then chosen by the priority-classed affinity pick.
    fn schedule(&mut self, t: SimTime) {
        loop {
            if self.queued == 0 {
                break;
            }
            let idle = |b: &Board| !b.quarantined && b.in_flight.is_none() && b.free_at <= t;
            let Some(first) = self.boards.iter().position(idle) else {
                break;
            };
            let head_kind = self
                .classes
                .iter()
                .find_map(|c| c.front())
                .expect("queued > 0")
                .job
                .spec
                .kind;
            let bi = self
                .boards
                .iter()
                .position(|b| idle(b) && b.loaded == Some(head_kind))
                .unwrap_or(first);
            let entry = self.pick(bi);
            self.start(bi, t, entry);
        }
    }

    /// The threaded queue's pick, per board: urgent-most non-empty
    /// class; within it, prefer the board's loaded design inside the
    /// scan window unless the batch window closed or the head aged out.
    fn pick(&mut self, bi: usize) -> QueueEntry {
        let board = &self.boards[bi];
        let batch_window = match self.cfg.policy {
            SchedPolicy::Fifo => 0,
            SchedPolicy::ReconfigAware { batch_window } => batch_window,
        };
        let prefer = board.loaded.filter(|_| board.batch_len < batch_window);
        let class = self
            .classes
            .iter_mut()
            .find(|c| !c.is_empty())
            .expect("pick on a non-empty queue");
        self.queued -= 1;
        if let Some(kind) = prefer {
            let head_aged = class
                .front()
                .is_some_and(|e| e.skips >= self.cfg.aging_limit);
            if !head_aged {
                let j = class
                    .iter()
                    .take(self.cfg.scan_depth)
                    .position(|e| e.job.spec.kind == kind);
                if let Some(j) = j {
                    for e in class.iter_mut().take(j) {
                        e.skips += 1;
                    }
                    return class.remove(j).expect("index in range");
                }
            }
        }
        class.pop_front().expect("class is non-empty")
    }

    /// Serve `entry` on board `bi` starting at `t`: payload DMA over
    /// the pair's backplane connection, hardware task switch, execute,
    /// result DMA back. The board is occupied for the serial sum — the
    /// shard engine models the paper's base (un-pipelined) serving path.
    fn start(&mut self, bi: usize, t: SimTime, entry: QueueEntry) {
        let spec = entry.job.spec;
        // A stolen job whose payload is still in flight over the hop
        // link stalls the board until it lands; the wait is charged as
        // DMA — the board is blocked on data either way.
        let data_at = if entry.ready_at > t {
            entry.ready_at
        } else {
            t
        };
        let (_, dma_in_done) = self
            .aab
            .transfer(self.boards[bi].conn, data_at, spec.payload_bytes())
            .expect("pair connection is live");
        let dma_in = dma_in_done.since(t);
        let (reconfig, switched) = self.switch_board(bi, spec.kind);
        let outcome = self.ctx.execute(&spec);
        let execute = self.cfg.fabric.scale_execute(outcome.compute);
        let exec_end = dma_in_done + reconfig + execute;
        let (_, done) = self
            .aab
            .transfer(self.boards[bi].conn, exec_end, spec.result_bytes())
            .expect("pair connection is live");
        let dma = dma_in + done.since(exec_end);

        let s = &mut self.stats;
        s.dma_time += dma;
        s.reconfig_time += reconfig;
        s.execute_time += execute;
        s.board_busy[bi] += done.since(t);

        let board = &mut self.boards[bi];
        board.free_at = done;
        board.in_flight = Some(ShardCompletion {
            id: entry.job.id,
            tenant: entry.job.tenant,
            priority: entry.job.priority,
            spec,
            board: bi,
            checksum: outcome.checksum,
            cycles: outcome.cycles,
            submitted: entry.submitted,
            started: t,
            done,
            dma,
            reconfig,
            execute,
            switched,
        });
    }

    /// Switch board `bi` to `kind`'s design (registering the shared
    /// cached fit on first use) and fold the task-stats delta into the
    /// shard counters. Mirrors the threaded worker's `switch_design`.
    fn switch_board(&mut self, bi: usize, kind: JobKind) -> (SimDuration, bool) {
        let name = kind.design_name();
        if !self.boards[bi].coproc.has_task(name) {
            let fitted = self
                .cache
                .get(kind)
                .expect("workload designs are prefit for the shard's device family");
            self.boards[bi]
                .coproc
                .register_fitted(name, (*fitted).clone())
                .expect("cache fits match the board device");
        }
        let board = &mut self.boards[bi];
        let before: TaskStats = board.coproc.stats();
        let reconfig = board
            .coproc
            .switch_to(name)
            .map_err(RuntimeError::from)
            .expect("registered task switches cleanly");
        let after = board.coproc.stats();
        let switched = reconfig > SimDuration::ZERO;
        board.loaded = Some(kind);
        board.batch_len = if switched { 1 } else { board.batch_len + 1 };
        let s = &mut self.stats;
        s.full_loads += after.full_loads - before.full_loads;
        s.partial_switches += after.partial_switches - before.partial_switches;
        (reconfig, switched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(boards: usize, capacity: usize) -> ShardScheduler {
        let cache = Arc::new(BitstreamCache::new(Device::orca_3t125()));
        cache.prefit_all().expect("designs fit");
        ShardScheduler::new(
            ShardConfig {
                boards,
                queue_capacity: capacity,
                ..ShardConfig::default()
            },
            cache,
        )
        .expect("boards > 0")
    }

    fn job(id: u64, spec: JobSpec) -> ShardJob {
        ShardJob {
            id,
            tenant: (id % 3) as u32,
            priority: Priority::Normal,
            spec,
        }
    }

    #[test]
    fn refuses_zero_boards() {
        let cache = Arc::new(BitstreamCache::new(Device::orca_3t125()));
        let r = ShardScheduler::new(
            ShardConfig {
                boards: 0,
                ..ShardConfig::default()
            },
            cache,
        );
        assert!(matches!(r, Err(RuntimeError::NoDevices)));
    }

    #[test]
    fn serves_a_mixed_workload_deterministically() {
        let run = || {
            let mut s = shard(2, 64);
            let mut t = SimTime::ZERO;
            for i in 0..24u64 {
                s.submit(t, job(i, JobSpec::mixed(i))).unwrap();
                t += SimDuration::from_micros(5);
            }
            let mut fins = s.advance(t);
            fins.extend(s.drain());
            assert_eq!(fins.len(), 24);
            (
                fins.iter().map(|f| (f.id, f.checksum)).collect::<Vec<_>>(),
                s.stats().clone(),
            )
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b, "completions replay identically");
        assert_eq!(sa, sb, "stats replay identically");
        assert_eq!(sa.completed, 24);
        assert_eq!(sa.per_kind.iter().sum::<u64>(), 24);
        assert!(sa.latency.count() == 24 && sa.queue_wait.count() == 24);
        assert!(sa.last_done > SimTime::ZERO);
    }

    #[test]
    fn checksums_match_the_software_oracle() {
        let mut s = shard(3, 64);
        let specs: Vec<_> = (0..12).map(JobSpec::mixed).collect();
        for (i, &spec) in specs.iter().enumerate() {
            s.submit(SimTime::ZERO, job(i as u64, spec)).unwrap();
        }
        let mut fins = s.drain();
        fins.sort_by_key(|f| f.id);
        let mut oracle = WorkloadContext::new();
        for (f, spec) in fins.iter().zip(&specs) {
            assert_eq!(f.checksum, oracle.execute(spec).checksum);
            assert_eq!(f.service(), f.dma + f.reconfig + f.execute);
            assert!(f.done.since(f.started) == f.service());
        }
    }

    #[test]
    fn overload_sheds_with_context_and_retry_hint() {
        let mut s = shard(1, 4);
        let mut rejected = None;
        for i in 0..16u64 {
            if let Err(r) = s.submit(SimTime::ZERO, job(i, JobSpec::trt(i))) {
                rejected = Some(r);
                break;
            }
        }
        let r = rejected.expect("tiny queue must shed");
        assert_eq!(r.capacity, 4);
        assert!(r.depth >= 4);
        assert_eq!(r.priority, Priority::Normal);
        // No completion yet → the estimate is still uncalibrated.
        assert_eq!(r.retry_after, SimDuration::ZERO);
        s.drain();
        assert!(s.stats().rejected >= 1);
        assert_eq!(
            s.stats().rejected_by_class[Priority::Normal.index()],
            s.stats().rejected
        );
        // After completions the EWMA calibrates and the hint is real.
        assert!(s.retry_after(4) > SimDuration::ZERO);
    }

    #[test]
    fn affinity_batching_beats_fifo_on_switches() {
        let mix: Vec<_> = (0..40).map(JobSpec::mixed).collect();
        let run = |policy| {
            let cache = Arc::new(BitstreamCache::new(Device::orca_3t125()));
            cache.prefit_all().unwrap();
            let mut s = ShardScheduler::new(
                ShardConfig {
                    boards: 1,
                    queue_capacity: 64,
                    policy,
                    ..ShardConfig::default()
                },
                cache,
            )
            .unwrap();
            for (i, &spec) in mix.iter().enumerate() {
                s.submit(SimTime::ZERO, job(i as u64, spec)).unwrap();
            }
            s.drain();
            s.stats().clone()
        };
        let fifo = run(SchedPolicy::Fifo);
        let aware = run(SchedPolicy::ReconfigAware { batch_window: 32 });
        assert!(
            aware.full_loads + aware.partial_switches < fifo.full_loads + fifo.partial_switches,
            "affinity pick must reduce switches: {} vs {}",
            aware.full_loads + aware.partial_switches,
            fifo.full_loads + fifo.partial_switches
        );
        assert!(aware.affinity_hit_rate() > fifo.affinity_hit_rate());
        assert_eq!(aware.completed, fifo.completed);
    }

    #[test]
    fn quarantine_shrinks_capacity_but_never_kills_the_shard() {
        let mut s = shard(2, 64);
        assert_eq!(s.active_boards(), 2);
        assert!(s.quarantine_board(0));
        assert_eq!(s.active_boards(), 1);
        assert!(!s.quarantine_board(1), "last board must keep serving");
        assert!(!s.quarantine_board(0), "idempotent");
        for i in 0..8u64 {
            s.submit(SimTime::ZERO, job(i, JobSpec::trt(i))).unwrap();
        }
        let fins = s.drain();
        assert_eq!(fins.len(), 8);
        assert!(
            fins.iter().all(|f| f.board == 1),
            "only the live board serves"
        );
        assert_eq!(s.stats().quarantined, 1);
    }

    #[test]
    fn priority_classes_serve_urgent_first() {
        let mut s = shard(1, 64);
        // Fill the board, then queue a Low before a High at the same instant.
        s.submit(SimTime::ZERO, job(0, JobSpec::trt(0))).unwrap();
        let mut low = job(1, JobSpec::image(32, 1));
        low.priority = Priority::Low;
        let mut high = job(2, JobSpec::nbody(32, 2));
        high.priority = Priority::High;
        s.submit(SimTime::ZERO, low).unwrap();
        s.submit(SimTime::ZERO, high).unwrap();
        let fins = s.drain();
        let order: Vec<u64> = fins.iter().map(|f| f.id).collect();
        assert_eq!(order, vec![0, 2, 1], "High overtakes Low: {order:?}");
    }

    #[test]
    fn backplane_accounts_payload_and_result_bytes() {
        let mut s = shard(2, 64);
        let mut moved = 0u64;
        for i in 0..6u64 {
            let spec = JobSpec::volume(64, i);
            moved += spec.payload_bytes() + spec.result_bytes();
            s.submit(SimTime::ZERO, job(i, spec)).unwrap();
        }
        s.drain();
        let total: u64 = (0..2)
            .map(|b| s.backplane().slot_stats(2 * b).bytes_moved)
            .sum();
        assert_eq!(total, moved, "every byte crosses the AAB exactly once");
        assert!(s.backplane().slot_stats(0).busy > SimDuration::ZERO);
    }

    fn fabric_shard(fabric: FabricKind) -> ShardScheduler {
        let cache = Arc::new(BitstreamCache::new(fabric.device()));
        cache.prefit_all().expect("designs fit both families");
        ShardScheduler::new(
            ShardConfig {
                boards: 1,
                fabric,
                ..ShardConfig::default()
            },
            cache,
        )
        .expect("boards > 0")
    }

    #[test]
    fn virtex_fabric_executes_faster_with_identical_checksums() {
        let run = |fabric| {
            let mut s = fabric_shard(fabric);
            for i in 0..8u64 {
                s.submit(SimTime::ZERO, job(i, JobSpec::mixed(i))).unwrap();
            }
            let mut fins = s.drain();
            fins.sort_by_key(|f| f.id);
            (fins, s.stats().clone())
        };
        let (orca, so) = run(FabricKind::Orca);
        let (virtex, sv) = run(FabricKind::Virtex);
        for (o, v) in orca.iter().zip(&virtex) {
            assert_eq!(o.checksum, v.checksum, "fabric never changes results");
            assert_eq!(v.execute, FabricKind::Virtex.scale_execute(o.execute));
            assert!(v.execute < o.execute);
        }
        assert!(sv.execute_time < so.execute_time);
        // The other side of the trade: the paired-Virtex board streams a
        // bigger configuration, so design switches cost more there.
        assert!(
            FabricKind::Virtex.device().full_config_time()
                > FabricKind::Orca.device().full_config_time()
        );
    }

    #[test]
    fn stolen_jobs_keep_their_admission_instant_and_wait_for_data() {
        let mut donor = shard(1, 64);
        let mut thief = shard(1, 64);
        let submitted = SimTime::ZERO;
        // Occupy the donor's board, then queue four more of one kind.
        for i in 0..5u64 {
            donor.submit(submitted, job(i, JobSpec::trt(i))).unwrap();
        }
        assert_eq!(donor.queue_depth(), 4);
        let (n, bytes) = donor.queued_backlog(JobKind::TrtEvent, 8);
        assert_eq!(n, 4);
        assert!(bytes > 0);
        assert_eq!(donor.dominant_queued_kind(), Some(JobKind::TrtEvent));

        let now = SimTime::ZERO + SimDuration::from_micros(3);
        let stolen = donor.steal_queued(JobKind::TrtEvent, 2);
        assert_eq!(stolen.len(), 2);
        assert_eq!(donor.queue_depth(), 2);
        let ready = now + SimDuration::from_millis(1);
        for s in stolen {
            assert_eq!(s.submitted, submitted, "donor-queue wait keeps counting");
            assert!(thief.submit_stolen(now, s, ready));
        }
        let fins = thief.drain();
        assert_eq!(fins.len(), 2);
        for f in &fins {
            assert_eq!(f.submitted, submitted);
            assert_eq!(f.done.since(f.started), f.service());
        }
        // The first board start precedes the payload landing: the stall
        // is charged as DMA, and the service identity still holds.
        assert!(fins[0].started < ready);
        assert!(fins[0].dma >= ready.since(fins[0].started));
        // The thief never counts a stolen job as its own admission.
        assert_eq!(thief.stats().submitted, 0);
        assert_eq!(thief.stats().completed, 2);
        assert_eq!(donor.drain().len(), 3);
    }

    #[test]
    fn switch_cost_estimate_calibrates_from_measurement() {
        let mut s = shard(1, 64);
        // Uncalibrated: fall back to a full configuration of the fabric.
        assert_eq!(
            s.mean_switch_cost(),
            Device::orca_3t125().full_config_time()
        );
        for i in 0..6u64 {
            s.submit(SimTime::ZERO, job(i, JobSpec::mixed(i))).unwrap();
        }
        s.drain();
        let st = s.stats();
        let switches = st.full_loads + st.partial_switches;
        assert!(switches > 0);
        assert_eq!(s.mean_switch_cost(), st.reconfig_time / switches);
    }

    #[test]
    fn hop_transfers_serialize_on_the_reserved_connection() {
        let mut s = shard(2, 64);
        let bytes = 1 << 20;
        let cost = s.hop_cost(bytes);
        assert!(cost > SimDuration::ZERO);
        let a = s.hop_transfer(SimTime::ZERO, bytes);
        let b = s.hop_transfer(SimTime::ZERO, bytes);
        assert!(b >= a + cost, "back-to-back hops queue on the link");
        // The hop link never collides with board-pair DMA slots.
        for i in 0..4u64 {
            s.submit(SimTime::ZERO, job(i, JobSpec::volume(32, i)))
                .unwrap();
        }
        s.drain();
        assert_eq!(s.backplane().slot_stats(2 * 2).bytes_moved, 2 * bytes);
    }
}
