//! Job requests, results, and completion handles.

use crate::error::RuntimeError;
use atlantis_apps::jobs::JobSpec;
use atlantis_simcore::SimDuration;
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Admission priority. Higher classes are always served first; within a
/// class the scheduler may reorder bounded-many positions to batch jobs
/// sharing a design (see
/// [`SchedPolicy::ReconfigAware`](crate::SchedPolicy::ReconfigAware)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-critical (e.g. online trigger decisions).
    High,
    /// The default class.
    Normal,
    /// Bulk/batch work.
    Low,
}

impl Priority {
    /// Number of priority classes.
    pub const CLASSES: usize = 3;

    /// Class index, 0 = most urgent.
    pub fn index(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// One client request: which tenant asks, how urgently, and for what.
#[derive(Debug, Clone, Copy)]
pub struct JobRequest {
    /// Client (tenant) identifier, echoed into the result.
    pub client: u32,
    /// Admission priority.
    pub priority: Priority,
    /// The deterministic work description.
    pub spec: JobSpec,
}

impl JobRequest {
    /// A normal-priority request from `client`.
    pub fn new(client: u32, spec: JobSpec) -> Self {
        JobRequest {
            client,
            priority: Priority::Normal,
            spec,
        }
    }

    /// The same request at a different priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

/// Per-job timing decomposition — the runtime's observability surface.
/// Wall-clock fields measure the *serving system* (host threads, lock
/// waits); `SimDuration` fields measure the *simulated machine* (DMA
/// cycles, configuration port, design clock).
#[derive(Debug, Clone, Copy)]
pub struct JobTimings {
    /// Which ACB executed the job.
    pub device: usize,
    /// Wall time from submission until a worker picked the job up.
    pub queue_wait: Duration,
    /// Wall time from submission until completion.
    pub wall: Duration,
    /// Virtual time of payload DMA in + result DMA out.
    pub dma: SimDuration,
    /// Virtual time spent reconfiguring the FPGA (zero when the design
    /// was already loaded — the batching win).
    pub reconfig: SimDuration,
    /// Virtual execution time at the design clock.
    pub execute: SimDuration,
    /// Whether serving this job required a hardware task switch.
    pub switched: bool,
}

impl JobTimings {
    /// Total virtual time the job occupied its device.
    pub fn total_virtual(&self) -> SimDuration {
        self.dma + self.reconfig + self.execute
    }
}

/// A completed job.
#[derive(Debug, Clone, Copy)]
pub struct JobResult {
    /// The runtime-assigned job id (submission order).
    pub id: u64,
    /// The client that submitted the job.
    pub client: u32,
    /// The work that was done.
    pub spec: JobSpec,
    /// Deterministic digest of the job's output.
    pub checksum: u64,
    /// FPGA cycles consumed.
    pub cycles: u64,
    /// The timing decomposition.
    pub timings: JobTimings,
}

/// The caller's side of a submitted job: await the result.
#[derive(Debug)]
pub struct JobHandle {
    pub(crate) id: u64,
    pub(crate) rx: mpsc::Receiver<Result<JobResult, RuntimeError>>,
}

impl JobHandle {
    /// The runtime-assigned job id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the job completes. `Err(ShuttingDown)` only if the
    /// runtime was torn down forcibly — a graceful
    /// [`Runtime::shutdown`](crate::Runtime::shutdown) drains every
    /// accepted job first.
    pub fn wait(self) -> Result<JobResult, RuntimeError> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(RuntimeError::ShuttingDown),
        }
    }
}

/// A job as it sits in the admission queue.
#[derive(Debug)]
pub(crate) struct QueuedJob {
    pub id: u64,
    pub request: JobRequest,
    pub submitted: Instant,
    /// Times this job has been requeued after an integrity event.
    pub retries: u32,
    pub reply: mpsc::Sender<Result<JobResult, RuntimeError>>,
}
