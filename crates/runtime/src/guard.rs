//! Reliability policy for the serving runtime (DESIGN.md §11).
//!
//! The ATLANTIS parts were chosen partly for "support for read-back/
//! test" (paper §2): in the radiation-exposed environments the machine
//! targeted, single-event upsets flip configuration bits and silently
//! corrupt the loaded logic. This module holds the *policy* side of the
//! defence — when to inject (for campaigns), when to scan, when to
//! scrub, when to give up on a device — while `fabric::scrub` provides
//! the mechanisms and the worker wires both into the serving loop.
//!
//! Everything is driven by **virtual device time**: upset arrivals are
//! a Poisson process over the device's busy clock, scrubs recur on a
//! virtual-time interval, and every check or repair is charged to the
//! device exactly like DMA or reconfiguration. With the policy
//! disabled (the default) the worker's hot path is untouched.

use atlantis_simcore::rng::WorkloadRng;
use atlantis_simcore::SimDuration;

/// Reliability policy knobs. [`GuardConfig::disabled`] (the default)
/// turns every mechanism off and leaves the serving path exactly as it
/// was; [`GuardConfig::protected`] is the recommended production
/// posture (per-beat CRC scans, periodic deep scrubs, bounded retries).
#[derive(Debug, Clone, Copy)]
pub struct GuardConfig {
    /// Mean SEU arrivals per device-second of *virtual* busy time
    /// (Poisson). `0.0` disables fault injection.
    pub upset_rate: f64,
    /// Fraction of injected upsets that refresh the frame's stored CRC
    /// — corruption a CRC read-back cannot see, only a golden-image
    /// scrub or a host re-execution vote.
    pub stealth_fraction: f64,
    /// Seed of the injection arrival process. Each device forks an
    /// independent stream, so a fixed seed replays the same campaign.
    pub upset_seed: u64,
    /// Virtual-time interval between periodic deep scrubs (full
    /// read-back against the golden image). `ZERO` disables them.
    pub scrub_interval: SimDuration,
    /// Run the configuration port's cheap frame-CRC scan every `N`
    /// pipeline beats (serial mode: every `N` jobs). `0` disables it.
    pub crc_every: u64,
    /// Re-execute every `N`-th job's result on the RISC host and vote
    /// against the FPGA's checksum — the detector of last resort for
    /// CRC-stealthy corruption. `0` disables voting.
    pub vote_every: u64,
    /// How many times a suspect job may be requeued before it fails
    /// with [`RuntimeError::Faulted`](crate::RuntimeError::Faulted).
    pub max_retries: u32,
    /// Virtual backoff charged to the device per suspect-job requeue.
    pub retry_backoff: SimDuration,
    /// Consecutive dirty integrity events after which the device is
    /// quarantined and its work drained to healthy boards. `0`
    /// disables quarantine. The last active device is never
    /// quarantined — someone has to keep serving.
    pub quarantine_after: u32,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

impl GuardConfig {
    /// Everything off — no injection, no scans, no scrubs, no voting,
    /// no quarantine. The worker hot path is byte-identical to a build
    /// without the guard layer.
    pub fn disabled() -> Self {
        GuardConfig {
            upset_rate: 0.0,
            stealth_fraction: 0.0,
            upset_seed: 0,
            scrub_interval: SimDuration::ZERO,
            crc_every: 0,
            vote_every: 0,
            max_retries: 3,
            retry_backoff: SimDuration::ZERO,
            quarantine_after: 0,
        }
    }

    /// The recommended protective posture: a CRC scan after every beat
    /// (≈ 21 µs on the ORCA 3T125 — cheap next to a job), a deep scrub
    /// every 250 ms of virtual time, three retries with 50 µs backoff,
    /// and quarantine after eight consecutive dirty events. Injection
    /// stays off; campaigns set `upset_rate` explicitly.
    pub fn protected() -> Self {
        GuardConfig {
            scrub_interval: SimDuration::from_millis(250),
            crc_every: 1,
            vote_every: 0,
            max_retries: 3,
            retry_backoff: SimDuration::from_micros(50),
            quarantine_after: 8,
            ..Self::disabled()
        }
    }

    /// Whether any mechanism is on. `false` short-circuits every guard
    /// hook in the worker.
    pub fn is_active(&self) -> bool {
        self.upset_rate > 0.0
            || self.scrub_interval > SimDuration::ZERO
            || self.crc_every > 0
            || self.vote_every > 0
    }
}

/// Per-worker guard state: the arrival/scrub schedules over the
/// device's virtual clock and the detection bookkeeping.
#[derive(Debug)]
pub(crate) struct GuardState {
    pub cfg: GuardConfig,
    pub rng: WorkloadRng,
    /// Virtual device time of the next SEU arrival.
    pub next_upset: Option<SimDuration>,
    /// Virtual device time of the next periodic deep scrub.
    pub next_scrub: Option<SimDuration>,
    /// Injected-but-unrepaired upsets: (arrival time, stealthy).
    /// Mirrors the fabric's tracker for detection-latency accounting.
    pub pending: Vec<(SimDuration, bool)>,
    /// Pipeline beats (serial: jobs) seen — the CRC scan cadence.
    pub beats: u64,
    /// Jobs since the last re-execution vote.
    pub jobs_since_vote: u64,
    /// Consecutive integrity checks that found corruption.
    pub consecutive_dirty: u32,
    /// Set when this device has been quarantined.
    pub quarantined: bool,
}

impl GuardState {
    pub fn new(cfg: GuardConfig, device_index: usize) -> Self {
        // Stream 0 is the parent's own stream; device forks start at 1.
        let mut rng =
            WorkloadRng::seed_from_u64(cfg.upset_seed ^ 0x5E0_5C4AB).fork(device_index as u64 + 1);
        let next_upset =
            (cfg.upset_rate > 0.0).then(|| SimDuration::from_secs_f64(rng.exp_gap(cfg.upset_rate)));
        let next_scrub = (cfg.scrub_interval > SimDuration::ZERO).then_some(cfg.scrub_interval);
        GuardState {
            cfg,
            rng,
            next_upset,
            next_scrub,
            pending: Vec::new(),
            beats: 0,
            jobs_since_vote: 0,
            consecutive_dirty: 0,
            quarantined: false,
        }
    }

    pub fn is_active(&self) -> bool {
        self.cfg.is_active()
    }

    /// Advance the arrival schedule by one exponential gap.
    pub fn schedule_next_upset(&mut self) {
        if let Some(t) = self.next_upset {
            self.next_upset =
                Some(t + SimDuration::from_secs_f64(self.rng.exp_gap(self.cfg.upset_rate)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_is_inert() {
        let cfg = GuardConfig::default();
        assert!(!cfg.is_active());
        let g = GuardState::new(cfg, 0);
        assert!(g.next_upset.is_none());
        assert!(g.next_scrub.is_none());
    }

    #[test]
    fn protected_config_is_active_without_injection() {
        let cfg = GuardConfig::protected();
        assert!(cfg.is_active());
        assert_eq!(cfg.upset_rate, 0.0);
        assert_eq!(cfg.crc_every, 1);
        assert!(cfg.scrub_interval > SimDuration::ZERO);
    }

    #[test]
    fn arrival_schedule_is_deterministic_and_per_device() {
        let cfg = GuardConfig {
            upset_rate: 1000.0,
            ..GuardConfig::disabled()
        };
        let mut a = GuardState::new(cfg, 0);
        let mut b = GuardState::new(cfg, 0);
        let mut c = GuardState::new(cfg, 1);
        for _ in 0..16 {
            assert_eq!(a.next_upset, b.next_upset, "same device, same stream");
            a.schedule_next_upset();
            b.schedule_next_upset();
            c.schedule_next_upset();
        }
        assert_ne!(
            a.next_upset, c.next_upset,
            "devices draw independent streams"
        );
    }
}
