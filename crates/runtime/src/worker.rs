//! Per-device worker: one OS thread owning one ACB.
//!
//! A worker pops jobs from the shared admission queue and serves each
//! one end to end on its board: payload DMA in (through the real
//! PLX9080/PCI model), a hardware task switch when the needed design is
//! not the one currently loaded (partial reconfiguration via the
//! coprocessor API), deterministic execution, result DMA out. Every
//! stage's virtual cost is attributed to the job, so the serving layer
//! is observable per job and per device.

use crate::cache::BitstreamCache;
use crate::error::RuntimeError;
use crate::job::{JobResult, JobTimings, QueuedJob};
use crate::queue::{JobQueue, PickConfig, Pop};
use crate::stats::LatencyHistogram;
use atlantis_apps::jobs::{JobKind, WorkloadContext};
use atlantis_board::Acb;
use atlantis_core::coprocessor::TaskStats;
use atlantis_core::Coprocessor;
use atlantis_fabric::Device;
use atlantis_pci::Driver;
use atlantis_simcore::SimDuration;
use std::sync::{Arc, Mutex};

/// The scheduling policy workers follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Strict arrival order within each priority class. Every change of
    /// workload kind pays a reconfiguration.
    Fifo,
    /// Prefer jobs for the design already loaded on the device, looking
    /// a bounded distance into the queue, for at most `batch_window`
    /// consecutive jobs (and never past a job that has already been
    /// skipped `aging_limit` times). Amortises configuration cost across
    /// batches — the paper's hardware-task-switch economics.
    ReconfigAware {
        /// Max consecutive same-design jobs before the device must take
        /// the queue head regardless of design.
        batch_window: usize,
    },
}

/// Aggregated counters all workers write and `Runtime::stats` reads.
#[derive(Debug, Default)]
pub(crate) struct SharedStats {
    pub completed: u64,
    pub failed: u64,
    pub per_kind: [u64; 4],
    pub full_loads: u64,
    pub partial_switches: u64,
    pub frames_written: u64,
    pub reconfig_time: SimDuration,
    pub dma_time: SimDuration,
    pub execute_time: SimDuration,
    pub device_busy: Vec<SimDuration>,
    pub latency: LatencyHistogram,
}

impl SharedStats {
    pub fn new(devices: usize) -> Self {
        SharedStats {
            device_busy: vec![SimDuration::ZERO; devices],
            latency: LatencyHistogram::new(),
            ..Default::default()
        }
    }
}

pub(crate) struct Worker {
    pub device_index: usize,
    pub driver: Driver<Acb>,
    pub coproc: Coprocessor,
    pub ctx: WorkloadContext,
    pub queue: Arc<JobQueue>,
    pub cache: Arc<BitstreamCache>,
    pub policy: SchedPolicy,
    pub pick: PickConfig,
    pub shared: Arc<Mutex<SharedStats>>,
    batch_len: usize,
    slot: usize,
}

impl Worker {
    pub fn new(
        device_index: usize,
        driver: Driver<Acb>,
        queue: Arc<JobQueue>,
        cache: Arc<BitstreamCache>,
        policy: SchedPolicy,
        pick: PickConfig,
        shared: Arc<Mutex<SharedStats>>,
    ) -> Self {
        Worker {
            device_index,
            driver,
            coproc: Coprocessor::new(Device::orca_3t125()),
            ctx: WorkloadContext::new(),
            queue,
            cache,
            policy,
            pick,
            shared,
            batch_len: 0,
            slot: 0,
        }
    }

    /// Serve until the queue closes and drains, then exit. Every job
    /// popped before the drain completes is answered — accepted work is
    /// never lost.
    pub fn run(mut self) {
        loop {
            let prefer = match self.policy {
                SchedPolicy::Fifo => None,
                SchedPolicy::ReconfigAware { .. } => self.coproc.current_task().map(str::to_owned),
            };
            match self.queue.pop(self.pick, prefer.as_deref(), self.batch_len) {
                Pop::Job(job) => self.serve(job),
                Pop::Drained => break,
            }
        }
    }

    fn serve(&mut self, job: QueuedJob) {
        let queue_wait = job.submitted.elapsed();
        let spec = job.request.spec;

        // Stage the payload into the next job slot over real DMA.
        let slots = self.driver.target().job_slots();
        let addr = self
            .driver
            .target()
            .job_slot_addr(self.slot)
            .expect("slot index in range");
        self.slot = (self.slot + 1) % slots;
        let payload = vec![(spec.seed as u8) ^ 0x5A; spec.payload_bytes() as usize];
        self.driver.take_elapsed();
        self.driver.dma_write(addr, &payload);

        // Hardware task switch (cached bitstream, partial reconfig).
        let before: TaskStats = self.coproc.stats();
        let reconfig = match self.load_task(spec.kind) {
            Ok(t) => t,
            Err(e) => {
                self.shared.lock().unwrap().failed += 1;
                let _ = job.reply.send(Err(e));
                return;
            }
        };
        let switched = reconfig > SimDuration::ZERO;
        self.batch_len = if switched { 1 } else { self.batch_len + 1 };
        let delta = {
            let after = self.coproc.stats();
            TaskStats {
                full_loads: after.full_loads - before.full_loads,
                partial_switches: after.partial_switches - before.partial_switches,
                frames_written: after.frames_written - before.frames_written,
                reconfig_time: after.reconfig_time - before.reconfig_time,
            }
        };

        // Execute, then read the result back.
        let outcome = self.ctx.execute(&spec);
        let (_readback, _) = self.driver.dma_read(addr, spec.result_bytes() as usize);
        let dma = self.driver.take_elapsed();

        let timings = JobTimings {
            device: self.device_index,
            queue_wait,
            wall: job.submitted.elapsed(),
            dma,
            reconfig,
            execute: outcome.compute,
            switched,
        };
        let result = JobResult {
            id: job.id,
            client: job.request.client,
            spec,
            checksum: outcome.checksum,
            cycles: outcome.cycles,
            timings,
        };

        {
            let mut s = self.shared.lock().unwrap();
            s.completed += 1;
            let kind_idx = JobKind::ALL
                .iter()
                .position(|&k| k == spec.kind)
                .expect("kind is one of ALL");
            s.per_kind[kind_idx] += 1;
            s.full_loads += delta.full_loads;
            s.partial_switches += delta.partial_switches;
            s.frames_written += delta.frames_written;
            s.reconfig_time += delta.reconfig_time;
            s.dma_time += dma;
            s.execute_time += outcome.compute;
            s.device_busy[self.device_index] += timings.total_virtual();
            s.latency.record(timings.wall);
        }

        // A client that dropped its handle just doesn't read the result.
        let _ = job.reply.send(Ok(result));
    }

    /// Make sure the workload's design is in this device's task library
    /// (installing the shared cached fit on first use), then switch.
    fn load_task(&mut self, kind: JobKind) -> Result<SimDuration, RuntimeError> {
        let name = kind.design_name();
        if !self.coproc.has_task(name) {
            let fitted = self
                .cache
                .get(kind)
                .map_err(|e| RuntimeError::Task(atlantis_core::coprocessor::TaskError::Fit(e)))?;
            self.coproc.register_fitted(name, (*fitted).clone())?;
        }
        Ok(self.coproc.switch_to(name)?)
    }
}
