//! Per-device worker: one OS thread owning one ACB.
//!
//! A worker pops jobs from the shared admission queue and serves them
//! on its board. Two serving modes exist:
//!
//! * **Serial** — each job end to end: payload DMA in (through the real
//!   PLX9080/PCI model), a hardware task switch when the needed design
//!   is not the one currently loaded, deterministic execution, result
//!   DMA out. The device is occupied for the *sum* of the stages.
//! * **Pipelined** (the default) — a three-stage software pipeline.
//!   While job *N* executes in the FPGA matrix, job *N+1*'s payload
//!   streams in on DMA channel 0 and job *N−1*'s result streams out on
//!   channel 1. The PLX9080's two channels and the bridge FIFOs make
//!   the three phases concurrent on the real board, so each pipeline
//!   beat occupies the device for the [overlap
//!   window](atlantis_pci::OverlapConfig) of the phases — close to the
//!   *max*, not the sum. In-flight jobs land in alternating ping/pong
//!   halves of rotating job slots so a prefetch never overwrites a
//!   payload still being executed.
//!
//! The pipeline only ever holds jobs for the design currently loaded:
//! when the next admitted job needs a different design the worker
//! drains in-flight work first (it must execute under the old design),
//! then switches. Reconfiguration-aware batching makes such drains
//! rare. Payload and result staging buffers come from a shared
//! [`BufferPool`], so steady-state serving performs no per-job heap
//! allocation and the driver streams directly in and out of the pooled
//! buffers. Every stage's virtual cost is attributed to the job, so the
//! serving layer stays observable per job and per device.

use crate::bufpool::BufferPool;
use crate::cache::BitstreamCache;
use crate::error::RuntimeError;
use crate::guard::{GuardConfig, GuardState};
use crate::job::{JobResult, JobTimings, QueuedJob};
use crate::queue::{JobQueue, PickConfig, Pop};
use crate::stats::{LatencyHistogram, LogHistogram};
use atlantis_apps::jobs::{JobKind, JobOutcome, JobSpec, WorkloadContext};
use atlantis_board::{Acb, SlotHalf};
use atlantis_core::coprocessor::TaskStats;
use atlantis_core::Coprocessor;
use atlantis_fabric::Device;
use atlantis_pci::{DmaChannel, Driver};
use atlantis_simcore::SimDuration;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The scheduling policy workers follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Strict arrival order within each priority class. Every change of
    /// workload kind pays a reconfiguration.
    Fifo,
    /// Prefer jobs for the design already loaded on the device, looking
    /// a bounded distance into the queue, for at most `batch_window`
    /// consecutive jobs (and never past a job that has already been
    /// skipped `aging_limit` times). Amortises configuration cost across
    /// batches — the paper's hardware-task-switch economics.
    ReconfigAware {
        /// Max consecutive same-design jobs before the device must take
        /// the queue head regardless of design.
        batch_window: usize,
    },
}

/// Aggregated counters all workers write and `Runtime::stats` reads.
#[derive(Debug, Default)]
pub(crate) struct SharedStats {
    pub completed: u64,
    pub failed: u64,
    pub per_kind: [u64; 4],
    pub full_loads: u64,
    pub partial_switches: u64,
    pub frames_written: u64,
    pub reconfig_time: SimDuration,
    pub dma_time: SimDuration,
    pub execute_time: SimDuration,
    pub device_busy: Vec<SimDuration>,
    pub latency: LatencyHistogram,
    /// Per-job virtual service time in integer picoseconds — the
    /// deterministic twin of `latency`.
    pub virt_latency: LogHistogram,
    pub pipeline_beats: u64,
    pub pipeline_drains: u64,
    /// `[prefetch DMA-in, execute, writeback DMA-out]`.
    pub stage_time: [SimDuration; 3],
    pub window_time: SimDuration,
    pub overlap_saved: SimDuration,
    /// Execute passes that retired ≥ 2 gathered same-design jobs.
    pub laned_passes: u64,
    /// Execute passes that retired a single job.
    pub scalar_passes: u64,
    /// Jobs retired through laned passes.
    pub laned_jobs: u64,
    /// Workers still serving (quarantine decrements; never below 1).
    pub active_workers: usize,
    pub upsets_injected: u64,
    pub upsets_stealthy: u64,
    pub corrupt_executes: u64,
    pub detected_corruptions: u64,
    pub silent_corruptions: u64,
    pub guard_scrubs: u64,
    pub guard_repairs: u64,
    pub scrub_time: SimDuration,
    pub check_time: SimDuration,
    pub wasted_time: SimDuration,
    pub retries: u64,
    pub faulted: u64,
    pub quarantined_devices: u64,
    pub detection_latency: SimDuration,
    pub detected_upsets: u64,
    /// Per-device accumulation of `ScrubReport` frame totals.
    pub device_scrub_frames: Vec<u64>,
}

impl SharedStats {
    pub fn new(devices: usize) -> Self {
        SharedStats {
            device_busy: vec![SimDuration::ZERO; devices],
            device_scrub_frames: vec![0; devices],
            latency: LatencyHistogram::new(),
            active_workers: devices,
            ..Default::default()
        }
    }
}

/// A job admitted to the pipeline this beat: design already loaded,
/// reconfiguration already paid and accounted, outcome already computed
/// by the (possibly laned) dispatch pass.
struct Admitted {
    job: QueuedJob,
    outcome: JobOutcome,
    reconfig: SimDuration,
    switched: bool,
    queue_wait: Duration,
}

/// A job whose payload is on the board (prefetch stage done), waiting to
/// execute next beat.
struct Staged {
    job: QueuedJob,
    outcome: JobOutcome,
    addr: u64,
    dma_in: SimDuration,
    reconfig: SimDuration,
    switched: bool,
    queue_wait: Duration,
    /// Ground truth: the job executed while the device's configuration
    /// was corrupt and its checksum was perturbed accordingly. Used
    /// only for the `silent_corruptions` counter — the detection
    /// ladder never reads it.
    corrupt: bool,
}

pub(crate) struct Worker {
    pub device_index: usize,
    pub driver: Driver<Acb>,
    pub coproc: Coprocessor,
    pub ctx: WorkloadContext,
    pub queue: Arc<JobQueue>,
    pub cache: Arc<BitstreamCache>,
    pub policy: SchedPolicy,
    pub pick: PickConfig,
    pub shared: Arc<Mutex<SharedStats>>,
    pool: Arc<BufferPool>,
    pipeline: bool,
    /// Max same-design jobs one execute pass gathers (1 = no gathering).
    lanes: usize,
    batch_len: usize,
    /// Serial mode: next whole job slot.
    slot: usize,
    /// Pipelined mode: next slot *half* in the ping/pong rotation.
    seq: usize,
    staged: Option<Staged>,
    /// Executed job (result ready in its slot half), awaiting writeback.
    executed: Option<Staged>,
    /// A job popped while gathering that needs a different design; it is
    /// dispatched first on the next loop turn, preserving pop order.
    carry: Option<QueuedJob>,
    /// Reliability policy state (injection/scrub schedules, quarantine).
    guard: GuardState,
    /// This device's virtual busy clock — a local mirror of
    /// `shared.device_busy[device_index]` so the guard schedules read
    /// it without taking the stats lock.
    vclock: SimDuration,
}

impl Worker {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        device_index: usize,
        driver: Driver<Acb>,
        queue: Arc<JobQueue>,
        cache: Arc<BitstreamCache>,
        policy: SchedPolicy,
        pick: PickConfig,
        shared: Arc<Mutex<SharedStats>>,
        pool: Arc<BufferPool>,
        pipeline: bool,
        lanes: usize,
        guard: GuardConfig,
    ) -> Self {
        Worker {
            device_index,
            driver,
            coproc: Coprocessor::new(Device::orca_3t125()),
            ctx: WorkloadContext::new(),
            queue,
            cache,
            policy,
            pick,
            shared,
            pool,
            pipeline,
            lanes: lanes.max(1),
            batch_len: 0,
            slot: 0,
            seq: 0,
            staged: None,
            executed: None,
            carry: None,
            guard: GuardState::new(guard, device_index),
            vclock: SimDuration::ZERO,
        }
    }

    fn pipeline_empty(&self) -> bool {
        self.staged.is_none() && self.executed.is_none()
    }

    /// Serve until the queue closes and drains, then exit. Every job
    /// popped before the drain completes is answered — accepted work is
    /// never lost.
    ///
    /// The pop discipline is what makes the pipeline deadlock-free: a
    /// worker only *blocks* on the queue when its pipeline is empty.
    /// While it holds in-flight jobs it polls with `try_pop` and, when
    /// nothing is queued, advances a drain beat instead — so a client
    /// that submitted a single job and is waiting on it never waits on
    /// a successor that will not come.
    pub fn run(mut self) {
        loop {
            // A quarantined device stops taking work; its in-flight
            // jobs are handed back to the queue below.
            if self.guard.quarantined {
                break;
            }
            // A job popped during lane gathering but needing a different
            // design goes first — it was taken from the queue in order.
            if let Some(job) = self.carry.take() {
                self.dispatch(job);
                continue;
            }
            let prefer = match self.policy {
                SchedPolicy::Fifo => None,
                SchedPolicy::ReconfigAware { .. } => self.coproc.current_task().map(str::to_owned),
            };
            if self.pipeline_empty() {
                match self.queue.pop(self.pick, prefer.as_deref(), self.batch_len) {
                    Pop::Job(job) => self.dispatch(job),
                    Pop::Drained => break,
                }
            } else {
                match self
                    .queue
                    .try_pop(self.pick, prefer.as_deref(), self.batch_len)
                {
                    Some(job) => self.dispatch(job),
                    None => self.advance(None),
                }
            }
        }
        if self.guard.quarantined {
            self.evacuate();
        } else {
            self.drain_pipeline();
        }
    }

    /// Serve one popped job. The pipelined path first *gathers* up to
    /// `lanes` queued jobs for the same design and precomputes their
    /// outcomes in one laned pass
    /// ([`WorkloadContext::execute_batch`] — bit-exact with serial
    /// execution), then admits each job to the pipeline individually so
    /// every per-beat virtual-time charge is identical to `lanes = 1`.
    /// Lanes change host wall clock only.
    fn dispatch(&mut self, job: QueuedJob) {
        if !self.pipeline {
            self.serve_serial(job);
            return;
        }
        let batch = self.gather(job);
        let specs: Vec<JobSpec> = batch.iter().map(|j| j.request.spec).collect();
        let outcomes = self.ctx.execute_batch(&specs);
        {
            let mut s = self.shared.lock().unwrap();
            if batch.len() > 1 {
                s.laned_passes += 1;
                s.laned_jobs += batch.len() as u64;
            } else {
                s.scalar_passes += 1;
            }
        }
        for (job, outcome) in batch.into_iter().zip(outcomes) {
            self.admit(job, outcome);
        }
    }

    /// Pull up to `lanes − 1` more queued jobs for `first`'s design. The
    /// pick is driven with the batch length the scheduler *would* see if
    /// the gathered jobs were popped one by one (`base + batch.len()`),
    /// so batching-window and aging decisions match the unlaned run
    /// exactly. A popped job for a different design is stashed in
    /// `carry` and dispatched next turn, preserving pop order.
    fn gather(&mut self, first: QueuedJob) -> Vec<QueuedJob> {
        let mut batch = vec![first];
        if self.lanes <= 1 {
            return batch;
        }
        let design = batch[0].request.spec.kind.design_name();
        let base = if self.coproc.current_task() == Some(design) {
            self.batch_len
        } else {
            0
        };
        while batch.len() < self.lanes {
            match self
                .queue
                .try_pop(self.pick, Some(design), base + batch.len())
            {
                Some(job) if job.request.spec.kind.design_name() == design => batch.push(job),
                Some(job) => {
                    self.carry = Some(job);
                    break;
                }
                None => break,
            }
        }
        batch
    }

    // ---- pipelined path ------------------------------------------------

    /// Admit a job to the pipeline: drain if it needs a design switch
    /// (in-flight jobs must execute under the old design), pay and
    /// account the reconfiguration, then advance one beat with the job
    /// entering the prefetch stage.
    fn admit(&mut self, job: QueuedJob, outcome: JobOutcome) {
        // Queue wait ends at admission: the design-switch drain below
        // is service on this job's behalf, not queueing, so it must
        // not inflate the reported wait.
        let queue_wait = job.submitted.elapsed();
        let spec = job.request.spec;
        if self.coproc.current_task() != Some(spec.kind.design_name()) && !self.pipeline_empty() {
            self.drain_pipeline();
        }

        // Reconfiguration cannot overlap the pipeline (the fabric is
        // being rewritten), so it occupies the device serially.
        let (reconfig, switched) = match self.switch_design(spec.kind, true) {
            Ok(r) => r,
            Err(e) => {
                self.shared.lock().unwrap().failed += 1;
                let _ = job.reply.send(Err(e));
                return;
            }
        };

        self.advance(Some(Admitted {
            job,
            outcome,
            reconfig,
            switched,
            queue_wait,
        }));
    }

    /// One pipeline beat: write back job *N−1* on channel 1, execute job
    /// *N*, prefetch job *N+1* on channel 0 — then charge the device the
    /// overlap window of the three phase times, not their sum.
    fn advance(&mut self, new: Option<Admitted>) {
        // Deliver any SEU arrivals the device's virtual clock has
        // reached — this beat then executes on whatever configuration
        // (clean or corrupt) the campaign left behind.
        self.guard_inject();

        let mut t_in = SimDuration::ZERO;
        let mut t_exec = SimDuration::ZERO;
        let mut t_out = SimDuration::ZERO;

        // Writeback stage (DMA channel 1). The readback bytes are
        // discarded after landing in the pooled buffer: the checksum is
        // computed by the deterministic execution model, and the buffer
        // returns to the pool when it drops.
        let finishing = self.executed.take();
        if let Some(ex) = finishing.as_ref() {
            let len = ex.job.request.spec.result_bytes() as usize;
            let mut out = self.pool.checkout(len);
            t_out = self
                .driver
                .dma_read_into_on(DmaChannel::Ch1, ex.addr, &mut out);
        }

        // Execute stage. The outcome was precomputed by the (possibly
        // laned) dispatch pass; the virtual execute charge is the job's
        // own compute time either way. Executing on a corrupt
        // configuration perturbs the result deterministically — the
        // corruption model the detection ladder is measured against.
        let mut corrupted_now = false;
        if let Some(mut st) = self.staged.take() {
            t_exec = st.outcome.compute;
            if self.guard.is_active() && !self.coproc.fpga().pending_upsets().is_empty() {
                st.outcome.checksum ^= self.coproc.fpga().upset_digest();
                st.corrupt = true;
                corrupted_now = true;
            }
            self.executed = Some(st);
        }

        // Prefetch stage (DMA channel 0) into the next free slot half.
        if let Some(ad) = new {
            let spec = ad.job.request.spec;
            let addr = self.next_half_addr();
            let mut payload = self.pool.checkout(spec.payload_bytes() as usize);
            payload.fill((spec.seed as u8) ^ 0x5A);
            t_in = self
                .driver
                .dma_write_from_on(DmaChannel::Ch0, addr, &payload);
            self.staged = Some(Staged {
                job: ad.job,
                outcome: ad.outcome,
                addr,
                dma_in: t_in,
                reconfig: ad.reconfig,
                switched: ad.switched,
                queue_wait: ad.queue_wait,
                corrupt: false,
            });
        }

        // The per-stage times above are authoritative; drop the driver's
        // serial accumulation of the two DMA calls.
        self.driver.take_elapsed();

        let serial = t_in + t_exec + t_out;
        let window = self.driver.overlap_window([t_in, t_exec, t_out]);
        {
            let mut s = self.shared.lock().unwrap();
            s.pipeline_beats += 1;
            s.stage_time[0] += t_in;
            s.stage_time[1] += t_exec;
            s.stage_time[2] += t_out;
            s.window_time += window;
            s.overlap_saved += serial - window;
            s.device_busy[self.device_index] += window;
            s.dma_time += t_in + t_out;
            s.execute_time += t_exec;
            if corrupted_now {
                s.corrupt_executes += 1;
            }
        }
        self.vclock += window;

        // Run the detection ladder; when any detector fires, every
        // in-flight result on this device is suspect — the finishing
        // job is retried instead of completed.
        let dirty = self.guard_post();
        if let Some(ex) = finishing {
            if dirty {
                {
                    let mut s = self.shared.lock().unwrap();
                    s.detected_corruptions += 1;
                    s.wasted_time += ex.dma_in + ex.outcome.compute;
                }
                self.requeue_or_fail(ex.job);
            } else {
                self.complete(ex, t_out);
            }
        }
    }

    /// Flush every in-flight job (at most two drain beats). Called
    /// before a design switch and at shutdown.
    fn drain_pipeline(&mut self) {
        if self.pipeline_empty() {
            return;
        }
        while !self.pipeline_empty() {
            self.advance(None);
        }
        self.shared.lock().unwrap().pipeline_drains += 1;
    }

    /// The next slot half in the ping/pong rotation. With `slots ≥ 2`
    /// whole slots the rotation spans ≥ 4 halves, so the three in-flight
    /// stages always address three distinct halves — a prefetch can
    /// never overwrite a payload that is still executing or a result
    /// still awaiting writeback.
    fn next_half_addr(&mut self) -> u64 {
        let halves = self.driver.target().job_slots() * 2;
        let idx = self.seq % halves;
        self.seq = (self.seq + 1) % halves;
        let half = if idx.is_multiple_of(2) {
            SlotHalf::Ping
        } else {
            SlotHalf::Pong
        };
        self.driver
            .target()
            .job_slot_half_addr(idx / 2, half)
            .expect("slot index in range")
    }

    /// Answer a job whose writeback just finished.
    fn complete(&mut self, st: Staged, dma_out: SimDuration) {
        let spec = st.job.request.spec;
        let timings = JobTimings {
            device: self.device_index,
            queue_wait: st.queue_wait,
            wall: st.job.submitted.elapsed(),
            dma: st.dma_in + dma_out,
            reconfig: st.reconfig,
            execute: st.outcome.compute,
            switched: st.switched,
        };
        let result = JobResult {
            id: st.job.id,
            client: st.job.request.client,
            spec,
            checksum: st.outcome.checksum,
            cycles: st.outcome.cycles,
            timings,
        };
        {
            let mut s = self.shared.lock().unwrap();
            s.completed += 1;
            s.per_kind[Self::kind_index(spec.kind)] += 1;
            s.latency.record(timings.wall);
            s.virt_latency.record_virtual(timings.total_virtual());
            // Ground truth the policy failed to catch: a corrupt result
            // reached the client.
            if st.corrupt {
                s.silent_corruptions += 1;
            }
        }
        // Service time excludes queue wait: the retry-after estimate
        // must reflect drain rate, not current congestion.
        self.queue
            .note_service(timings.wall.saturating_sub(st.queue_wait));
        // A client that dropped its handle just doesn't read the result.
        let _ = st.job.reply.send(Ok(result));
    }

    // ---- serial path ---------------------------------------------------

    fn serve_serial(&mut self, job: QueuedJob) {
        self.guard_inject();
        let queue_wait = job.submitted.elapsed();
        let spec = job.request.spec;

        // Stage the payload into the next job slot over real DMA,
        // streaming straight out of a pooled buffer.
        let slots = self.driver.target().job_slots();
        let addr = self
            .driver
            .target()
            .job_slot_addr(self.slot)
            .expect("slot index in range");
        self.slot = (self.slot + 1) % slots;
        let mut payload = self.pool.checkout(spec.payload_bytes() as usize);
        payload.fill((spec.seed as u8) ^ 0x5A);
        self.driver.take_elapsed();
        self.driver.dma_write_from(addr, &payload);
        drop(payload);

        // Hardware task switch (cached bitstream, partial reconfig).
        // `charge_busy` is false: the serial path bills the device the
        // job's whole virtual total below, reconfiguration included.
        let (reconfig, switched) = match self.switch_design(spec.kind, false) {
            Ok(r) => r,
            Err(e) => {
                self.shared.lock().unwrap().failed += 1;
                let _ = job.reply.send(Err(e));
                return;
            }
        };

        // Execute, then read the result back into a pooled buffer.
        let mut outcome = self.ctx.execute(&spec);
        let mut corrupt = false;
        if self.guard.is_active() && !self.coproc.fpga().pending_upsets().is_empty() {
            outcome.checksum ^= self.coproc.fpga().upset_digest();
            corrupt = true;
        }
        let mut readback = self.pool.checkout(spec.result_bytes() as usize);
        self.driver.dma_read_into(addr, &mut readback);
        drop(readback);
        let dma = self.driver.take_elapsed();

        let timings = JobTimings {
            device: self.device_index,
            queue_wait,
            wall: job.submitted.elapsed(),
            dma,
            reconfig,
            execute: outcome.compute,
            switched,
        };
        let result = JobResult {
            id: job.id,
            client: job.request.client,
            spec,
            checksum: outcome.checksum,
            cycles: outcome.cycles,
            timings,
        };

        {
            let mut s = self.shared.lock().unwrap();
            s.scalar_passes += 1;
            s.dma_time += dma;
            s.execute_time += outcome.compute;
            s.device_busy[self.device_index] += timings.total_virtual();
            if corrupt {
                s.corrupt_executes += 1;
            }
        }
        self.vclock += timings.total_virtual();

        // The detection ladder runs against this job before its result
        // is released; a detection discards the execution and retries.
        if self.guard.is_active() {
            self.guard.beats += 1;
            let (dirty, _) = self.guard_scan(Some((spec, outcome.checksum)));
            if dirty {
                {
                    let mut s = self.shared.lock().unwrap();
                    s.detected_corruptions += 1;
                    s.wasted_time += dma + outcome.compute;
                }
                self.requeue_or_fail(job);
                return;
            }
        }

        {
            let mut s = self.shared.lock().unwrap();
            s.completed += 1;
            s.per_kind[Self::kind_index(spec.kind)] += 1;
            s.latency.record(timings.wall);
            s.virt_latency.record_virtual(timings.total_virtual());
            if corrupt {
                s.silent_corruptions += 1;
            }
        }
        self.queue
            .note_service(timings.wall.saturating_sub(queue_wait));

        // A client that dropped its handle just doesn't read the result.
        let _ = job.reply.send(Ok(result));
    }

    // ---- shared helpers ------------------------------------------------

    /// Switch the device to `kind`'s design and fold the resulting
    /// task-stats delta (full loads, partial switches, frames,
    /// reconfiguration time) into the shared counters — the one place
    /// reconfiguration accounting lives for both serving paths. Returns
    /// the reconfiguration time and whether a switch actually happened,
    /// and updates the same-design batch length the scheduler's batching
    /// window watches. `charge_busy` additionally bills the
    /// reconfiguration to the device (the pipelined path; the serial
    /// path folds it into the job's virtual total instead).
    fn switch_design(
        &mut self,
        kind: JobKind,
        charge_busy: bool,
    ) -> Result<(SimDuration, bool), RuntimeError> {
        let before: TaskStats = self.coproc.stats();
        let reconfig = self.load_task(kind)?;
        let switched = reconfig > SimDuration::ZERO;
        self.batch_len = if switched { 1 } else { self.batch_len + 1 };
        if switched {
            // A (partial) reconfiguration rewrites every differing and
            // corrupted frame, healing pending upsets as a side effect;
            // mirror the fabric tracker, which the config port cleared.
            self.guard.pending.clear();
        }
        let after = self.coproc.stats();
        {
            let mut s = self.shared.lock().unwrap();
            s.full_loads += after.full_loads - before.full_loads;
            s.partial_switches += after.partial_switches - before.partial_switches;
            s.frames_written += after.frames_written - before.frames_written;
            s.reconfig_time += after.reconfig_time - before.reconfig_time;
            if charge_busy {
                s.device_busy[self.device_index] += reconfig;
            }
        }
        if charge_busy {
            self.vclock += reconfig;
        }
        Ok((reconfig, switched))
    }

    // ---- reliability (atlantis-guard) ----------------------------------

    /// Deliver every SEU whose scheduled arrival the device's virtual
    /// clock has passed. Arrivals are a seeded Poisson process over
    /// virtual busy time, so a fixed seed replays the same campaign
    /// regardless of host scheduling. An upset striking an
    /// unconfigured device flips nothing the machine will ever read;
    /// the draws still advance, keeping the arrival stream independent
    /// of configuration state.
    fn guard_inject(&mut self) {
        if self.guard.cfg.upset_rate <= 0.0 {
            return;
        }
        while let Some(t) = self.guard.next_upset {
            if t > self.vclock {
                break;
            }
            self.guard.schedule_next_upset();
            let stealthy = self.guard.rng.chance(self.guard.cfg.stealth_fraction);
            let dev = self.coproc.fpga().device();
            let (frames, bytes) = (dev.config_frames as u64, dev.frame_bytes as u64);
            let frame = self.guard.rng.below(frames) as u32;
            let byte = self.guard.rng.below(bytes) as u32;
            let bit = self.guard.rng.below(8) as u8;
            let hit = if stealthy {
                self.coproc
                    .fpga_mut()
                    .inject_upset_stealthy(frame, byte, bit)
            } else {
                self.coproc.fpga_mut().inject_upset(frame, byte, bit)
            };
            if hit.is_ok() {
                self.guard.pending.push((t, stealthy));
                let mut s = self.shared.lock().unwrap();
                s.upsets_injected += 1;
                if stealthy {
                    s.upsets_stealthy += 1;
                }
            }
        }
    }

    /// Post-beat reliability work for the pipelined path: run the
    /// detection ladder; when it flags the just-executed job, requeue
    /// it for a clean re-execution. Returns whether any detector found
    /// corruption this beat (the caller then also discards the
    /// finishing job — a detection invalidates every in-flight result).
    fn guard_post(&mut self) -> bool {
        if !self.guard.is_active() {
            return false;
        }
        self.guard.beats += 1;
        let executed = self
            .executed
            .as_ref()
            .map(|ex| (ex.job.request.spec, ex.outcome.checksum));
        let (dirty, suspect) = self.guard_scan(executed);
        if suspect {
            if let Some(ex) = self.executed.take() {
                {
                    let mut s = self.shared.lock().unwrap();
                    s.detected_corruptions += 1;
                    s.wasted_time += ex.dma_in + ex.outcome.compute;
                }
                self.requeue_or_fail(ex.job);
            }
        }
        dirty
    }

    /// The detection ladder, cheapest first: (a) host re-execution
    /// vote — the RISC half recomputes the job through the
    /// deterministic software model, the only detector that sees
    /// CRC-stealthy corruption without a full read-back; (b) the
    /// configuration port's frame-CRC scan; (c) the periodic deep
    /// scrub against the golden image. Anything found triggers a
    /// targeted frame repair, escalating to a full scrub when a
    /// stealthy remainder survives, and advances the quarantine
    /// counter. Every check and repair is charged to the device in
    /// virtual time. Returns `(dirty, suspect)`: whether the device
    /// was found corrupted, and whether the job in `executed` is
    /// implicated.
    fn guard_scan(&mut self, executed: Option<(JobSpec, u64)>) -> (bool, bool) {
        let cfg = self.guard.cfg;
        let mut check_cost = SimDuration::ZERO;
        let mut scrub_cost = SimDuration::ZERO;
        let mut dirty = false;
        let mut suspect = false;
        let mut checked = false;
        let mut scrubs = 0u64;
        let mut repairs = 0u64;
        let mut frames = 0u64;

        // (a) Re-execution vote.
        if let Some((spec, checksum)) = executed {
            if cfg.vote_every > 0 {
                self.guard.jobs_since_vote += 1;
                if self.guard.jobs_since_vote >= cfg.vote_every {
                    self.guard.jobs_since_vote = 0;
                    checked = true;
                    let (ok, cost) = self.ctx.self_check(&spec, checksum);
                    check_cost += cost;
                    if !ok {
                        dirty = true;
                        suspect = true;
                    }
                }
            }
        }

        // (b) Frame-CRC scan (fails harmlessly on an unconfigured
        // device — there is nothing to corrupt there either).
        if cfg.crc_every > 0 && self.guard.beats.is_multiple_of(cfg.crc_every) {
            if let Ok(c) = self.coproc.crc_check() {
                checked = true;
                check_cost += c.time;
                if c.stale_frames > 0 {
                    dirty = true;
                    suspect = executed.is_some();
                }
            }
        }

        // (c) Periodic deep scrub.
        if let Some(t) = self.guard.next_scrub {
            if self.vclock + check_cost >= t {
                self.guard.next_scrub = Some(self.vclock + check_cost + cfg.scrub_interval);
                if let Ok(r) = self.coproc.scrub() {
                    checked = true;
                    scrub_cost += r.time;
                    scrubs += 1;
                    frames += r.frames_repaired as u64;
                    if r.frames_repaired > 0 {
                        dirty = true;
                        suspect = executed.is_some();
                    }
                }
            }
        }

        // Repair: rewrite the frames the CRC scan can identify; a
        // stealthy remainder needs the full golden-image scrub.
        if dirty {
            if !self.coproc.fpga().pending_upsets().is_empty() {
                if let Ok(r) = self.coproc.repair_upsets() {
                    scrub_cost += r.time;
                    repairs += 1;
                    frames += r.frames_repaired as u64;
                }
            }
            if !self.coproc.fpga().pending_upsets().is_empty() {
                if let Ok(r) = self.coproc.scrub() {
                    scrub_cost += r.time;
                    scrubs += 1;
                    frames += r.frames_repaired as u64;
                }
            }
            self.guard.consecutive_dirty += 1;
        } else if checked {
            self.guard.consecutive_dirty = 0;
        }

        // Detection-latency accounting: after the repairs above the
        // fabric tracker is clean, so everything the guard knew was
        // pending has just been detected and repaired.
        let now = self.vclock + check_cost + scrub_cost;
        let mut settled = 0u64;
        let mut latency = SimDuration::ZERO;
        if dirty && self.coproc.fpga().pending_upsets().is_empty() {
            for (arrival, _) in self.guard.pending.drain(..) {
                latency += now.saturating_sub(arrival);
                settled += 1;
            }
        }

        // Quarantine: repeated dirty events mean the board keeps
        // re-corrupting faster than it can serve — stop feeding it
        // work. Never the last active device, and not during shutdown
        // (the drain must finish somewhere).
        let wants_quarantine = cfg.quarantine_after > 0
            && self.guard.consecutive_dirty >= cfg.quarantine_after
            && !self.queue.is_closed();

        self.vclock = now;
        {
            let mut s = self.shared.lock().unwrap();
            s.check_time += check_cost;
            s.scrub_time += scrub_cost;
            s.guard_scrubs += scrubs;
            s.guard_repairs += repairs;
            s.device_scrub_frames[self.device_index] += frames;
            s.device_busy[self.device_index] += check_cost + scrub_cost;
            s.detection_latency += latency;
            s.detected_upsets += settled;
            if wants_quarantine && s.active_workers > 1 {
                s.active_workers -= 1;
                s.quarantined_devices += 1;
                self.guard.quarantined = true;
                self.guard.consecutive_dirty = 0;
            }
        }
        (dirty, suspect)
    }

    /// Hand a suspect job back for a clean re-execution, honouring the
    /// bounded retry budget, or answer it with
    /// [`RuntimeError::Faulted`] when the budget is exhausted. The
    /// configured backoff is charged to this device.
    fn requeue_or_fail(&mut self, mut job: QueuedJob) {
        job.retries += 1;
        if job.retries > self.guard.cfg.max_retries {
            {
                let mut s = self.shared.lock().unwrap();
                s.failed += 1;
                s.faulted += 1;
            }
            let _ = job.reply.send(Err(RuntimeError::Faulted {
                retries: job.retries - 1,
            }));
            return;
        }
        let backoff = self.guard.cfg.retry_backoff;
        self.vclock += backoff;
        {
            let mut s = self.shared.lock().unwrap();
            s.retries += 1;
            s.device_busy[self.device_index] += backoff;
            s.wasted_time += backoff;
        }
        self.queue.requeue(job);
    }

    /// Quarantine exit: hand every in-flight job back to the queue so
    /// healthy devices serve it. In-flight work on a board that just
    /// failed repeated integrity checks is suspect by definition.
    fn evacuate(&mut self) {
        let jobs = [
            self.executed.take().map(|e| e.job),
            self.staged.take().map(|s| s.job),
            self.carry.take(),
        ];
        for job in jobs.into_iter().flatten() {
            self.requeue_or_fail(job);
        }
    }

    fn kind_index(kind: JobKind) -> usize {
        JobKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("kind is one of ALL")
    }

    /// Make sure the workload's design is in this device's task library
    /// (installing the shared cached fit on first use), then switch.
    fn load_task(&mut self, kind: JobKind) -> Result<SimDuration, RuntimeError> {
        let name = kind.design_name();
        if !self.coproc.has_task(name) {
            let fitted = self
                .cache
                .get(kind)
                .map_err(|e| RuntimeError::Task(atlantis_core::coprocessor::TaskError::Fit(e)))?;
            self.coproc.register_fitted(name, (*fitted).clone())?;
        }
        Ok(self.coproc.switch_to(name)?)
    }
}
