//! A zero-copy pool of reusable host-side DMA staging buffers.
//!
//! The real driver pins page-granular host buffers for bus-master DMA;
//! pinning and unpinning per transfer is exactly the software overhead
//! the PLX ioctl model charges 28 µs for. The serving layer therefore
//! keeps a small pool of page-granular buffers alive and recycles them:
//! a worker checks a buffer out, hands it straight to
//! [`Driver::dma_write_from`](atlantis_pci::Driver::dma_write_from) or
//! [`Driver::dma_read_into`](atlantis_pci::Driver::dma_read_into)
//! (which stream directly out of / into it — no intermediate `Vec`),
//! and dropping the checkout returns the allocation to the pool. At
//! steady state a pipeline serves jobs with **zero** per-job heap
//! allocations: every checkout is a recycle.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Host page size the pool rounds capacities to (the granularity the
/// real driver pins DMA buffers at).
pub const PAGE_BYTES: usize = 4096;

/// Free buffers the pool retains before letting further returns drop;
/// bounds pool memory at `MAX_FREE × largest-buffer`.
const MAX_FREE: usize = 32;

/// Cumulative pool counters (monotonic, lock-free reads).
#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    outstanding: AtomicU64,
    high_water: AtomicU64,
}

/// A shared pool of page-granular, reusable DMA staging buffers.
///
/// Checkout picks the smallest free buffer that fits (best fit), so a
/// mixed workload converges on a handful of size classes and stops
/// allocating; a miss allocates a fresh page-rounded buffer that joins
/// the pool when its checkout drops.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Mutex<Vec<Vec<u8>>>,
    counters: Counters,
}

impl BufferPool {
    /// An empty pool.
    pub fn new() -> Arc<Self> {
        Arc::new(BufferPool::default())
    }

    /// Check out a buffer of exactly `len` readable/writable bytes
    /// (capacity rounded up to whole pages). Contents are zeroed.
    pub fn checkout(self: &Arc<Self>, len: usize) -> PoolBuf {
        let rounded = len.div_ceil(PAGE_BYTES).max(1) * PAGE_BYTES;
        let reused = {
            let mut free = self.free.lock().unwrap();
            // Best fit: the smallest retained buffer that holds `len`.
            free.iter()
                .enumerate()
                .filter(|(_, b)| b.capacity() >= rounded)
                .min_by_key(|(_, b)| b.capacity())
                .map(|(i, _)| i)
                .map(|i| free.swap_remove(i))
        };
        let mut buf = match reused {
            Some(b) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                b
            }
            None => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(rounded)
            }
        };
        buf.clear();
        buf.resize(len, 0);
        let out = 1 + self.counters.outstanding.fetch_add(1, Ordering::Relaxed);
        self.counters.high_water.fetch_max(out, Ordering::Relaxed);
        PoolBuf {
            buf,
            pool: Arc::clone(self),
        }
    }

    /// `(hits, misses)`: checkouts served by recycling vs by a fresh
    /// allocation. Steady-state serving shows hits growing and misses
    /// flat.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.counters.hits.load(Ordering::Relaxed),
            self.counters.misses.load(Ordering::Relaxed),
        )
    }

    /// Buffers currently checked out.
    pub fn outstanding(&self) -> u64 {
        self.counters.outstanding.load(Ordering::Relaxed)
    }

    /// The most buffers ever simultaneously checked out.
    pub fn high_water(&self) -> u64 {
        self.counters.high_water.load(Ordering::Relaxed)
    }

    /// Buffers currently parked in the free list.
    pub fn free_len(&self) -> usize {
        self.free.lock().unwrap().len()
    }

    fn give_back(&self, buf: Vec<u8>) {
        self.counters.outstanding.fetch_sub(1, Ordering::Relaxed);
        let mut free = self.free.lock().unwrap();
        if free.len() < MAX_FREE {
            free.push(buf);
        }
    }
}

/// A checked-out pool buffer. Derefs to `[u8]`; dropping it returns the
/// allocation to its pool.
#[derive(Debug)]
pub struct PoolBuf {
    buf: Vec<u8>,
    pool: Arc<BufferPool>,
}

impl PoolBuf {
    /// The underlying (page-rounded) allocation size.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }
}

impl Deref for PoolBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for PoolBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl Drop for PoolBuf {
    fn drop(&mut self) {
        self.pool.give_back(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_is_sized_and_zeroed() {
        let pool = BufferPool::new();
        let mut b = pool.checkout(1000);
        assert_eq!(b.len(), 1000);
        assert!(b.iter().all(|&x| x == 0));
        b.fill(0xAB);
        drop(b);
        // A recycled buffer comes back zeroed, not with stale bytes.
        let b2 = pool.checkout(500);
        assert!(b2.iter().all(|&x| x == 0));
    }

    #[test]
    fn steady_state_serves_from_the_pool_with_zero_allocations() {
        let pool = BufferPool::new();
        // Warm-up: the workload's size classes get allocated once…
        for _ in 0..4 {
            for len in [2048usize, 12_288, 65_536, 1024] {
                let _in = pool.checkout(len);
                let _out = pool.checkout(len / 2);
            }
        }
        let (_, misses_after_warmup) = pool.counters();
        // …then a long serving run recycles every single checkout.
        for _ in 0..1000 {
            for len in [2048usize, 12_288, 65_536, 1024] {
                let _in = pool.checkout(len);
                let _out = pool.checkout(len / 2);
            }
        }
        let (hits, misses) = pool.counters();
        assert_eq!(
            misses, misses_after_warmup,
            "steady state must not allocate"
        );
        assert!(hits >= 8000);
        assert_eq!(pool.outstanding(), 0);
        assert!(pool.high_water() >= 2);
    }

    #[test]
    fn best_fit_prefers_the_smallest_adequate_buffer() {
        let pool = BufferPool::new();
        let big = pool.checkout(PAGE_BYTES * 8);
        let small = pool.checkout(PAGE_BYTES);
        drop(big);
        drop(small);
        assert_eq!(pool.free_len(), 2);
        // A 1-page request must take the 1-page buffer, not the 8-page.
        let b = pool.checkout(100);
        assert_eq!(b.capacity(), PAGE_BYTES);
        drop(b);
        let (hits, misses) = pool.counters();
        assert_eq!((hits, misses), (1, 2));
    }

    #[test]
    fn free_list_is_bounded() {
        let pool = BufferPool::new();
        let bufs: Vec<_> = (0..MAX_FREE + 10).map(|_| pool.checkout(64)).collect();
        drop(bufs);
        assert_eq!(pool.free_len(), MAX_FREE);
    }
}
