//! The shared bitstream cache.
//!
//! Fitting (place & route) is the expensive step of configuration —
//! §2's partial reconfiguration only pays off because the fitted
//! bitstreams of recurring tasks are kept around. The cache fits each
//! workload design once per device family and hands out shared
//! [`FittedDesign`]s; every worker installs them into its coprocessor's
//! task library via
//! [`Coprocessor::register_fitted`](atlantis_core::Coprocessor::register_fitted),
//! so repeat configurations never re-run the fitter.

use atlantis_apps::jobs::JobKind;
use atlantis_fabric::{fit, Device, FitError, FittedDesign};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Fit-once cache of workload bitstreams, keyed by design name.
#[derive(Debug)]
pub struct BitstreamCache {
    device: Device,
    fits: Mutex<HashMap<&'static str, Arc<FittedDesign>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BitstreamCache {
    /// An empty cache for one device family.
    pub fn new(device: Device) -> Self {
        BitstreamCache {
            device,
            fits: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Fit every workload design up front, in parallel (vendored rayon).
    /// Serving then never blocks a job on the fitter.
    pub fn prefit_all(&self) -> Result<(), FitError> {
        let fitted: Vec<(JobKind, Result<FittedDesign, FitError>)> = JobKind::ALL
            .par_iter()
            .map(|&kind| (kind, fit(&kind.build_design(), &self.device)))
            .collect();
        let mut fits = self.fits.lock().unwrap();
        for (kind, result) in fitted {
            fits.insert(kind.design_name(), Arc::new(result?));
        }
        Ok(())
    }

    /// The fitted bitstream for a workload — cached, or fitted on first
    /// use.
    pub fn get(&self, kind: JobKind) -> Result<Arc<FittedDesign>, FitError> {
        if let Some(hit) = self.fits.lock().unwrap().get(kind.design_name()) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let fitted = Arc::new(fit(&kind.build_design(), &self.device)?);
        self.fits
            .lock()
            .unwrap()
            .insert(kind.design_name(), Arc::clone(&fitted));
        Ok(fitted)
    }

    /// `(hits, misses)` of [`BitstreamCache::get`] since construction.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}
