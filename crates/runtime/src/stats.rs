//! Serving-layer statistics: latency histograms and the runtime-wide
//! snapshot.

use atlantis_simcore::SimDuration;
use std::time::Duration;

/// A unit-agnostic log₂-bucketed histogram over `u64` samples — the one
/// percentile implementation shared by the wall-clock serving histogram,
/// the virtual-latency histogram, and the cluster bench. Fixed memory,
/// lock-friendly, good-enough percentiles (each bucket spans a factor of
/// two; the reported percentile is the bucket's upper bound). Record in
/// whatever unit the caller cares about — the serving layers record
/// *integer virtual picoseconds* so two runs of a deterministic campaign
/// produce byte-identical histograms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    /// `buckets[i]` counts samples in `[2^i, 2^(i+1))`; bucket 0 also
    /// holds zero samples.
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.max(1).leading_zeros() as usize - 1).min(self.buckets.len() - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Record one virtual duration in integer picoseconds.
    pub fn record_virtual(&mut self, d: SimDuration) {
        self.record(d.as_picos());
    }

    /// Fold another histogram into this one (cluster-level aggregation
    /// over per-shard histograms).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding the `p`-quantile (`p` in
    /// 0..=1), in the recording unit.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 2f64.powi(i as i32 + 1);
            }
        }
        self.max as f64
    }

    /// The median (`p = 0.5`) bucket bound.
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// The `p = 0.95` bucket bound.
    pub fn p95(&self) -> f64 {
        self.percentile(0.95)
    }

    /// The `p = 0.99` bucket bound — the tail the cluster bench sweeps
    /// for its latency knee.
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }
}

/// A log₂-bucketed histogram of wall-clock latencies in microseconds —
/// [`LogHistogram`] recording `Duration`s as integer µs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    inner: LogHistogram,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.inner.record(us);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Mean latency in microseconds.
    pub fn mean_us(&self) -> f64 {
        self.inner.mean()
    }

    /// The largest recorded latency in microseconds.
    pub fn max_us(&self) -> u64 {
        self.inner.max()
    }

    /// Upper bound of the bucket holding the `p`-quantile (`p` in 0..=1),
    /// in microseconds.
    pub fn percentile_us(&self, p: f64) -> f64 {
        self.inner.percentile(p)
    }
}

/// A point-in-time snapshot of the whole runtime.
#[derive(Debug, Clone)]
pub struct RuntimeStats {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs fully served.
    pub completed: u64,
    /// Jobs rejected with `Overloaded`.
    pub rejected: u64,
    /// Rejections per priority class (indexed by
    /// [`Priority::index`](crate::Priority::index)) — the per-class shed
    /// ledger overload tooling reports.
    pub rejected_by_class: [u64; 3],
    /// Accepted jobs that failed inside a worker (coprocessor errors —
    /// zero in any healthy configuration).
    pub failed: u64,
    /// Completed jobs per workload kind (indexed like
    /// [`JobKind::ALL`](atlantis_apps::jobs::JobKind::ALL)).
    pub per_kind: [u64; 4],
    /// Full FPGA configurations across all devices.
    pub full_loads: u64,
    /// Partial-reconfiguration task switches across all devices.
    pub partial_switches: u64,
    /// Configuration frames written across all devices.
    pub frames_written: u64,
    /// Virtual time spent reconfiguring, summed over devices.
    pub reconfig_time: SimDuration,
    /// Virtual time spent on payload/result DMA, summed over devices.
    pub dma_time: SimDuration,
    /// Virtual execution time, summed over devices.
    pub execute_time: SimDuration,
    /// The virtual makespan: the busiest device's total virtual time.
    /// Throughput on the simulated machine is `completed /` this.
    pub virtual_makespan: SimDuration,
    /// Pipeline beats advanced across all devices (zero when serving
    /// serially).
    pub pipeline_beats: u64,
    /// Times a device fully drained its pipeline — before a design
    /// switch (in-flight jobs must execute under the old design) or at
    /// shutdown. Idle beats that happen to empty the pipeline while the
    /// queue is momentarily quiet are not counted.
    pub pipeline_drains: u64,
    /// Virtual time each pipeline stage was busy, summed over beats and
    /// devices: `[prefetch DMA-in, execute, writeback DMA-out]`.
    pub stage_time: [SimDuration; 3],
    /// Virtual time the devices actually occupied while pipelining —
    /// the per-beat overlap window, summed. Compare against the sum of
    /// `stage_time` to see the overlap win.
    pub window_time: SimDuration,
    /// Virtual time hidden by DMA/compute overlap: the difference
    /// between serial stage time and the overlap window, summed.
    pub overlap_saved: SimDuration,
    /// Execute passes that gathered ≥ 2 same-design jobs and stepped
    /// them through the laned engine together.
    pub laned_passes: u64,
    /// Execute passes that retired a single job.
    pub scalar_passes: u64,
    /// Jobs retired through laned passes.
    pub laned_jobs: u64,
    /// DMA staging-buffer checkouts served by recycling a pooled buffer.
    pub pool_hits: u64,
    /// DMA staging-buffer checkouts that had to allocate. Flat at steady
    /// state — the zero-copy invariant.
    pub pool_misses: u64,
    /// Bitstream-cache hits.
    pub cache_hits: u64,
    /// Bitstream-cache misses (fits actually run).
    pub cache_misses: u64,
    /// End-to-end wall latency histogram (submission → completion).
    pub latency: LatencyHistogram,
    /// Per-job *virtual* service-time histogram in integer picoseconds
    /// (`JobTimings::total_virtual` per completed job) — deterministic
    /// across runs of a fixed-seed campaign, unlike the wall histogram,
    /// so it participates in determinism fingerprints and is the
    /// latency surface the cluster bench shares.
    pub virt_latency: LogHistogram,
    /// Wall time since the runtime started.
    pub wall_elapsed: Duration,
    /// Single-event upsets injected across all devices (fault
    /// campaigns; zero in normal serving).
    pub upsets_injected: u64,
    /// Injected upsets that refreshed the frame's stored CRC —
    /// invisible to a CRC read-back, caught only by deep scrubs or
    /// re-execution voting.
    pub upsets_stealthy: u64,
    /// Ground truth: job executions that ran while their device's
    /// configuration was corrupt. The detection ladder exists to keep
    /// these out of `silent_corruptions`.
    pub corrupt_executes: u64,
    /// In-flight jobs discarded and requeued because a detector fired
    /// while they were in flight. Conservative: a detection discards
    /// every in-flight result, so this can exceed `corrupt_executes`.
    pub detected_corruptions: u64,
    /// Ground truth: corrupt results that reached a client. Zero under
    /// [`GuardConfig::protected`](crate::GuardConfig::protected) with
    /// CRC-visible upsets — the end-to-end reliability guarantee.
    pub silent_corruptions: u64,
    /// Full golden-image scrub passes (periodic deep scrubs plus
    /// anti-stealth scrubs after a vote detection).
    pub guard_scrubs: u64,
    /// Targeted frame repairs after a CRC detection (no full
    /// read-back — the fast repair path).
    pub guard_repairs: u64,
    /// Virtual time spent scrubbing and repairing configurations.
    pub scrub_time: SimDuration,
    /// Virtual time spent on CRC scans and re-execution votes.
    pub check_time: SimDuration,
    /// Virtual time wasted on discarded suspect executions and retry
    /// backoff.
    pub wasted_time: SimDuration,
    /// Suspect-job requeues performed.
    pub retries: u64,
    /// Jobs answered with
    /// [`RuntimeError::Faulted`](crate::RuntimeError::Faulted) after
    /// exhausting the retry budget.
    pub faulted: u64,
    /// Devices quarantined after repeated dirty integrity events.
    pub quarantined_devices: u64,
    /// Summed virtual latency from each upset's arrival to its repair.
    pub detection_latency: SimDuration,
    /// Upsets whose detection latency was measured (repaired via the
    /// detection ladder; upsets healed by a task switch don't count).
    pub detected_upsets: u64,
    /// Configuration frames repaired per device by guard scrubs and
    /// repairs — the per-device accumulation of `ScrubReport` totals.
    pub device_scrub_frames: Vec<u64>,
    /// Total busy virtual time summed over all devices (the
    /// denominator of [`RuntimeStats::availability`]).
    pub busy_total: SimDuration,
}

impl RuntimeStats {
    /// Served jobs per second of *virtual* machine time — the number a
    /// deployment of the real hardware would see, independent of how
    /// fast the host simulates it.
    pub fn virtual_jobs_per_sec(&self) -> f64 {
        let t = self.virtual_makespan.as_secs_f64();
        if t <= 0.0 {
            0.0
        } else {
            self.completed as f64 / t
        }
    }

    /// Served jobs per second of wall time (host simulation speed).
    pub fn wall_jobs_per_sec(&self) -> f64 {
        let t = self.wall_elapsed.as_secs_f64();
        if t <= 0.0 {
            0.0
        } else {
            self.completed as f64 / t
        }
    }

    /// Fraction of serial stage time hidden by overlapping the DMA-in,
    /// execute, and DMA-out stages: `overlap_saved / Σ stage_time`.
    /// Zero when serving serially; approaches `(k−1)/k` for `k`
    /// perfectly-balanced stages under zero contention.
    pub fn overlap_efficiency(&self) -> f64 {
        let serial: SimDuration = self.stage_time.iter().copied().sum();
        let t = serial.as_secs_f64();
        if t <= 0.0 {
            0.0
        } else {
            self.overlap_saved.as_secs_f64() / t
        }
    }

    /// Per-stage occupancy: the fraction of pipelined device time each
    /// stage kept busy (`stage_time[i] / window_time`). The dominant
    /// stage sits near 1.0; the others measure how much latent overlap
    /// capacity remains.
    pub fn stage_occupancy(&self) -> [f64; 3] {
        let w = self.window_time.as_secs_f64();
        if w <= 0.0 {
            return [0.0; 3];
        }
        self.stage_time.map(|t| t.as_secs_f64() / w)
    }

    /// Mean jobs retired per laned execute pass
    /// (`laned_jobs / laned_passes`) — the host-side SIMD occupancy.
    /// Zero when no pass ever gathered more than one job.
    pub fn lane_occupancy(&self) -> f64 {
        if self.laned_passes == 0 {
            0.0
        } else {
            self.laned_jobs as f64 / self.laned_passes as f64
        }
    }

    /// Fraction of device busy time spent serving jobs rather than on
    /// reliability work: `1 − (scrub + check + wasted) / busy`. `1.0`
    /// with the guard disabled; degrades as the upset rate climbs —
    /// the knee the `guard_campaign` bench sweeps out.
    pub fn availability(&self) -> f64 {
        let busy = self.busy_total.as_secs_f64();
        if busy <= 0.0 {
            return 1.0;
        }
        let overhead = (self.scrub_time + self.check_time + self.wasted_time).as_secs_f64();
        (1.0 - overhead / busy).max(0.0)
    }

    /// Mean virtual busy time between configuration upsets, in
    /// seconds — infinite when no upset was injected.
    pub fn mtbf(&self) -> f64 {
        if self.upsets_injected == 0 {
            f64::INFINITY
        } else {
            self.busy_total.as_secs_f64() / self.upsets_injected as f64
        }
    }

    /// Fraction of device busy time spent on integrity work alone
    /// (scrubs, repairs, CRC scans, votes) — the standing cost of the
    /// protection, independent of whether anything was found.
    pub fn scrub_overhead(&self) -> f64 {
        let busy = self.busy_total.as_secs_f64();
        if busy <= 0.0 {
            0.0
        } else {
            (self.scrub_time + self.check_time).as_secs_f64() / busy
        }
    }

    /// Mean virtual latency from an upset's arrival to its repair, in
    /// microseconds. Zero when nothing was detected.
    pub fn mean_detection_latency_us(&self) -> f64 {
        if self.detected_upsets == 0 {
            0.0
        } else {
            self.detection_latency.as_secs_f64() * 1e6 / self.detected_upsets as f64
        }
    }

    /// The `p`-quantile of per-job *virtual* service time, converted
    /// from the histogram's picosecond buckets to microseconds.
    pub fn virt_percentile_us(&self, p: f64) -> f64 {
        self.virt_latency.percentile(p) / 1e6
    }

    /// Hardware task switches (full + partial) per served job — the
    /// quantity reconfiguration-aware batching minimises.
    pub fn switches_per_job(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            (self.full_loads + self.partial_switches) as f64 / self.completed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_bracket_the_samples() {
        let mut h = LatencyHistogram::new();
        for us in [1u64, 2, 4, 100, 100, 100, 100, 100, 100, 10_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 10);
        let p50 = h.percentile_us(0.5);
        assert!((64.0..=256.0).contains(&p50), "p50 {p50}");
        let p99 = h.percentile_us(0.99);
        assert!(p99 >= 8192.0, "p99 {p99}");
        assert!(h.mean_us() > 0.0);
        assert_eq!(h.max_us(), 10_000);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile_us(0.5), 0.0);
        assert_eq!(h.mean_us(), 0.0);
    }

    #[test]
    fn log_histogram_brackets_picosecond_samples() {
        let mut h = LogHistogram::new();
        // 50 µs in picos = 5e7; the tail sample sits three decades up.
        for _ in 0..90 {
            h.record_virtual(SimDuration::from_micros(50));
        }
        for _ in 0..10 {
            h.record_virtual(SimDuration::from_millis(50));
        }
        assert_eq!(h.count(), 100);
        let p50 = h.p50();
        assert!(
            (5e7..2e8).contains(&p50),
            "p50 bucket should bracket 50 µs: {p50}"
        );
        assert!(h.p99() >= h.p95() && h.p95() >= h.p50());
        assert!(h.p99() >= 5e10, "p99 must see the 50 ms tail: {}", h.p99());
        assert_eq!(h.max(), SimDuration::from_millis(50).as_picos());
        assert!(h.p95() >= 5e10, "p95 sits at the 5% tail: {}", h.p95());
        assert!(h.mean() > 5e7);
    }

    #[test]
    fn log_histogram_merge_matches_combined_recording() {
        let (mut a, mut b, mut all) = (
            LogHistogram::new(),
            LogHistogram::new(),
            LogHistogram::new(),
        );
        for v in [1u64, 7, 63, 1 << 20, u64::MAX] {
            a.record(v);
            all.record(v);
        }
        for v in [0u64, 2, 4096, 1 << 33] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all, "merge must equal recording into one histogram");
    }

    #[test]
    fn log_histogram_zero_and_max_do_not_panic() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.percentile(1.0) > 0.0);
    }
}
