//! The bounded, priority-classed admission queue.
//!
//! Capacity is a hard bound: a full queue rejects new submissions with
//! [`RuntimeError::Overloaded`] instead of growing (no OOM under
//! overload) or blocking the submitter (no convoy of stuck clients).
//! Workers block on a condvar while the queue is empty; closing the
//! queue wakes everyone, and popping keeps returning queued jobs until
//! the queue has fully drained — an accepted job is never dropped.

use crate::error::RuntimeError;
use crate::job::{Priority, QueuedJob};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// What a worker's pop returned.
#[derive(Debug)]
pub(crate) enum Pop {
    /// A job to execute.
    Job(QueuedJob),
    /// The queue is closed and empty — the worker should exit.
    Drained,
}

#[derive(Debug)]
struct Entry {
    job: QueuedJob,
    /// How many times a later same-design job was batched past this one.
    skips: u32,
}

#[derive(Debug, Default)]
struct Inner {
    classes: [VecDeque<Entry>; Priority::CLASSES],
    len: usize,
    closed: bool,
}

/// How a worker picks its next job from the queue.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PickConfig {
    /// Prefer a job for the already-loaded design within this many
    /// entries of the head of the urgent-most non-empty class.
    pub scan_depth: usize,
    /// Stop preferring the loaded design after this many consecutive
    /// same-design jobs (forces eventual rotation).
    pub batch_window: usize,
    /// A job skipped this many times must be taken next regardless of
    /// the loaded design (starvation bound).
    pub aging_limit: u32,
}

#[derive(Debug)]
pub(crate) struct JobQueue {
    inner: Mutex<Inner>,
    not_empty: Condvar,
    capacity: usize,
    /// EWMA of per-job wall service time in nanoseconds, updated by
    /// workers on every completion; zero until the first completion.
    /// Feeds the `retry_after` hint in `Overloaded` rejections.
    service_ewma_ns: AtomicU64,
    /// Worker threads draining the queue (set once at serve time).
    workers: AtomicUsize,
}

impl JobQueue {
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner::default()),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
            service_ewma_ns: AtomicU64::new(0),
            workers: AtomicUsize::new(1),
        }
    }

    /// Record how many workers drain the queue — the divisor of the
    /// retry-after estimate.
    pub fn set_workers(&self, workers: usize) {
        self.workers.store(workers.max(1), Ordering::Relaxed);
    }

    /// Fold one completed job's wall service time into the EWMA that
    /// backs the retry-after hint (weight 1/4 on the new sample — quick
    /// to warm up, stable under bursts).
    pub fn note_service(&self, service: Duration) {
        let ns = service.as_nanos().min(u128::from(u64::MAX)) as u64;
        let prev = self.service_ewma_ns.load(Ordering::Relaxed);
        let next = if prev == 0 {
            ns
        } else {
            prev - prev / 4 + ns / 4
        };
        self.service_ewma_ns.store(next, Ordering::Relaxed);
    }

    /// Estimated wall time until `depth` queued jobs drain one slot.
    fn retry_after(&self, depth: usize) -> Duration {
        let ewma = self.service_ewma_ns.load(Ordering::Relaxed);
        let workers = self.workers.load(Ordering::Relaxed) as u64;
        Duration::from_nanos(ewma.saturating_mul(depth as u64) / workers.max(1))
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently queued (excluding in-flight work on the devices).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len
    }

    /// Admit a job, or reject it when the bound is reached.
    pub fn push(&self, job: QueuedJob) -> Result<(), RuntimeError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(RuntimeError::ShuttingDown);
        }
        if inner.len >= self.capacity {
            return Err(RuntimeError::Overloaded {
                capacity: self.capacity,
                depth: inner.len,
                priority: job.request.priority,
                retry_after: self.retry_after(inner.len),
            });
        }
        inner.classes[job.request.priority.index()].push_back(Entry { job, skips: 0 });
        inner.len += 1;
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Stop admissions; queued jobs still drain.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
    }

    /// Whether admissions have stopped.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    /// Put an accepted job back at the head of its priority class — the
    /// recovery path for work whose execution is suspect after an
    /// integrity event, and for draining a quarantined device's
    /// in-flight jobs to healthy boards. Bypasses the capacity bound
    /// (the job was already admitted) and works while the queue is
    /// closed (accepted work must still be answered).
    pub fn requeue(&self, job: QueuedJob) {
        let mut inner = self.inner.lock().unwrap();
        inner.classes[job.request.priority.index()].push_front(Entry { job, skips: 0 });
        inner.len += 1;
        drop(inner);
        self.not_empty.notify_all();
    }

    /// Block until a job is available (or the queue is closed *and*
    /// empty). `prefer`, when set and `batch_len` is still inside the
    /// batch window, picks a nearby job for the already-loaded design —
    /// the reconfiguration-aware policy. FIFO callers pass `None`.
    pub fn pop(&self, pick: PickConfig, prefer: Option<&str>, batch_len: usize) -> Pop {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.len > 0 {
                let entry = Self::take(&mut inner, pick, prefer, batch_len);
                inner.len -= 1;
                return Pop::Job(entry.job);
            }
            if inner.closed {
                return Pop::Drained;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Non-blocking [`JobQueue::pop`]: take a job if one is queued right
    /// now, otherwise return immediately. A pipelined worker holding
    /// in-flight jobs must never block here — blocking with admitted
    /// work in the pipeline would deadlock a client that submitted a
    /// single job and is waiting on its completion.
    pub fn try_pop(
        &self,
        pick: PickConfig,
        prefer: Option<&str>,
        batch_len: usize,
    ) -> Option<QueuedJob> {
        let mut inner = self.inner.lock().unwrap();
        if inner.len == 0 {
            return None;
        }
        let entry = Self::take(&mut inner, pick, prefer, batch_len);
        inner.len -= 1;
        Some(entry.job)
    }

    /// Pick from the urgent-most non-empty class (caller guarantees the
    /// queue is non-empty).
    fn take(inner: &mut Inner, pick: PickConfig, prefer: Option<&str>, batch_len: usize) -> Entry {
        let class = inner
            .classes
            .iter_mut()
            .find(|c| !c.is_empty())
            .expect("pop on a non-empty queue");
        if let Some(design) = prefer {
            let head_aged = class.front().is_some_and(|e| e.skips >= pick.aging_limit);
            if batch_len < pick.batch_window && !head_aged {
                let j = class
                    .iter()
                    .take(pick.scan_depth)
                    .position(|e| e.job.request.spec.kind.design_name() == design);
                if let Some(j) = j {
                    for e in class.iter_mut().take(j) {
                        e.skips += 1;
                    }
                    return class.remove(j).expect("index in range");
                }
            }
        }
        class.pop_front().expect("class is non-empty")
    }
}
