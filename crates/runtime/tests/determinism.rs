//! Seed-parameterized determinism guard: two identical closed-loop
//! runs must produce byte-identical statistics.
//!
//! Closed-loop submission (each job awaited before the next is sent) on
//! a single worker pins the beat structure — every job is alone in the
//! pipeline for exactly three beats — so *every* stats field except the
//! two wall-clock ones (`wall_elapsed`, `latency`) is a pure function
//! of the job sequence. Any nondeterminism creeping into the engine,
//! the DMA models, the buffer pool, or the accounting shows up here as
//! a fingerprint mismatch.

use atlantis_apps::jobs::JobSpec;
use atlantis_core::AtlantisSystem;
use atlantis_runtime::{GuardConfig, JobRequest, Runtime, RuntimeConfig, RuntimeStats};

/// Everything in [`RuntimeStats`] except wall time and the latency
/// histogram, Debug-formatted for a byte-exact comparison.
fn fingerprint(s: &RuntimeStats) -> String {
    format!(
        "{:?}",
        (
            (
                s.submitted,
                s.completed,
                s.rejected,
                s.failed,
                s.per_kind,
                s.full_loads,
                s.partial_switches,
                s.frames_written,
                s.reconfig_time,
                s.dma_time,
                s.execute_time,
                s.virtual_makespan,
            ),
            (
                s.pipeline_beats,
                s.pipeline_drains,
                s.stage_time,
                s.window_time,
                s.overlap_saved,
                s.laned_passes,
                s.scalar_passes,
                s.laned_jobs,
                s.pool_hits,
                s.pool_misses,
                s.cache_hits,
                s.cache_misses,
            ),
            (
                s.upsets_injected,
                s.upsets_stealthy,
                s.corrupt_executes,
                s.detected_corruptions,
                s.silent_corruptions,
                s.guard_scrubs,
                s.guard_repairs,
                s.scrub_time,
                s.check_time,
                s.wasted_time,
                (
                    s.retries,
                    s.faulted,
                    s.quarantined_devices,
                    s.detection_latency,
                    s.detected_upsets,
                    &s.device_scrub_frames,
                    s.busy_total,
                ),
            ),
        )
    )
}

/// Closed-loop serve: one device, each job awaited before the next.
fn run_closed_loop(config: RuntimeConfig, seed: u64, jobs: u64) -> (Vec<u64>, String) {
    let system = AtlantisSystem::builder().with_acbs(1).build();
    let rt = Runtime::serve(system, config).unwrap();
    let mut checksums = Vec::with_capacity(jobs as usize);
    for i in 0..jobs {
        let spec = JobSpec::mixed(seed * 10_000 + i);
        let handle = rt.submit(JobRequest::new(0, spec)).unwrap();
        checksums.push(handle.wait().unwrap().checksum);
    }
    let stats = rt.shutdown();
    (checksums, fingerprint(&stats))
}

#[test]
fn closed_loop_stats_are_byte_identical_across_runs() {
    for seed in [1u64, 7, 42] {
        let (sums_a, fp_a) = run_closed_loop(RuntimeConfig::default(), seed, 24);
        let (sums_b, fp_b) = run_closed_loop(RuntimeConfig::default(), seed, 24);
        assert_eq!(sums_a, sums_b, "seed {seed}: checksums diverged");
        assert_eq!(fp_a, fp_b, "seed {seed}: stats fingerprint diverged");
    }
}

/// Closed-loop serve under fault injection: jobs may honestly fail with
/// `Faulted` after exhausting retries; record `None` for those.
fn run_fault_campaign(config: RuntimeConfig, jobs: u64) -> (Vec<Option<u64>>, String) {
    let system = AtlantisSystem::builder().with_acbs(1).build();
    let rt = Runtime::serve(system, config).unwrap();
    let mut checksums = Vec::with_capacity(jobs as usize);
    for i in 0..jobs {
        let spec = JobSpec::mixed(777_000 + i);
        let handle = rt.submit(JobRequest::new(0, spec)).unwrap();
        checksums.push(handle.wait().ok().map(|r| r.checksum));
    }
    let stats = rt.shutdown();
    assert!(
        stats.upsets_injected > 0,
        "a campaign that injects nothing guards nothing"
    );
    (checksums, fingerprint(&stats))
}

#[test]
fn fixed_seed_fault_campaigns_are_byte_identical_across_runs() {
    // Upset arrivals are a seeded Poisson process over the device's
    // *virtual* clock, so a closed-loop run replays the same campaign —
    // injections, detections, retries, scrub times — byte for byte.
    let guard = GuardConfig {
        upset_rate: 3_000.0,
        stealth_fraction: 0.25,
        upset_seed: 9,
        vote_every: 4,
        ..GuardConfig::protected()
    };
    for (name, base) in [
        ("pipelined", RuntimeConfig::default()),
        ("serial", RuntimeConfig::serial()),
    ] {
        let config = RuntimeConfig { guard, ..base };
        let (sums_a, fp_a) = run_fault_campaign(config, 20);
        let (sums_b, fp_b) = run_fault_campaign(config, 20);
        assert_eq!(sums_a, sums_b, "{name}: campaign checksums diverged");
        assert_eq!(fp_a, fp_b, "{name}: campaign stats fingerprint diverged");
    }
}

/// The closure-compiler ledger for one streamed run of the TRT netlist
/// under forced threaded dispatch: every [`atlantis_chdl::EngineStats`]
/// compile counter except `compile_ns`, which is wall-clock time and
/// deliberately excluded — build duration varies run to run, but *what*
/// was built and *which* tier every eval took must not.
fn compile_ledger_fingerprint(seed: u64) -> String {
    use atlantis_chdl::{DispatchMode, EngineConfig, ExecMode, Sim};
    let design = atlantis_apps::trt::fpga::build_external_design(512, 4, 16);
    let config = EngineConfig {
        dispatch: DispatchMode::Threaded,
        ..EngineConfig::default()
    };
    let mut sim = Sim::with_config(&design, ExecMode::Compiled, config);
    sim.set("valid", 1);
    sim.set("clear", 0);
    sim.set("pass", 1);
    sim.set("threshold", 5);
    sim.set("counter_sel", 3);
    let hit = design.signal("hit").unwrap();
    let mut x = seed | 1;
    for _ in 0..64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        sim.set_signal(hit, x % 512);
        sim.step();
    }
    let s = sim.engine_stats().unwrap();
    format!(
        "{:?}",
        (
            s.compiles,
            s.blocks_built,
            s.closures_specialized,
            s.evals_threaded,
            s.evals_match,
        )
    )
}

#[test]
fn threaded_compile_ledger_is_independent_of_seed_and_run() {
    // The compile ledger is a pure function of the netlist and the
    // dispatch config: stimulus values change *what flows through* the
    // compiled blocks but may not change how many blocks were built, how
    // many closures were specialized, or which tier each eval dispatched
    // to. (Parallel partitioned sweeps run inside the shared rayon pool,
    // so any scheduling leak into the counters would surface here too.)
    let base = compile_ledger_fingerprint(1);
    for seed in [1u64, 99, 42, 7] {
        let fp = compile_ledger_fingerprint(seed);
        assert_eq!(fp, base, "compile ledger diverged at seed {seed}");
    }
}

#[test]
fn closed_loop_serial_stats_are_byte_identical_across_runs() {
    // The serial path shares the reconfiguration-accounting helper with
    // the pipelined path; guard it with the same fingerprint.
    for seed in [3u64, 11] {
        let (sums_a, fp_a) = run_closed_loop(RuntimeConfig::serial(), seed, 16);
        let (sums_b, fp_b) = run_closed_loop(RuntimeConfig::serial(), seed, 16);
        assert_eq!(sums_a, sums_b, "seed {seed}: checksums diverged");
        assert_eq!(fp_a, fp_b, "seed {seed}: stats fingerprint diverged");
    }
}
