//! Saturation behaviour: a deliberately tiny admission queue flooded
//! from many client threads must shed load by *rejecting* submissions
//! (bounded memory), while every accepted job still completes — no
//! deadlock, no lost in-flight work.

use atlantis_apps::jobs::JobSpec;
use atlantis_core::AtlantisSystem;
use atlantis_runtime::{JobRequest, Priority, Runtime, RuntimeConfig, RuntimeError};
use std::sync::Arc;

#[test]
fn overload_sheds_by_rejection_and_loses_nothing() {
    const CLIENTS: u32 = 8;
    const JOBS_PER_CLIENT: u64 = 40;

    let system = AtlantisSystem::builder().with_acbs(1).build();
    let config = RuntimeConfig {
        queue_capacity: 4,
        ..RuntimeConfig::default()
    };
    let rt = Arc::new(Runtime::serve(system, config).unwrap());

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let rt = Arc::clone(&rt);
            std::thread::spawn(move || {
                let mut accepted = 0u64;
                let mut rejected = 0u64;
                let mut handles = Vec::new();
                for i in 0..JOBS_PER_CLIENT {
                    let spec = JobSpec::trt(u64::from(c) * 1_000 + i);
                    let priority = match i % 3 {
                        0 => Priority::High,
                        1 => Priority::Normal,
                        _ => Priority::Low,
                    };
                    match rt.submit(JobRequest::new(c, spec).with_priority(priority)) {
                        Ok(h) => {
                            accepted += 1;
                            handles.push(h);
                        }
                        Err(RuntimeError::Overloaded {
                            capacity,
                            depth,
                            priority: shed_class,
                            ..
                        }) => {
                            assert_eq!(capacity, 4);
                            assert!(depth >= capacity, "rejection reports queue depth");
                            assert_eq!(shed_class, priority, "rejection echoes the class");
                            rejected += 1;
                        }
                        Err(other) => panic!("unexpected submit error: {other}"),
                    }
                }
                // Every accepted job must complete with a real result.
                for h in handles {
                    let r = h.wait().expect("accepted job must complete");
                    assert_eq!(r.client, c);
                }
                (accepted, rejected)
            })
        })
        .collect();

    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for t in clients {
        let (a, r) = t.join().expect("client thread must not panic");
        accepted += a;
        rejected += r;
    }

    assert_eq!(
        accepted + rejected,
        u64::from(CLIENTS) * JOBS_PER_CLIENT,
        "every offered job is either accepted or rejected — none vanish"
    );

    let rt = Arc::into_inner(rt).expect("all clients joined");
    let stats = rt.shutdown();
    assert_eq!(stats.submitted, accepted);
    assert_eq!(stats.rejected, rejected);
    assert_eq!(stats.completed, accepted, "accepted jobs all completed");
    assert_eq!(stats.failed, 0);
    // With a queue bound of 4 and 320 offered jobs racing one device,
    // backpressure must actually have engaged.
    assert!(
        rejected > 0,
        "flood against capacity 4 must reject some jobs"
    );
}
