//! Pipelined serving must be an *optimisation*, not a behaviour change:
//! on the same mixed workload it must produce the identical set of job
//! checksums as serial serving while spending strictly less virtual
//! device time outside reconfiguration — on every seed.

use atlantis_apps::jobs::JobSpec;
use atlantis_core::AtlantisSystem;
use atlantis_runtime::{JobRequest, Runtime, RuntimeConfig, RuntimeStats};
use atlantis_simcore::SimDuration;

/// Serve `jobs` mixed jobs (offset by `seed`) on `acbs` devices and
/// return the sorted per-job results plus the final stats.
fn run(
    config: RuntimeConfig,
    acbs: usize,
    seed: u64,
    jobs: u64,
) -> (Vec<(u64, u64)>, RuntimeStats) {
    let system = AtlantisSystem::builder().with_acbs(acbs).build();
    let rt = Runtime::serve(system, config).unwrap();
    let handles: Vec<_> = (0..jobs)
        .map(|i| {
            let spec = JobSpec::mixed(seed * 10_000 + i);
            rt.submit(JobRequest::new((i % 4) as u32, spec)).unwrap()
        })
        .collect();
    let mut results: Vec<(u64, u64)> = handles
        .into_iter()
        .map(|h| h.wait().unwrap())
        .map(|r| (r.spec.seed, r.checksum))
        .collect();
    let stats = rt.shutdown();
    results.sort_unstable();
    (results, stats)
}

#[test]
fn pipelined_serving_matches_serial_checksums_and_is_faster_on_every_seed() {
    // One device makes the timing comparison deterministic. The virtual
    // makespan is that device's busy time, which splits into
    // reconfiguration plus DMA + execute time for the fixed job set.
    // The *number* of design switches depends on how the worker's pops
    // race the submitting thread (and reconfiguration cannot be
    // pipelined anyway), so each run's own reconfiguration time is
    // subtracted out: the racy term cancels exactly, and the remainder
    // must shrink under pipelining by the overlap the beats saved.
    for seed in 0..4u64 {
        let (serial_results, serial) = run(RuntimeConfig::serial(), 1, seed, 48);
        let (pipe_results, pipe) = run(RuntimeConfig::default(), 1, seed, 48);

        assert_eq!(
            serial_results, pipe_results,
            "seed {seed}: pipelining changed job results"
        );
        assert_eq!(pipe.completed, 48);
        assert_eq!(pipe.failed, 0);

        // The overlap win, asserted directly: pipelined beats occupy
        // the overlap window, strictly less than the sum of their
        // per-stage times.
        let stage_sum: SimDuration = pipe.stage_time.iter().copied().sum();
        assert!(
            pipe.window_time < stage_sum,
            "seed {seed}: window {} not below stage sum {stage_sum}",
            pipe.window_time
        );
        assert!(pipe.pipeline_beats > 0);
        assert!(pipe.overlap_saved > SimDuration::ZERO);
        assert!(pipe.overlap_efficiency() > 0.0);

        // The makespan comparison, with the reconfig term cancelled.
        let serial_busy = serial.virtual_makespan - serial.reconfig_time;
        let pipe_busy = pipe.virtual_makespan - pipe.reconfig_time;
        assert!(
            pipe_busy < serial_busy,
            "seed {seed}: pipelined non-reconfig busy {pipe_busy} not below serial {serial_busy}"
        );

        // The overlap accounting is live only on the pipelined run.
        assert_eq!(serial.pipeline_beats, 0);
        assert_eq!(serial.overlap_efficiency(), 0.0);

        // Zero-copy invariant: far more buffer reuse than allocation.
        assert!(pipe.pool_hits > pipe.pool_misses);
    }
}

#[test]
fn pipelined_serving_matches_serial_checksums_across_devices() {
    // With two workers racing on the shared queue, batch composition —
    // and with it switch counts and timing — is nondeterministic, so
    // only the result set is asserted here; the timing comparison
    // lives in the single-device test above.
    for seed in 0..2u64 {
        let (serial_results, serial) = run(RuntimeConfig::serial(), 2, seed, 48);
        let (pipe_results, pipe) = run(RuntimeConfig::default(), 2, seed, 48);
        assert_eq!(
            serial_results, pipe_results,
            "seed {seed}: pipelining changed job results across devices"
        );
        assert_eq!(serial.completed, 48);
        assert_eq!(pipe.completed, 48);
        assert_eq!(serial.failed + pipe.failed, 0);
        assert!(pipe.pipeline_beats > 0);
    }
}

#[test]
fn pipeline_drains_on_design_switches_without_losing_jobs() {
    // FIFO over a kind-alternating workload forces a drain on nearly
    // every admission — the worst case for the pipeline — and must
    // still serve everything correctly.
    let fifo_pipe = RuntimeConfig {
        pipeline: true,
        ..RuntimeConfig::fifo()
    };
    let (results, stats) = run(fifo_pipe, 1, 9, 32);
    assert_eq!(results.len(), 32);
    assert_eq!(stats.completed, 32);
    assert!(stats.pipeline_drains > 0, "alternating kinds must drain");
}
