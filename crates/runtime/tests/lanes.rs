//! Lane-batched execution must be an *optimisation*, not a behaviour
//! change: gathering same-design jobs into one laned execute pass may
//! only change host wall clock. Per-job checksums, cycle counts, and
//! every arrival-order-deterministic virtual statistic must match the
//! unlaned run exactly — lanes serialise in virtual time on the one
//! physical device.

use atlantis_apps::jobs::JobSpec;
use atlantis_core::AtlantisSystem;
use atlantis_runtime::{JobRequest, Runtime, RuntimeConfig, RuntimeStats};

/// Serve the given specs on one device under strict FIFO and return the
/// per-job results (sorted by id) plus final stats. One worker plus
/// FIFO makes the pop *order* — and with it every virtual-time
/// statistic below — independent of how the worker's pops race the
/// submitting thread. (Beat structure, and so `pipeline_beats` /
/// `window_time` / `overlap_saved`, stays racy under live submission;
/// those fields are deliberately not compared.)
fn run(lanes: usize, specs: &[JobSpec]) -> (Vec<(u64, u64, u64)>, RuntimeStats) {
    let system = AtlantisSystem::builder().with_acbs(1).build();
    let config = RuntimeConfig {
        lanes,
        ..RuntimeConfig::fifo()
    };
    let rt = Runtime::serve(system, config).unwrap();
    let handles: Vec<_> = specs
        .iter()
        .map(|&s| rt.submit(JobRequest::new(0, s)).unwrap())
        .collect();
    let mut results: Vec<(u64, u64, u64)> = handles
        .into_iter()
        .map(|h| h.wait().unwrap())
        .map(|r| (r.id, r.checksum, r.cycles))
        .collect();
    let stats = rt.shutdown();
    results.sort_unstable();
    (results, stats)
}

fn assert_virtual_equivalence(scalar: &RuntimeStats, laned: &RuntimeStats) {
    assert_eq!(scalar.completed, laned.completed);
    assert_eq!(scalar.failed, laned.failed);
    assert_eq!(scalar.per_kind, laned.per_kind);
    assert_eq!(scalar.full_loads, laned.full_loads);
    assert_eq!(scalar.partial_switches, laned.partial_switches);
    assert_eq!(scalar.frames_written, laned.frames_written);
    assert_eq!(scalar.reconfig_time, laned.reconfig_time);
    assert_eq!(scalar.dma_time, laned.dma_time);
    assert_eq!(scalar.execute_time, laned.execute_time);
    // virtual_makespan is deliberately absent: it sums per-beat overlap
    // windows, and the *beat structure* depends on how worker pops race
    // the submitting thread — racy in both runs, laned or not.
}

#[test]
fn laned_trt_serving_matches_scalar_virtual_time_exactly() {
    // A same-design burst: the best case for gathering — the laned run
    // must actually batch (occupancy > 1) yet change nothing virtual.
    let specs: Vec<JobSpec> = (0..200).map(JobSpec::trt).collect();
    let (scalar_results, scalar) = run(1, &specs);
    let (laned_results, laned) = run(8, &specs);

    assert_eq!(
        scalar_results, laned_results,
        "per-job checksums and cycles must not depend on lanes"
    );
    assert_virtual_equivalence(&scalar, &laned);

    assert_eq!(scalar.laned_passes, 0, "lanes = 1 must never gather");
    assert_eq!(scalar.laned_jobs, 0);
    assert!(
        laned.laned_passes >= 1,
        "an upfront same-design burst must produce laned passes"
    );
    assert!(
        laned.lane_occupancy() > 1.0,
        "laned passes must average more than one job ({:.2})",
        laned.lane_occupancy()
    );
    assert_eq!(
        laned.laned_jobs + laned.scalar_passes,
        laned.completed,
        "every completed job is retired by exactly one pass"
    );
}

#[test]
fn laned_mixed_serving_matches_scalar_virtual_time_exactly() {
    // Mixed kinds exercise the carry path: a gather that pops a job for
    // another design must stash it and serve it next, in order.
    let specs: Vec<JobSpec> = (0..96).map(JobSpec::mixed).collect();
    let (scalar_results, scalar) = run(1, &specs);
    let (laned_results, laned) = run(8, &specs);

    assert_eq!(scalar_results, laned_results);
    assert_virtual_equivalence(&scalar, &laned);
}

#[test]
fn serial_mode_ignores_lanes() {
    // The unpipelined baseline serves end to end; lanes must not change
    // it at all (and must never report a laned pass).
    let specs: Vec<JobSpec> = (0..40).map(JobSpec::trt).collect();
    let serve = |lanes: usize| {
        let system = AtlantisSystem::builder().with_acbs(1).build();
        let config = RuntimeConfig {
            lanes,
            ..RuntimeConfig::serial()
        };
        let rt = Runtime::serve(system, config).unwrap();
        let handles: Vec<_> = specs
            .iter()
            .map(|&s| rt.submit(JobRequest::new(0, s)).unwrap())
            .collect();
        let mut out: Vec<(u64, u64)> = handles
            .into_iter()
            .map(|h| h.wait().unwrap())
            .map(|r| (r.id, r.checksum))
            .collect();
        out.sort_unstable();
        (out, rt.shutdown())
    };
    let (r1, s1) = serve(1);
    let (r8, s8) = serve(8);
    assert_eq!(r1, r8);
    assert_eq!(s1.laned_passes, 0);
    assert_eq!(s8.laned_passes, 0);
    assert_eq!(s8.scalar_passes, s8.completed);
}
