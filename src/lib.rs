//! # ATLANTIS — a hybrid FPGA/RISC re-configurable system, in simulation
//!
//! This crate is the umbrella façade for the ATLANTIS workspace, a
//! software reproduction of the CompactPCI FPGA-processor machine described
//! in *“ATLANTIS — A Hybrid FPGA/RISC Based Re-configurable System”*
//! (Universität Mannheim, IPPS 2000).
//!
//! The original machine was custom hardware: a 2×2 matrix of Lucent ORCA
//! FPGAs per computing board (ACB), Virtex-based I/O boards (AIB), a private
//! 1 GB/s backplane (AAB), a PLX9080 PCI bridge, and the CHDL C++ hardware
//! description environment. Every one of those components is re-implemented
//! here as a deterministic, cycle-approximate simulator, so that the paper’s
//! development workflow and all of its published measurements can be
//! exercised on a stock machine.
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | [`chdl`] | CHDL re-implementation: embedded HDL + cycle simulator |
//! | [`fabric`] | FPGA device models, bitstreams, (partial) reconfiguration |
//! | [`mem`] | SSRAM / SDRAM / DP-RAM / FIFO models and mezzanine modules |
//! | [`pci`] | CompactPCI bus, PLX9080 bridge, DMA engine, host driver |
//! | [`backplane`] | AAB private-bus model with configurable granularity |
//! | [`board`] | ACB / AIB / host-CPU models and clock tree |
//! | [`apps`] | TRT trigger, volume rendering, 2-D imaging, N-body |
//! | [`atlantis_core`] | Full-system assembly and coprocessor API |
//! | [`runtime`] | Multi-tenant job scheduler serving concurrent workloads |
//! | [`guard`] | Fault-injection campaigns over the self-healing runtime |
//! | [`cluster`] | Sharded multi-host serving: admission, routing, load gen |
//!
//! ## Quickstart
//!
//! ```
//! use atlantis::prelude::*;
//!
//! // Build a small CHDL design: an 8-bit accumulator.
//! let mut d = Design::new("accumulator");
//! let x = d.input("x", 8);
//! let acc = d.reg_feedback("acc", 8, |d, acc| d.add(acc, x));
//! d.expose_output("sum", acc);
//!
//! // Fit it onto a simulated ORCA 3T125 and run it.
//! let fitted = fit(&d, &Device::orca_3t125()).expect("fits easily");
//! let mut sim = Sim::new(&d);
//! for v in [1u64, 2, 3, 4] {
//!     sim.set("x", v);
//!     sim.step();
//! }
//! assert_eq!(sim.get("sum"), 10);
//! assert!(fitted.report().gates > 0);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use atlantis_apps as apps;
pub use atlantis_backplane as backplane;
pub use atlantis_board as board;
pub use atlantis_chdl as chdl;
pub use atlantis_cluster as cluster;
pub use atlantis_core as core;
pub use atlantis_fabric as fabric;
pub use atlantis_guard as guard;
pub use atlantis_mem as mem;
pub use atlantis_pci as pci;
pub use atlantis_runtime as runtime;
pub use atlantis_simcore as simcore;

/// Convenient re-exports of the most commonly used types across the
/// ATLANTIS workspace.
pub mod prelude {
    pub use atlantis_chdl::prelude::*;
    pub use atlantis_core::prelude::*;
    pub use atlantis_fabric::prelude::*;
    pub use atlantis_simcore::prelude::*;
}
