//! Offline vendored `serde_derive`: emits marker impls for the vendored
//! `serde` crate. Works on any non-generic `struct` or `enum` (which is
//! every derived type in this workspace) by scanning the token stream for
//! the item name rather than pulling in `syn`/`quote`.

use proc_macro::{TokenStream, TokenTree};

/// Find the identifier following the `struct` / `enum` / `union` keyword.
fn item_name(input: TokenStream) -> String {
    let mut saw_keyword = false;
    for tt in input {
        if let TokenTree::Ident(ident) = tt {
            let s = ident.to_string();
            if saw_keyword {
                return s;
            }
            if s == "struct" || s == "enum" || s == "union" {
                saw_keyword = true;
            }
        }
    }
    panic!("serde_derive (vendored): could not find item name in derive input");
}

/// Derive the vendored `serde::Serialize` marker.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("#[automatically_derived] impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

/// Derive the vendored `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = item_name(input);
    format!("#[automatically_derived] impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
