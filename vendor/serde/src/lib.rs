//! Offline vendored stand-in for `serde`.
//!
//! The workspace only *derives* `Serialize` / `Deserialize` on plain data
//! types (no code serializes anything yet — `serde_json` is not used).
//! This stand-in keeps those derives compiling offline: the traits are
//! markers, and the derive macros (from the vendored `serde_derive`)
//! emit empty impls. When a real serialization backend is needed, this
//! crate is the single place to grow the data model.

/// Marker for types that can be serialized.
pub trait Serialize {}

/// Marker for types that can be deserialized.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};

// Blanket-ish impls for common composites so derived containers holding
// them would also satisfy any future generic bounds.
macro_rules! mark {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}
mark!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool, char, String);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
