//! Offline vendored stand-in for the parts of `rand` 0.8 this workspace uses.
//!
//! The build environment has no network access and no crates.io cache, so the
//! workspace vendors a minimal, API-compatible subset of the random-number
//! traits as a path dependency: [`RngCore`], [`SeedableRng`], and the [`Rng`]
//! extension trait with `gen`, `gen_range`, `gen_bool`, and `fill`.
//! Distribution quality matters (the simulator's workload generators assert
//! statistical moments) but bit-for-bit parity with upstream `rand` does not.

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build the generator from a `u64`, expanding it with the PCG32
    /// sequence — **bit-identical to `rand_core` 0.6's default
    /// `seed_from_u64`**, so generators seeded this way reproduce the
    /// streams the workspace's seeded tests were written against.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let n = chunk.len();
            chunk.copy_from_slice(&x.to_le_bytes()[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from an RNG's raw output
/// (the `Standard` distribution in upstream `rand`).
pub trait StandardSample {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

// Word consumption mirrors rand 0.8's `Standard`: types up to 32 bits draw
// one `next_u32`; 64-bit types draw one `next_u64`.
macro_rules! standard_small {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}
standard_small!(u8, u16, u32, i8, i16, i32);

macro_rules! standard_large {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_large!(u64, usize, i64, isize);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Most significant bit of one u32 draw, as in rand 0.8.
        rng.next_u32() & (1 << 31) != 0
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// The uniform integer sampler below reproduces rand 0.8's
// `UniformInt::sample_single{,_inclusive}` **bit for bit** (widening
// multiply with rejection zone; types up to 32 bits sample a u32, 64-bit
// types a u64), so `gen_range` consumes the same words and returns the
// same values as upstream for any ChaCha stream.
macro_rules! range_impl {
    ($($t:ty, $unsigned:ty, $u_large:ty, $wide:ty, $draw:ident);* $(;)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let range = self.end.wrapping_sub(self.start) as $unsigned as $u_large;
                let zone = if <$unsigned>::MAX <= u16::MAX as $unsigned {
                    let unsigned_max: $u_large = <$u_large>::MAX;
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = rng.$draw() as $u_large;
                    let m = (v as $wide) * (range as $wide);
                    let hi = (m >> <$u_large>::BITS) as $u_large;
                    let lo = m as $u_large;
                    if lo <= zone {
                        return self.start.wrapping_add(hi as $t);
                    }
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "gen_range: empty range");
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                if range == 0 {
                    // The full integer domain.
                    return rng.$draw() as $t;
                }
                let zone = if <$unsigned>::MAX <= u16::MAX as $unsigned {
                    let unsigned_max: $u_large = <$u_large>::MAX;
                    let ints_to_reject = (unsigned_max - range + 1) % range;
                    unsigned_max - ints_to_reject
                } else {
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $u_large = rng.$draw() as $u_large;
                    let m = (v as $wide) * (range as $wide);
                    let hi = (m >> <$u_large>::BITS) as $u_large;
                    let lo = m as $u_large;
                    if lo <= zone {
                        return low.wrapping_add(hi as $t);
                    }
                }
            }
        }
    )*};
}
range_impl! {
    u8,    u8,    u32,   u64,  next_u32;
    u16,   u16,   u32,   u64,  next_u32;
    u32,   u32,   u32,   u64,  next_u32;
    u64,   u64,   u64,   u128, next_u64;
    usize, usize, usize, u128, next_u64;
    i8,    u8,    u32,   u64,  next_u32;
    i16,   u16,   u32,   u64,  next_u32;
    i32,   u32,   u32,   u64,  next_u32;
    i64,   u64,   u64,   u128, next_u64;
    isize, usize, usize, u128, next_u64;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Collections fillable in one call (`Rng::fill`).
pub trait Fill {
    /// Fill `self` with random data.
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl Fill for [u32] {
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for w in self.iter_mut() {
            *w = rng.next_u32();
        }
    }
}

impl Fill for [u64] {
    fn fill_with<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for w in self.iter_mut() {
            *w = rng.next_u64();
        }
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Fill `dest` (e.g. a byte slice) with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T)
    where
        Self: Sized,
    {
        dest.fill_with(self);
    }
}

impl<R: RngCore> Rng for R {}

/// Commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&b[..n]);
            }
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3u8..=7);
            assert!((3..=7).contains(&w));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_covers_slice() {
        let mut rng = Counter(7);
        let mut buf = [0u8; 37];
        rng.fill(&mut buf[..]);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn full_u64_inclusive_range_does_not_panic() {
        let mut rng = Counter(1);
        let _: u64 = rng.gen_range(0u64..=u64::MAX);
    }
}
