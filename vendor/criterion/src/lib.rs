//! Offline vendored stand-in for `criterion` 0.5.
//!
//! Implements the API subset this workspace's benches use: `Criterion`,
//! `benchmark_group` (with `sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `finish`), `BenchmarkId`, `Throughput`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros. Measurement is a
//! straightforward calibrated-batch timer: warm up to estimate the per-iter
//! cost, then take several samples and report the median. `--test` runs each
//! closure once (CI smoke mode); a bare trailing argument filters benchmarks
//! by substring; other flags (`--bench`, ...) are accepted and ignored.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// How many samples to take per benchmark (after warm-up) when the
/// `CRITERION_SAMPLES` environment variable does not override it.
const DEFAULT_SAMPLES: usize = 7;
/// Wall-clock budget per sample.
const SAMPLE_BUDGET: Duration = Duration::from_millis(40);
/// Warm-up budget used to estimate per-iteration cost.
const WARMUP_BUDGET: Duration = Duration::from_millis(25);

/// Samples per benchmark: `CRITERION_SAMPLES` when set to a positive
/// integer, otherwise [`DEFAULT_SAMPLES`]. CI pins this so bench smoke
/// runs take a predictable amount of time on shared runners.
fn sample_count() -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(DEFAULT_SAMPLES)
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" | "--quick" => test_mode = true,
                s if s.starts_with('-') => {} // --bench and friends: ignore
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// True when running in `--test` smoke mode (each body runs once).
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    fn selected(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }

    fn run_one(
        &mut self,
        full_name: &str,
        throughput: Option<&Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        if !self.selected(full_name) {
            return;
        }
        let mut b = Bencher {
            test_mode: self.test_mode,
            per_iter_ns: 0.0,
        };
        f(&mut b);
        if self.test_mode {
            println!("{full_name:<40} ok (test mode)");
            return;
        }
        let ns = b.per_iter_ns;
        let mut line = format!("{full_name:<40} time: [{}]", fmt_ns(ns));
        if let Some(t) = throughput {
            if ns > 0.0 {
                line.push_str(&format!("  thrpt: [{}]", t.rate(ns)));
            }
        }
        println!("{line}");
    }

    /// Benchmark a single function.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(name, None, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Finalize (upstream writes reports here; this stand-in does nothing).
    pub fn final_summary(&mut self) {}
}

/// Work-rate annotation for a group; shown next to timings.
#[derive(Clone, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

impl Throughput {
    fn rate(&self, per_iter_ns: f64) -> String {
        let per_sec = 1e9 / per_iter_ns;
        match self {
            Throughput::Bytes(n) => {
                let bps = *n as f64 * per_sec;
                if bps >= 1e9 {
                    format!("{:.3} GiB/s", bps / (1u64 << 30) as f64)
                } else {
                    format!("{:.3} MiB/s", bps / (1u64 << 20) as f64)
                }
            }
            Throughput::Elements(n) => format!("{:.3} Melem/s", *n as f64 * per_sec / 1e6),
        }
    }
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// `BenchmarkId::new("read", kb)` → rendered as `read/<kb>`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter (rendered under the group name).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self, group: &str) -> String {
        match (&self.name.is_empty(), &self.parameter) {
            (false, Some(p)) => format!("{group}/{}/{p}", self.name),
            (false, None) => format!("{group}/{}", self.name),
            (true, Some(p)) => format!("{group}/{p}"),
            (true, None) => group.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (accepted for API parity; sampling here is
    /// time-budgeted, so this is a no-op).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a work rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a function within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = id.into().render(&self.name);
        let t = self.throughput.clone();
        self.criterion.run_one(&full, t.as_ref(), &mut f);
        self
    }

    /// Benchmark a function with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = id.into().render(&self.name);
        let t = self.throughput.clone();
        self.criterion
            .run_one(&full, t.as_ref(), &mut |b| f(b, input));
        self
    }

    /// Close the group (upstream renders comparison reports here).
    pub fn finish(self) {}
}

/// Timer handed to each benchmark body.
pub struct Bencher {
    test_mode: bool,
    per_iter_ns: f64,
}

impl Bencher {
    /// Measure `f`, calling it in calibrated batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warm-up: estimate per-iteration cost.
        let mut iters = 1u64;
        let est_ns = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= WARMUP_BUDGET || iters >= 1 << 30 {
                break elapsed.as_nanos() as f64 / iters as f64;
            }
            iters *= 2;
        };
        // Samples: median of `sample_count()` batches sized to the budget.
        let batch = ((SAMPLE_BUDGET.as_nanos() as f64 / est_ns.max(1.0)) as u64).max(1);
        let mut samples: Vec<f64> = (0..sample_count())
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        self.per_iter_ns = samples[samples.len() / 2];
    }

    /// Median per-iteration time of the last `iter` call, in nanoseconds.
    pub fn last_per_iter_ns(&self) -> f64 {
        self.per_iter_ns
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Group benchmark functions into a callable registry.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("read", 64).render("dma"), "dma/read/64");
        assert_eq!(BenchmarkId::from("seq").render("dma"), "dma/seq");
        assert_eq!(BenchmarkId::from_parameter(9).render("dma"), "dma/9");
    }

    #[test]
    fn test_mode_runs_body_once() {
        let mut b = Bencher {
            test_mode: true,
            per_iter_ns: 0.0,
        };
        let mut calls = 0;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
    }

    #[test]
    fn sample_count_env_override() {
        // Serialised inside one test body: no other test reads the var.
        assert_eq!(sample_count(), DEFAULT_SAMPLES);
        std::env::set_var("CRITERION_SAMPLES", "3");
        assert_eq!(sample_count(), 3);
        std::env::set_var("CRITERION_SAMPLES", "0");
        assert_eq!(sample_count(), DEFAULT_SAMPLES, "zero is rejected");
        std::env::set_var("CRITERION_SAMPLES", "junk");
        assert_eq!(sample_count(), DEFAULT_SAMPLES, "junk is rejected");
        std::env::remove_var("CRITERION_SAMPLES");
    }

    #[test]
    fn fmt_ns_scales() {
        assert!(fmt_ns(12.3).ends_with("ns"));
        assert!(fmt_ns(12_300.0).ends_with("µs"));
        assert!(fmt_ns(12_300_000.0).ends_with("ms"));
        assert!(fmt_ns(2.3e9).ends_with('s'));
    }
}
