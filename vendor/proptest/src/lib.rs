//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset of the proptest 1.x API this workspace uses:
//! the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`,
//! [`strategy::Strategy`] for integer ranges, `any::<T>()`, tuples, and
//! `collection::vec`. Cases are generated from a deterministic per-test
//! seed (hash of the test path), so failures are reproducible run-to-run.
//! **Shrinking is not implemented** — a failing case reports its inputs via
//! `Debug` on the assertion message instead of minimising them.

pub mod test_runner {
    /// Per-test configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs — not a failure.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    /// Deterministic splitmix64 generator used to drive strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, span)`; `span` must be non-zero.
        pub fn below(&mut self, span: u64) -> u64 {
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }
    }

    /// Drives the cases of one `proptest!` test function.
    pub struct TestRunner {
        cases: u32,
        name_hash: u64,
    }

    impl TestRunner {
        /// Build a runner for the test named `name` (used only for seeding).
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(config.cases);
            // FNV-1a over the fully-qualified test name.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRunner {
                cases,
                name_hash: h,
            }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// Independent RNG for case `i`.
        pub fn rng_for(&self, i: u32) -> TestRng {
            TestRng(self.name_hash ^ (i as u64).wrapping_mul(0xA24B_AED4_963E_E407))
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = ((hi as $u).wrapping_sub(lo as $u) as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    range_strategy!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
                    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// The `any::<T>()` strategy.
    #[derive(Clone, Debug)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// Any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($n,)+) = self;
                    ($($n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length bound for [`vec()`] — built from `usize`, `a..b`, or `a..=b`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_incl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_incl: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_incl: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_incl: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, len)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_incl - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Commonly imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fail the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __a,
                __b
            )));
        }
    }};
}

/// Fail the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __a
            )));
        }
    }};
}

/// Silently discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` followed by `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[allow(unreachable_code)]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __runner = $crate::test_runner::TestRunner::new(
                __config,
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__runner.cases() {
                let mut __rng = __runner.rng_for(__case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        Ok(())
                    })();
                match __outcome {
                    Ok(()) => {}
                    Err($crate::test_runner::TestCaseError::Reject) => continue,
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} of {}: {}", __case, stringify!($name), msg);
                    }
                }
            }
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in 3u8..=9, b in 100u64..200, c in 0usize..5) {
            prop_assert!((3..=9).contains(&a));
            prop_assert!((100..200).contains(&b), "b = {}", b);
            prop_assert!(c < 5);
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(any::<u64>(), 2..10)) {
            prop_assert!(v.len() >= 2 && v.len() < 10);
        }

        #[test]
        fn tuples_and_assume((x, y) in (0u32..50, 0u32..50)) {
            prop_assume!(x != y);
            prop_assert_ne!(x, y);
        }

        #[test]
        fn nested_vec(grid in crate::collection::vec(crate::collection::vec(0u8..4, 1..4), 1..4)) {
            for row in &grid {
                prop_assert!(!row.is_empty() && row.len() < 4);
                for &cell in row {
                    prop_assert!(cell < 4);
                }
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let r = crate::test_runner::TestRunner::new(
            crate::test_runner::ProptestConfig::with_cases(4),
            "fixed-name",
        );
        let a: Vec<u64> = (0..4)
            .map(|i| (0u64..1000).generate(&mut r.rng_for(i)))
            .collect();
        let b: Vec<u64> = (0..4)
            .map(|i| (0u64..1000).generate(&mut r.rng_for(i)))
            .collect();
        assert_eq!(a, b);
    }
}
