//! Offline vendored stand-in for `rayon`.
//!
//! Implements the subset this workspace uses with `std::thread::scope`:
//! `par_iter().map(..).collect()` (order-preserving), `par_iter().for_each(..)`,
//! `par_iter_mut().for_each(..)`, and `join`. Work is split into one
//! contiguous chunk per available core; there is no work-stealing pool, but
//! for the coarse-grained parallelism in this repo (independent FPGA devices,
//! independent render views) chunk-per-core is the same schedule rayon
//! converges to.

use std::num::NonZeroUsize;

/// Number of worker threads a parallel call may use.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb = None;
    let ra = std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        rb = Some(hb.join().expect("rayon::join worker panicked"));
        ra
    });
    (ra, rb.unwrap())
}

/// Split `len` items into at most `current_num_threads()` contiguous spans.
fn spans(len: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let workers = current_num_threads().min(len);
    let base = len / workers;
    let extra = len % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        out.push((start, start + size));
        start += size;
    }
    out
}

/// `&collection.par_iter()` — shared parallel iteration over slices.
pub trait IntoParallelRefIterator<'a> {
    /// The item type yielded by the iterator.
    type Item: Sync + 'a;
    /// Create the parallel iterator.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// `&mut collection.par_iter_mut()` — exclusive parallel iteration.
pub trait IntoParallelRefMutIterator<'a> {
    /// The item type yielded by the iterator.
    type Item: Send + 'a;
    /// Create the mutable parallel iterator.
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

/// Parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each item through `f` (applied in parallel, order preserved).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let items = self.items;
        std::thread::scope(|scope| {
            for (lo, hi) in spans(items.len()) {
                let f = &f;
                scope.spawn(move || {
                    for item in &items[lo..hi] {
                        f(item);
                    }
                });
            }
        });
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when there is nothing to iterate.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// The result of `par_iter().map(f)`.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, F, R> ParMap<'a, T, F>
where
    T: Sync,
    F: Fn(&'a T) -> R + Sync,
    R: Send,
{
    /// Execute the map in parallel and collect results **in input order**.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let items = self.items;
        let f = &self.f;
        let mut chunks: Vec<Vec<R>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = spans(items.len())
                .into_iter()
                .map(|(lo, hi)| {
                    scope.spawn(move || items[lo..hi].iter().map(f).collect::<Vec<R>>())
                })
                .collect();
            chunks = handles
                .into_iter()
                .map(|h| h.join().expect("rayon map worker panicked"))
                .collect();
        });
        chunks.into_iter().flatten().collect()
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Run `f` on every item in parallel with exclusive access.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let workers = current_num_threads().min(self.items.len().max(1));
        let chunk = self.items.len().div_ceil(workers);
        if chunk == 0 {
            return;
        }
        let f = &f;
        std::thread::scope(|scope| {
            for piece in self.items.chunks_mut(chunk) {
                scope.spawn(move || {
                    for item in piece {
                        f(item);
                    }
                });
            }
        });
    }
}

/// Commonly imported names, mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::{IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_mut_touches_every_item() {
        let mut data = vec![1u32; 257];
        data.par_iter_mut().for_each(|x| *x += 1);
        assert!(data.iter().all(|&x| x == 2));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 6 * 7, || "ok");
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let mut e2: Vec<u8> = Vec::new();
        e2.par_iter_mut().for_each(|_| unreachable!());
    }

    #[test]
    fn spans_cover_exactly() {
        for len in [0usize, 1, 2, 7, 64, 1000] {
            let s = super::spans(len);
            let total: usize = s.iter().map(|(lo, hi)| hi - lo).sum();
            assert_eq!(total, len);
            for w in s.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
        }
    }
}
