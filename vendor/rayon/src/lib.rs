//! Offline vendored stand-in for `rayon`.
//!
//! Implements the subset this workspace uses on top of a small persistent
//! worker pool: `par_iter().map(..).collect()` (order-preserving),
//! `par_iter().for_each(..)`, `par_iter_mut().for_each(..)`, `join`, and a
//! direct [`parallel_tasks`] entry point for index-based fan-out.
//!
//! The pool is lazily created on first use with `current_num_threads() - 1`
//! detached workers (the dispatching thread always participates, so a
//! single-core host runs everything inline with zero overhead). Dispatch is
//! a single generation bump behind a mutex: workers spin briefly for
//! back-to-back dispatches (the compiled CHDL engine issues one per level
//! set) and park on a condvar otherwise. There is no work-stealing; tasks
//! are claimed from a shared atomic counter, which for the contiguous
//! chunk-per-worker splits used here converges to the same schedule rayon
//! produces, without the per-call thread spawn/join cost of
//! `std::thread::scope`.

use std::num::NonZeroUsize;

/// Number of worker threads a parallel call may use. Honors the
/// `RAYON_NUM_THREADS` environment variable (read once, at pool creation)
/// like the real crate; otherwise `std::thread::available_parallelism()`.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

mod pool {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, OnceLock};

    /// One dispatched batch of `n` index-addressed tasks. `f` points into
    /// the dispatching caller's stack frame.
    ///
    /// Lifetime protocol: the caller keeps the closure alive until it has
    /// observed `pending == 0` with `Acquire` ordering. Every worker that
    /// executes a task decrements `pending` with `Release` *after* the last
    /// use of `f` for that task; a worker that arrives after all tasks are
    /// claimed sees `next >= n` and never dereferences `f` at all. So once
    /// the caller observes `pending == 0`, no live or future dereference of
    /// `f` exists and the frame may unwind.
    struct Job {
        f: *const (dyn Fn(usize) + Sync),
        n: usize,
        next: AtomicUsize,
        pending: AtomicUsize,
        panicked: AtomicBool,
    }

    // SAFETY: see the lifetime protocol above; `f` itself is `Sync` so
    // concurrent shared calls are fine.
    unsafe impl Send for Job {}
    unsafe impl Sync for Job {}

    impl Job {
        fn run(&self) {
            loop {
                let i = self.next.fetch_add(1, Ordering::Relaxed);
                if i >= self.n {
                    break;
                }
                // SAFETY: this task's `pending` slot is still outstanding,
                // so the caller is pinned in `run_job` and `f` is alive.
                let f = unsafe { &*self.f };
                let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(i))).is_ok();
                if !ok {
                    self.panicked.store(true, Ordering::Relaxed);
                }
                self.pending.fetch_sub(1, Ordering::Release);
            }
        }
    }

    struct Shared {
        /// Mirrors the generation stored in `slot`, readable without the
        /// lock so hot workers can spin instead of parking.
        seq: AtomicU64,
        slot: Mutex<(u64, Option<Arc<Job>>)>,
        cv: Condvar,
    }

    pub(crate) struct Pool {
        shared: Arc<Shared>,
        workers: usize,
        /// Serializes dispatchers; a contended `try_lock` falls back to
        /// inline execution rather than queueing.
        dispatch: Mutex<()>,
    }

    thread_local! {
        static IN_POOL: Cell<bool> = const { Cell::new(false) };
    }

    fn worker(shared: Arc<Shared>) {
        IN_POOL.with(|c| c.set(true));
        let mut seen = 0u64;
        loop {
            // Spin briefly: back-to-back dispatches (one per netlist level)
            // are the common case and should not pay a park/unpark.
            for _ in 0..4096 {
                if shared.seq.load(Ordering::Acquire) != seen {
                    break;
                }
                std::hint::spin_loop();
            }
            let job = {
                let mut slot = shared.slot.lock().unwrap();
                loop {
                    if slot.0 != seen {
                        seen = slot.0;
                        break slot.1.clone();
                    }
                    slot = shared.cv.wait(slot).unwrap();
                }
            };
            if let Some(job) = job {
                job.run();
            }
        }
    }

    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| {
            let shared = Arc::new(Shared {
                seq: AtomicU64::new(0),
                slot: Mutex::new((0, None)),
                cv: Condvar::new(),
            });
            let workers = super::current_num_threads().saturating_sub(1);
            for _ in 0..workers {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name("rayon-worker".into())
                    .spawn(move || worker(shared))
                    .expect("spawn rayon worker");
            }
            Pool {
                shared,
                workers,
                dispatch: Mutex::new(()),
            }
        })
    }

    /// Run `f(0)..f(n-1)`, possibly across the pool. Falls back to inline
    /// execution when the pool has no workers, when called from inside a
    /// pool task (nested parallelism), or when another dispatch is already
    /// in flight.
    pub(crate) fn run(n: usize, f: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        if n == 1 || IN_POOL.with(Cell::get) {
            for i in 0..n {
                f(i);
            }
            return;
        }
        let pool = global();
        if pool.workers == 0 {
            for i in 0..n {
                f(i);
            }
            return;
        }
        let guard = match pool.dispatch.try_lock() {
            Ok(g) => g,
            Err(_) => {
                for i in 0..n {
                    f(i);
                }
                return;
            }
        };
        // SAFETY: lifetime erasure only — `run` does not return until
        // `pending == 0` is observed below, so the borrow outlives all use.
        let f: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        let job = Arc::new(Job {
            f,
            n,
            next: AtomicUsize::new(0),
            pending: AtomicUsize::new(n),
            panicked: AtomicBool::new(false),
        });
        {
            let mut slot = pool.shared.slot.lock().unwrap();
            slot.0 += 1;
            slot.1 = Some(Arc::clone(&job));
            pool.shared.seq.store(slot.0, Ordering::Release);
            pool.shared.cv.notify_all();
        }
        // The dispatcher participates; its own tasks run inline.
        IN_POOL.with(|c| c.set(true));
        job.run();
        IN_POOL.with(|c| c.set(false));
        let mut spins = 0u32;
        while job.pending.load(Ordering::Acquire) != 0 {
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(8192) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        {
            let mut slot = pool.shared.slot.lock().unwrap();
            slot.1 = None;
        }
        drop(guard);
        if job.panicked.load(Ordering::Relaxed) {
            panic!("rayon: a parallel task panicked");
        }
    }
}

/// Run `f(0)`, `f(1)`, … `f(n-1)` across the persistent worker pool.
///
/// The calling thread participates, nested calls run inline, and every
/// index is executed exactly once regardless of pool size — on a
/// single-core host this is exactly a `for` loop. Panics in any task are
/// propagated to the caller after all tasks finish.
pub fn parallel_tasks(n: usize, f: impl Fn(usize) + Sync) {
    pool::run(n, &f);
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb = None;
    let ra = std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        rb = Some(hb.join().expect("rayon::join worker panicked"));
        ra
    });
    (ra, rb.unwrap())
}

/// Split `len` items into at most `current_num_threads()` contiguous spans.
fn spans(len: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let workers = current_num_threads().min(len);
    let base = len / workers;
    let extra = len % workers;
    let mut out = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let size = base + usize::from(w < extra);
        out.push((start, start + size));
        start += size;
    }
    out
}

/// `&collection.par_iter()` — shared parallel iteration over slices.
pub trait IntoParallelRefIterator<'a> {
    /// The item type yielded by the iterator.
    type Item: Sync + 'a;
    /// Create the parallel iterator.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// `&mut collection.par_iter_mut()` — exclusive parallel iteration.
pub trait IntoParallelRefMutIterator<'a> {
    /// The item type yielded by the iterator.
    type Item: Send + 'a;
    /// Create the mutable parallel iterator.
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { items: self }
    }
}

/// Parallel iterator over `&[T]`.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Map each item through `f` (applied in parallel, order preserved).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Run `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let items = self.items;
        let sp = spans(items.len());
        pool::run(sp.len(), &|w| {
            let (lo, hi) = sp[w];
            for item in &items[lo..hi] {
                f(item);
            }
        });
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when there is nothing to iterate.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// The result of `par_iter().map(f)`.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, F, R> ParMap<'a, T, F>
where
    T: Sync,
    F: Fn(&'a T) -> R + Sync,
    R: Send,
{
    /// Execute the map in parallel and collect results **in input order**.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let items = self.items;
        let f = &self.f;
        let sp = spans(items.len());
        let parts: std::sync::Mutex<Vec<(usize, Vec<R>)>> =
            std::sync::Mutex::new(Vec::with_capacity(sp.len()));
        pool::run(sp.len(), &|w| {
            let (lo, hi) = sp[w];
            let chunk: Vec<R> = items[lo..hi].iter().map(f).collect();
            parts.lock().unwrap().push((w, chunk));
        });
        let mut parts = parts.into_inner().unwrap();
        parts.sort_unstable_by_key(|&(w, _)| w);
        parts.into_iter().flat_map(|(_, chunk)| chunk).collect()
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct ParIterMut<'a, T> {
    items: &'a mut [T],
}

/// Shares a raw base pointer with pool tasks that each touch a disjoint
/// span of the underlying slice.
struct SendPtr<T>(*mut T);
// SAFETY: each task derives a disjoint sub-slice from the base pointer;
// the exclusive borrow of the whole slice outlives the dispatch.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    // Accessor so closures capture the (Sync) wrapper, not the raw field.
    fn get(&self) -> *mut T {
        self.0
    }
}

impl<'a, T: Send> ParIterMut<'a, T> {
    /// Run `f` on every item in parallel with exclusive access.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        let sp = spans(self.items.len());
        let base = SendPtr(self.items.as_mut_ptr());
        pool::run(sp.len(), &|w| {
            let (lo, hi) = sp[w];
            // SAFETY: spans are disjoint and in bounds of the exclusively
            // borrowed slice.
            let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(lo), hi - lo) };
            for item in chunk {
                f(item);
            }
        });
    }
}

/// Commonly imported names, mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::{IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_mut_touches_every_item() {
        let mut data = vec![1u32; 257];
        data.par_iter_mut().for_each(|x| *x += 1);
        assert!(data.iter().all(|&x| x == 2));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 6 * 7, || "ok");
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let mut e2: Vec<u8> = Vec::new();
        e2.par_iter_mut().for_each(|_| unreachable!());
        super::parallel_tasks(0, |_| unreachable!());
    }

    #[test]
    fn spans_cover_exactly() {
        for len in [0usize, 1, 2, 7, 64, 1000] {
            let s = super::spans(len);
            let total: usize = s.iter().map(|(lo, hi)| hi - lo).sum();
            assert_eq!(total, len);
            for w in s.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
        }
    }

    #[test]
    fn parallel_tasks_runs_every_index_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let hits: Vec<AtomicU32> = (0..513).map(|_| AtomicU32::new(0)).collect();
        super::parallel_tasks(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_parallel_tasks_run_inline() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let total = AtomicU32::new(0);
        super::parallel_tasks(8, |_| {
            super::parallel_tasks(8, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn concurrent_dispatchers_all_complete() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let total = AtomicU32::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    super::parallel_tasks(64, |_| {
                        total.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 64);
    }

    // The panic message differs between the inline fallback ("boom"
    // surfaces directly) and the pool path (wrapped), so only the fact of
    // the panic is asserted.
    #[test]
    #[should_panic]
    fn task_panics_propagate() {
        super::parallel_tasks(8, |i| {
            if i == 5 {
                panic!("boom");
            }
        });
    }
}
