//! Offline vendored stand-in for `rand_chacha` 0.3: a real ChaCha8 keystream
//! generator behind the subset of the upstream API this workspace uses
//! ([`ChaCha8Rng`] with `set_stream` / `set_word_pos` / `get_stream`).
//!
//! The block function is the genuine ChaCha quarter-round network (8 rounds),
//! so output quality matches upstream; exact bit-for-bit parity with the
//! `rand_chacha` crate is not guaranteed (word-position accounting here is
//! 64-bit, which is far beyond any stream length this workspace draws).

use rand::{RngCore, SeedableRng};

const WORDS_PER_BLOCK: u64 = 16;

/// A ChaCha keystream generator with 8 rounds and a 64-bit stream id.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// 256-bit key (from the seed).
    key: [u32; 8],
    /// Block counter of the *next* block to generate.
    counter: u64,
    /// Stream id (nonce words).
    stream: u64,
    /// Current keystream block.
    buf: [u32; 16],
    /// Next word index into `buf`; 16 means "refill needed".
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        self.buf = chacha8_block(&self.key, self.counter, self.stream);
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    /// Select an independent keystream for the same key.
    pub fn set_stream(&mut self, stream: u64) {
        if self.stream != stream {
            self.stream = stream;
            // Invalidate the buffered block but keep the word position.
            let pos = self.get_word_pos();
            self.set_word_pos(pos);
        }
    }

    /// The current stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    /// Absolute keystream position, in 32-bit words.
    pub fn get_word_pos(&self) -> u128 {
        if self.index >= 16 {
            self.counter as u128 * WORDS_PER_BLOCK as u128
        } else {
            (self.counter as u128 - 1) * WORDS_PER_BLOCK as u128 + self.index as u128
        }
    }

    /// Seek to an absolute keystream position, in 32-bit words.
    pub fn set_word_pos(&mut self, word_offset: u128) {
        let block = (word_offset / WORDS_PER_BLOCK as u128) as u64;
        let within = (word_offset % WORDS_PER_BLOCK as u128) as usize;
        self.counter = block;
        if within == 0 {
            // Lazy: refill on the next draw.
            self.index = 16;
        } else {
            self.refill();
            self.index = within;
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            *k = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            stream: 0,
            buf: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// One ChaCha8 block: "expand 32-byte k" constants, 256-bit key,
/// 64-bit block counter in words 12–13, 64-bit stream id in words 14–15.
fn chacha8_block(key: &[u32; 8], counter: u64, stream: u64) -> [u32; 16] {
    let mut state = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        stream as u32,
        (stream >> 32) as u32,
    ];
    let initial = state;
    for _ in 0..4 {
        // Column round.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (s, i) in state.iter_mut().zip(initial.iter()) {
        *s = s.wrapping_add(*i);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(99);
        let mut b = ChaCha8Rng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn streams_are_independent() {
        let base = ChaCha8Rng::seed_from_u64(7);
        let mut s1 = base.clone();
        let mut s2 = base.clone();
        s1.set_stream(1);
        s1.set_word_pos(0);
        s2.set_stream(2);
        s2.set_word_pos(0);
        let a: Vec<u64> = (0..8).map(|_| s1.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| s2.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn set_word_pos_seeks() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let first: Vec<u32> = (0..40).map(|_| a.next_u32()).collect();
        a.set_word_pos(3);
        assert_eq!(a.next_u32(), first[3]);
        a.set_word_pos(0);
        assert_eq!(a.next_u32(), first[0]);
        a.set_word_pos(35);
        assert_eq!(a.next_u32(), first[35]);
    }

    #[test]
    fn set_stream_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..5 {
            a.next_u32();
        }
        let pos = a.get_word_pos();
        a.set_stream(3);
        assert_eq!(a.get_word_pos(), pos);
        assert_eq!(a.get_stream(), 3);
    }

    #[test]
    fn keystream_looks_uniform() {
        // Cheap sanity check on bit balance across 64k words.
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let mut ones = 0u64;
        let n = 65_536u64;
        for _ in 0..n {
            ones += rng.next_u32().count_ones() as u64;
        }
        let total = n * 32;
        let frac = ones as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.01, "bit balance {frac}");
    }
}
