//! End-to-end integration: host → driver → board → FPGA → application,
//! spanning every crate in the workspace.

use atlantis::backplane::BackplaneKind;
use atlantis::board::{Acb, CpuClass};
use atlantis::core::{audit_system, AtlantisSystem, Coprocessor};
use atlantis::fabric::Device;
use atlantis::mem::WideWord;
use atlantis::prelude::*;
use atlantis::simcore::SimDuration;

#[test]
fn the_paper_resource_audit_passes() {
    for row in audit_system() {
        assert!(
            row.ok(),
            "{} — {}: expected {}, got {}",
            row.source,
            row.claim,
            row.expected,
            row.actual
        );
    }
}

#[test]
fn host_to_acb_dma_round_trip_through_the_system() {
    let mut sys = AtlantisSystem::builder()
        .host(CpuClass::Celeron450)
        .with_acbs(1)
        .build();
    let payload: Vec<u8> = (0..65536u32).map(|i| (i % 253) as u8).collect();
    let t_w = sys.acb(0).dma_write(0x1000, &payload);
    let (back, t_r) = sys.acb(0).dma_read(0x1000, payload.len());
    assert_eq!(back, payload);
    // 64 kB at ~100 MB/s each way lands well under 2 ms.
    assert!(t_w + t_r < SimDuration::from_millis(2), "{t_w} + {t_r}");
}

#[test]
fn aib_ingest_backplane_transfer_acb_chain() {
    let mut sys = AtlantisSystem::builder()
        .backplane(BackplaneKind::Configurable)
        .with_acbs(1)
        .with_aibs(1)
        .build();
    // External data arrives on AIB channel 0 and is buffered.
    let words = 8192u64;
    {
        let ch = sys.aib(0).channel_mut(0);
        for i in 0..words {
            assert!(ch.offer(WideWord::from_lanes(36, vec![i])));
            ch.pump(1);
        }
    }
    let ingest = sys.aib(0).channel(0).ingest_time(words);
    sys.advance(ingest);
    // Drain to the backplane and ship to the ACB.
    let drained = sys.aib(0).channel_mut(0).drain(words as usize);
    assert_eq!(drained.len(), words as usize);
    let conn = sys.connect_aib_to_acb(0, 0, 4).unwrap();
    let t = sys.backplane_transfer(conn, words * 4).unwrap();
    assert!(t < ingest, "the backplane outruns one 264 MB/s channel");
    // Order survived the FIFO chain.
    for (i, w) in drained.iter().enumerate() {
        assert_eq!(w.lanes()[0], i as u64);
    }
}

#[test]
fn fpga_on_acb_runs_a_design_loaded_over_the_driver() {
    // Configure an FPGA on a driver-attached ACB and push data through
    // the design — the microenable-style workflow of §2.4.
    let mut acb = Acb::new();
    let mut d = Design::new("checksum");
    let word = d.input("word", 32);
    let en = d.input("en", 1);
    let q = {
        let slot = d.reg_slot("sum", 32, 0);
        let qq = slot.q;
        let add = d.add(qq, word);
        d.set_reg_controls(&slot, Some(en), None);
        d.drive_reg(slot, add);
        qq
    };
    d.expose_output("sum", q);
    let fitted = fit(&d, &Device::orca_3t125()).unwrap();
    let t_cfg = acb.fpga_mut(0).configure(&fitted).unwrap();
    assert!(
        t_cfg > SimDuration::from_millis(30),
        "configuration is not free: {t_cfg}"
    );

    let mut driver = atlantis::pci::Driver::open(acb);
    // DMA a block to the board, then feed it to the FPGA (host-side copy
    // models the host-I/O FPGA moving local-bus data into the design).
    let data: Vec<u8> = (0..256).map(|i| i as u8).collect();
    driver.dma_write(0, &data);
    let (local, _) = driver.dma_read(0, data.len());
    let sim = driver.target_mut().fpga_mut(0).sim_mut().unwrap();
    sim.set("en", 1);
    let mut expect: u32 = 0;
    for chunk in local.chunks_exact(4) {
        let w = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        expect = expect.wrapping_add(w);
        sim.set("word", w as u64);
        sim.step();
    }
    assert_eq!(sim.get("sum"), expect as u64);
}

#[test]
fn coprocessor_task_switching_is_functional_and_cheap() {
    let mut cop = Coprocessor::new(Device::orca_3t125());
    // Two tasks: sum and xor over a stream.
    for (name, is_xor) in [("sum", false), ("xor", true)] {
        let mut d = Design::new(name);
        let x = d.input("x", 16);
        let q = d.reg_feedback(
            "acc",
            16,
            |d, q| {
                if is_xor {
                    d.xor(q, x)
                } else {
                    d.add(q, x)
                }
            },
        );
        d.expose_output("acc", q);
        cop.register(name, &d).unwrap();
    }
    let t_first = cop.switch_to("sum").unwrap();
    {
        let sim = cop.fpga_mut().sim_mut().unwrap();
        for v in [1u64, 2, 3] {
            sim.set("x", v);
            sim.step();
        }
        assert_eq!(sim.get("acc"), 6);
    }
    let t_switch = cop.switch_to("xor").unwrap();
    {
        let sim = cop.fpga_mut().sim_mut().unwrap();
        for v in [0xF0u64, 0x0F, 0xFF] {
            sim.set("x", v);
            sim.step();
        }
        assert_eq!(sim.get("acc"), 0xF0 ^ 0x0F ^ 0xFF);
    }
    assert!(
        t_switch < t_first / 5,
        "switch {t_switch} vs full load {t_first}"
    );
}

#[test]
fn downscaled_test_system_slink_straight_into_the_acb() {
    // §2.1: the external LVDS connectors “can be used to attach I/O
    // modules, e.g. S-Link, to set up a downscaled or test system without
    // the need to add AAB and AIB modules.” Detector events arrive framed
    // on S-Link, land in the ACB's local RAM, and are histogrammed.
    use atlantis::apps::trt::{emulate_fpga_histogram, EventGenerator, PatternBank, TrtGeometry};
    use atlantis::board::SLinkPort;
    use atlantis::simcore::rng::WorkloadRng;

    let g = TrtGeometry::small();
    let mut rng = WorkloadRng::seed_from_u64(12);
    let bank = PatternBank::generate(g, 32, &mut rng);
    let event = EventGenerator::new(g).generate(&bank, &mut rng);

    // Frame the hit list onto the link.
    let mut port = SLinkPort::default_link();
    let stream = port.frame_event(&event.hits);
    let t_link = port.transfer_time(stream.len() as u64);

    // The receiving FPGA (ExternalIo role) deposits the payload into the
    // board's local RAM; the host reads it back over PCI for checking.
    let mut acb = Acb::new();
    assert_eq!(Acb::role(3), atlantis::board::FpgaRole::ExternalIo);
    let events = SLinkPort::parse_events(&stream);
    assert_eq!(events.len(), 1);
    let payload: Vec<u8> = events[0].iter().flat_map(|w| w.to_le_bytes()).collect();
    use atlantis::pci::LocalBusTarget;
    acb.local_write(0, &payload);

    let mut driver = atlantis::pci::Driver::open(acb);
    let (back, t_pci) = driver.dma_read(0, payload.len());
    let hits: Vec<u32> = back
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    assert_eq!(
        hits, event.hits,
        "the hit list survived link + local bus + PCI"
    );

    // And the physics still works.
    let lut = bank.lut(16);
    let hist = emulate_fpga_histogram(&lut, &hits, bank.len());
    assert_eq!(hist, bank.reference_histogram(&event.active));

    // The 160 MB/s link outruns PCI for this event size only because of
    // DMA setup; both stay in the microsecond class.
    assert!(t_link < SimDuration::from_micros(10));
    assert!(t_pci < SimDuration::from_micros(100));
}

#[test]
fn two_pairs_reach_the_aggregate_bandwidth_claim() {
    let mut sys = AtlantisSystem::builder()
        .backplane(BackplaneKind::Configurable)
        .with_acbs(2)
        .with_aibs(2)
        .build();
    sys.connect_aib_to_acb(0, 0, 4).unwrap();
    sys.connect_aib_to_acb(1, 1, 4).unwrap();
    let agg = sys.aab.aggregate_bandwidth().as_mb_per_sec();
    assert!((2000.0..=2120.0).contains(&agg), "§2.3's 2 GB/s: {agg}");
}
