//! Paper-scale band checks: the headline numbers of §3.4, asserted as
//! integration tests (the `table*` binaries print the same quantities
//! with full sweeps).

use atlantis::apps::trt::{
    AcbTrtConfig, AcbTrtModel, CpuHistogrammer, EventGenerator, PatternBank,
};
use atlantis::apps::volume::pipeline::{frame_from_render, PipelineConfig};
use atlantis::apps::volume::raycast::Projection;
use atlantis::apps::volume::{
    Classifier, HeadPhantom, OpacityLevel, RayCaster, ViewDirection, VolumePro,
};
use atlantis::board::Acb;
use atlantis::pci::{DmaDirection, Driver};
use atlantis::simcore::rng::WorkloadRng;
use atlantis::simcore::stats::speedup;

#[test]
fn table1_dma_shape_holds() {
    let mut last = 0.0;
    for kb in [1usize, 8, 64, 512] {
        let mut drv = Driver::open(Acb::new());
        let rate = drv.measure_throughput(kb * 1024, DmaDirection::BoardToHost);
        assert!(rate > last, "{kb} kB: {rate}");
        last = rate;
    }
    assert!(
        (118.0..126.0).contains(&last),
        "saturation {last:.1} MB/s vs the paper's 125"
    );
}

#[test]
fn trt_headline_numbers() {
    let measured = AcbTrtConfig::paper_measured();
    let mut rng = WorkloadRng::seed_from_u64(1999);
    let bank = PatternBank::generate(measured.geometry, measured.n_patterns, &mut rng);
    let event = EventGenerator::new(measured.geometry).generate(&bank, &mut rng);

    let cpu = CpuHistogrammer::new(&bank, measured.threshold)
        .run_on_pentium_ii(&event)
        .time
        .as_millis_f64();
    assert!((28.0..42.0).contains(&cpu), "paper 35 ms, model {cpu:.1}");

    let single = AcbTrtModel::new(measured)
        .run_event(&event)
        .total
        .as_millis_f64();
    assert!(
        (17.5..21.5).contains(&single),
        "paper 19.2 ms, model {single:.1}"
    );

    let extrapolated = AcbTrtModel::new(AcbTrtConfig::paper_extrapolated())
        .run_event(&event)
        .total
        .as_millis_f64();
    assert!(
        (2.3..3.5).contains(&extrapolated),
        "paper 2.7 ms, model {extrapolated:.2}"
    );

    let s = speedup(cpu, extrapolated);
    assert!((9.0..15.0).contains(&s), "paper 13×, model {s:.1}");
}

/// One full-scale opaque render: fraction near 10–15%, efficiency 90–97%,
/// and the fast end of the 20–138 Hz range. (Debug builds render at a
/// reduced 128×64 image; the fractions are resolution-independent.)
#[test]
fn volume_rendering_bands_at_paper_scale() {
    let phantom = HeadPhantom::paper_ct();
    let caster = RayCaster::new(&phantom, Classifier::new(OpacityLevel::Opaque));
    let (_, stats) = caster.render(128, 64, ViewDirection::Diagonal, Projection::Parallel);
    let frac = stats.sample_fraction() * 100.0;
    assert!(
        (7.0..17.0).contains(&frac),
        "paper 10–15%, model {frac:.1}%"
    );

    let frame = frame_from_render(&PipelineConfig::atlantis_parallel(), &stats);
    let eff = frame.efficiency * 100.0;
    assert!((90.0..97.5).contains(&eff), "paper 90–97%, model {eff:.1}%");

    // Quarter-resolution image ⇒ ~¼ of the full-res cycles; scale back.
    let full_res_rate = frame.frame_rate / 4.0;
    assert!(
        (60.0..260.0).contains(&full_res_rate),
        "paper's fast end is 138 Hz; model ≈{full_res_rate:.0} Hz"
    );
}

#[test]
fn stall_reduction_band() {
    let phantom = HeadPhantom::with_dims(128, 128, 64);
    let caster = RayCaster::new(&phantom, Classifier::new(OpacityLevel::SemiTransparent));
    let (_, stats) = caster.render(128, 64, ViewDirection::AxisZ, Projection::Parallel);
    let mt = PipelineConfig::atlantis_parallel();
    let st = mt.single_threaded();
    let f_mt = frame_from_render(&mt, &stats);
    let f_st = frame_from_render(&st, &stats);
    assert!(
        1.0 - f_st.efficiency > 0.90,
        "paper: >90% stalls conventional"
    );
    assert!(
        1.0 - f_mt.efficiency < 0.10,
        "paper: <10% stalls multi-threaded"
    );
}

#[test]
fn volumepro_model_matches_its_spec() {
    let vp = VolumePro::default();
    let native = vp.frame_rate((256, 256, 256));
    assert!(
        (29.0..30.5).contains(&native),
        "VolumePro 500: 30 Hz at 256³"
    );
    assert!(
        vp.frame_rate((512, 512, 512)) < 4.0,
        "single-digit Hz at 512³"
    );
}

#[test]
fn transparent_levels_separate_at_paper_scale() {
    let phantom = HeadPhantom::paper_ct();
    let mut fractions = Vec::new();
    for level in OpacityLevel::all() {
        let caster = RayCaster::new(&phantom, Classifier::new(level));
        let (_, stats) = caster.render(128, 64, ViewDirection::AxisZ, Projection::Parallel);
        fractions.push(stats.sample_fraction());
    }
    assert!(
        fractions[0] < fractions[1] && fractions[1] < fractions[2],
        "opaque < semi < mostly: {fractions:?}"
    );
    assert!(
        fractions[2] * 100.0 >= 25.0,
        "paper: 25–40% for transparent levels"
    );
}
