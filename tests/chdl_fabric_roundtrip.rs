//! Cross-crate round trips between the CHDL netlist layer and the fabric
//! configuration layer: bitstream determinism, partial-reconfiguration
//! equivalence, and behavioural equivalence of a design run directly vs
//! through a configured FPGA.

use atlantis::fabric::Fpga;
use atlantis::prelude::*;
use proptest::prelude::*;

fn parametric_design(taps: &[u64]) -> Design {
    let mut d = Design::new("fir");
    let x = d.input("x", 16);
    let mut acc = d.lit(0, 16);
    for (i, &t) in taps.iter().enumerate() {
        let k = d.lit(t & 0xFFFF, 16);
        let m = d.mul(x, k);
        let r = d.reg(format!("z{i}"), m);
        acc = d.add(acc, r);
    }
    d.expose_output("y", acc);
    d
}

#[test]
fn direct_sim_equals_configured_fpga_sim() {
    let d = parametric_design(&[3, 5, 7]);
    let fitted = fit(&d, &Device::orca_3t125()).unwrap();

    let mut direct = Sim::new(&d);
    let mut fpga = Fpga::new(Device::orca_3t125());
    fpga.configure(&fitted).unwrap();

    for step in 0..50u64 {
        let v = (step * 37) & 0xFFFF;
        direct.set("x", v);
        direct.step();
        let sim = fpga.sim_mut().unwrap();
        sim.set("x", v);
        sim.step();
        assert_eq!(
            direct.get("y"),
            fpga.sim_mut().unwrap().get("y"),
            "step {step}"
        );
    }
}

#[test]
fn readback_after_partial_equals_direct_configuration() {
    let a = fit(&parametric_design(&[1, 2, 3]), &Device::orca_3t125()).unwrap();
    let b = fit(&parametric_design(&[1, 2, 9]), &Device::orca_3t125()).unwrap();

    let mut via_partial = Fpga::new(Device::orca_3t125());
    via_partial.configure(&a).unwrap();
    via_partial.partial_reconfigure(&b).unwrap();

    let mut direct = Fpga::new(Device::orca_3t125());
    direct.configure(&b).unwrap();

    assert_eq!(via_partial.readback().unwrap(), direct.readback().unwrap());
}

#[test]
fn config_time_accounts_every_frame() {
    let d = parametric_design(&[4, 4, 4, 4]);
    let dev = Device::orca_3t125();
    let fitted = fit(&d, &dev).unwrap();
    let mut fpga = Fpga::new(dev.clone());
    let t = fpga.configure(&fitted).unwrap();
    assert_eq!(t, dev.full_config_time());
    let stats = fpga.stats();
    assert_eq!(stats.frames_written, dev.config_frames as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any two designs of this family: the partial bitstream applied to
    /// the first always reproduces the second exactly.
    #[test]
    fn partial_bitstreams_converge(t1 in proptest::collection::vec(0u64..0x1000, 1..6),
                                   t2 in proptest::collection::vec(0u64..0x1000, 1..6)) {
        let dev = Device::orca_3t125();
        let a = fit(&parametric_design(&t1), &dev).unwrap().bitstream();
        let b = fit(&parametric_design(&t2), &dev).unwrap().bitstream();
        let partial = a.diff(&b);
        let mut patched = a.clone();
        patched.apply(&partial);
        prop_assert_eq!(&patched, &b);
        prop_assert!(patched.verify());
        // And the diff is empty iff the designs are identical.
        prop_assert_eq!(partial.frames.is_empty(), t1 == t2);
    }

    /// Gate-count estimation is monotone in the tap count for this
    /// family (more structure never reports fewer resources).
    #[test]
    fn stats_monotone_in_structure(n in 1usize..10) {
        let small = parametric_design(&vec![7; n]).stats();
        let large = parametric_design(&vec![7; n + 1]).stats();
        prop_assert!(large.gates > small.gates);
        prop_assert!(large.flip_flops > small.flip_flops);
    }

    /// The simulated FIR always matches a software model of itself.
    #[test]
    fn fir_matches_software_model(taps in proptest::collection::vec(0u64..0x100, 1..5),
                                  inputs in proptest::collection::vec(0u64..0x10000, 1..30)) {
        let d = parametric_design(&taps);
        let mut sim = Sim::new(&d);
        let mut regs = vec![0u64; taps.len()];
        for &x in &inputs {
            sim.set("x", x);
            // Software model of the same structure (registered products).
            let expect: u64 = regs.iter().sum::<u64>() & 0xFFFF;
            prop_assert_eq!(sim.get("y"), expect);
            sim.step();
            for (r, &t) in regs.iter_mut().zip(&taps) {
                *r = x.wrapping_mul(t & 0xFFFF) & 0xFFFF;
            }
        }
    }
}
