//! Application-level integration: the hybrid co-processing story of §2 —
//! one FPGA, multiple real application designs, hardware task switches
//! between them, with functional verification after every switch.

use atlantis::apps::image2d::{Image2d, Kernel3};
use atlantis::apps::trt::CpuHistogrammer;
use atlantis::apps::trt::{EventGenerator, PatternBank, TrtGeometry, TrtSequencer};
use atlantis::board::{CpuClass, HostCpu};
use atlantis::core::Coprocessor;
use atlantis::prelude::*;
use atlantis::simcore::rng::WorkloadRng;
use atlantis::simcore::SimDuration;

/// Build the small-scale TRT sequencer design and the conv engine design,
/// register both on one coprocessor, and alternate between them.
#[test]
fn hardware_task_switch_between_real_applications() {
    let g = TrtGeometry::small();
    let mut rng = WorkloadRng::seed_from_u64(42);
    let bank = PatternBank::generate(g, 48, &mut rng);
    let event = EventGenerator::new(g).generate(&bank, &mut rng);

    // Expected results from the software references.
    let expected_hist = bank.reference_histogram(&event.active);
    let img = Image2d::synthetic(24, 16, &mut rng);
    let expected_img = img
        .convolve3(
            &Kernel3::sharpen(),
            &mut HostCpu::new(CpuClass::PentiumII300),
        )
        .output;

    // Author both designs.
    let seq = TrtSequencer::new(&bank, 16, 256);
    let trt_design = seq.design().clone();
    let conv_design = {
        let mut engine = atlantis::apps::image2d::ConvolutionEngine::new(24, &Kernel3::sharpen());
        let _ = &mut engine;
        engine.design().clone()
    };

    let mut cop = Coprocessor::new(Device::orca_3t125());
    cop.register("trt", &trt_design).unwrap();
    cop.register("conv", &conv_design).unwrap();

    let mut switch_total = SimDuration::ZERO;
    for round in 0..2 {
        // --- TRT task -------------------------------------------------
        switch_total += cop.switch_to("trt").unwrap();
        {
            let loaded = cop.fpga_mut().fitted().unwrap().design();
            let hit_mem = loaded.find_memory("hits").unwrap();
            let result_mem = loaded.find_memory("results").unwrap();
            let sim = cop.fpga_mut().sim_mut().unwrap();
            // Drive the sequencer through the raw Sim interface: load the
            // hit buffer, pulse start.
            let words: Vec<u64> = event.hits.iter().map(|&h| h as u64).collect();
            sim.load_mem(hit_mem, &words);
            sim.set("n_hits", event.hits.len() as u64);
            sim.set("threshold", 9);
            sim.set("start", 1);
            sim.step();
            sim.set("start", 0);
            let mut guard = 0;
            while sim.get("done") == 0 {
                sim.step();
                guard += 1;
                assert!(guard < 100_000, "sequencer must terminate");
            }
            for (p, &expect) in expected_hist.iter().enumerate() {
                assert_eq!(
                    sim.peek_mem(result_mem, p) as u32,
                    expect,
                    "round {round}: pattern {p} after task switch"
                );
            }
        }

        // --- Convolution task ------------------------------------------
        switch_total += cop.switch_to("conv").unwrap();
        {
            let sim = cop.fpga_mut().sim_mut().unwrap();
            let (w, h) = (img.width(), img.height());
            let mut out = Image2d::new(w, h);
            for y in 0..h {
                for x in 0..w {
                    sim.set("pixel", img.get(x, y) as u64);
                    sim.step();
                    if x >= 2 && y >= 2 {
                        out.set(x - 1, y - 1, sim.get("out") as u8);
                    }
                }
            }
            for y in 2..h - 2 {
                for x in 2..w - 2 {
                    assert_eq!(
                        out.get(x, y),
                        expected_img.get(x, y),
                        "round {round}: pixel ({x},{y}) after task switch"
                    );
                }
            }
        }
    }

    let stats = cop.stats();
    assert_eq!(stats.full_loads, 1);
    assert_eq!(
        stats.partial_switches, 3,
        "three switches after the first load"
    );
    // Task switching between these (dissimilar) designs still beats four
    // full configurations.
    assert!(
        stats.reconfig_time < Device::orca_3t125().full_config_time() * 3,
        "total reconfiguration {} stayed below 3 full loads",
        stats.reconfig_time
    );
    let _ = switch_total;
}

/// The CPU baseline and all three hardware TRT paths agree on physics.
#[test]
fn all_four_trt_implementations_agree() {
    let g = TrtGeometry::small();
    let mut rng = WorkloadRng::seed_from_u64(77);
    let bank = PatternBank::generate(g, 32, &mut rng);
    let event = EventGenerator::new(g).generate(&bank, &mut rng);
    let threshold = 9;

    // 1. Software reference.
    let reference = bank.reference_histogram(&event.active);
    // 2. Op-counted CPU baseline.
    let cpu = CpuHistogrammer::new(&bank, threshold).run_on_pentium_ii(&event);
    assert_eq!(cpu.histogram, reference);
    // 3. Host-paced CHDL datapath.
    let mut hw = atlantis::apps::trt::FpgaHistogrammer::new(&bank, 16);
    let (hist_hw, _, _) = hw.run_event(&event.hits, threshold);
    assert_eq!(hist_hw, reference);
    // 4. Autonomous FSM sequencer.
    let mut seq = TrtSequencer::new(&bank, 16, 256);
    let (hist_seq, _) = seq.run_event(&event.hits, threshold);
    assert_eq!(hist_seq, reference);
    // 5. Full-width emulation (the 176-bit production data path).
    let lut = bank.lut(16);
    let emu = atlantis::apps::trt::emulate_fpga_histogram(&lut, &event.hits, bank.len());
    assert_eq!(emu, reference);
}
