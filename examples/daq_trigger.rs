//! The online trigger chain under load — the FOPI-style deployment the
//! paper's outlook announces (§4), at the 100 kHz repetition rate §3.1
//! quotes.
//!
//! Run with: `cargo run --release --example daq_trigger`

use atlantis::apps::daq::{max_lossless_rate, simulate, TriggerChainConfig};
use atlantis::simcore::SimDuration;

fn main() {
    let config = TriggerChainConfig::level2_trigger();
    println!("trigger chain configuration:");
    println!(
        "  event size:       {} words (region-of-interest hit list)",
        config.event_words
    );
    println!("  S-Link channels:  {}", config.channels);
    println!(
        "  pattern bank:     {} patterns, {} pass(es)",
        config.trt.n_patterns,
        config.trt.passes()
    );
    println!("  per-event service: {}", config.service_time());
    println!(
        "  ACB capacity:     {:.1} kHz\n",
        config.theoretical_max_rate() / 1000.0
    );

    println!(
        "{:>12} {:>14} {:>10} {:>10} {:>16}",
        "rate (kHz)", "processed", "drop %", "busy %", "max buffer"
    );
    for khz in [50u32, 90, 100, 110, 130, 160] {
        let stats = simulate(&config, khz as f64 * 1000.0, SimDuration::from_secs(1));
        println!(
            "{:>12} {:>14} {:>9.2}% {:>9.1}% {:>10} words",
            khz,
            stats.processed,
            stats.loss_fraction() * 100.0,
            stats.busy_fraction * 100.0,
            stats.max_buffer_words
        );
    }

    let knee = max_lossless_rate(&config, SimDuration::from_secs(1));
    println!(
        "\nlossless operating point: {:.1} kHz — the §3.1 “repetition rate of up \
         to 100 kHz” class",
        knee / 1000.0
    );
}
