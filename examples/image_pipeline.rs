//! 2-D industrial image processing on the FPGA (paper §3).
//!
//! Streams a synthetic inspection image through the CHDL convolution
//! engine and compares against the workstation filter library.
//!
//! Run with: `cargo run --release --example image_pipeline`

use atlantis::apps::image2d::{ConvolutionEngine, Image2d, Kernel3};
use atlantis::board::{CpuClass, HostCpu};
use atlantis::simcore::rng::WorkloadRng;

fn main() {
    let mut rng = WorkloadRng::seed_from_u64(2000);
    let img = Image2d::synthetic(128, 96, &mut rng);
    println!(
        "input: {}×{} synthetic inspection image\n",
        img.width(),
        img.height()
    );

    println!(
        "{:<12} {:>12} {:>12} {:>9}",
        "filter", "CPU (µs)", "FPGA (µs)", "speed-up"
    );
    for (name, kernel) in [
        ("box blur", Kernel3::box_blur()),
        ("laplacian", Kernel3::laplacian()),
        ("sobel-x", Kernel3::sobel_x()),
        ("sharpen", Kernel3::sharpen()),
    ] {
        let mut cpu = HostCpu::new(CpuClass::PentiumII300);
        let sw = img.convolve3(&kernel, &mut cpu);
        let mut engine = ConvolutionEngine::new(img.width(), &kernel);
        let (hw_img, cycles, hw_time) = engine.filter(&img);

        // Interior pixels must agree bit-exactly.
        let mut mismatches = 0u32;
        for y in 2..img.height() - 2 {
            for x in 2..img.width() - 2 {
                if hw_img.get(x, y) != sw.output.get(x, y) {
                    mismatches += 1;
                }
            }
        }
        assert_eq!(mismatches, 0, "hardware/software disagreement in '{name}'");

        println!(
            "{:<12} {:>12.1} {:>12.1} {:>8.1}×",
            name,
            sw.time.as_micros_f64(),
            hw_time.as_micros_f64(),
            sw.time.as_secs_f64() / hw_time.as_secs_f64()
        );
        let _ = cycles;
    }

    // Non-linear engines: Sobel (two MAC trees + |·|) and median
    // (Paeth's 19-exchange network) — still one pixel per cycle.
    let mut cpu = HostCpu::new(CpuClass::PentiumII300);
    {
        let sw = img.sobel(&mut cpu);
        let mut engine = atlantis::apps::image2d::SobelEngine::new(img.width());
        let (hw_img, _, hw_time) = engine.filter(&img);
        let mut mismatches = 0;
        for y in 2..img.height() - 2 {
            for x in 2..img.width() - 2 {
                if hw_img.get(x, y) != sw.output.get(x, y) {
                    mismatches += 1;
                }
            }
        }
        assert_eq!(mismatches, 0);
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>8.1}×",
            "sobel |g|",
            sw.time.as_micros_f64(),
            hw_time.as_micros_f64(),
            sw.time.as_secs_f64() / hw_time.as_secs_f64()
        );
    }
    {
        let sw = img.median3(&mut cpu);
        let mut engine = atlantis::apps::image2d::MedianEngine::new(img.width());
        let (hw_img, _, hw_time) = engine.filter(&img);
        let mut mismatches = 0;
        for y in 2..img.height() - 2 {
            for x in 2..img.width() - 2 {
                if hw_img.get(x, y) != sw.output.get(x, y) {
                    mismatches += 1;
                }
            }
        }
        assert_eq!(mismatches, 0);
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>8.1}×",
            "median 3×3",
            sw.time.as_micros_f64(),
            hw_time.as_micros_f64(),
            sw.time.as_secs_f64() / hw_time.as_secs_f64()
        );
    }

    let eroded = img.erode(128, &mut cpu);
    println!(
        "\nerosion on CPU: {:.1} µs (no FPGA engine — morphology maps onto the conv datapath)",
        eroded.time.as_micros_f64()
    );
    println!("all FPGA results verified bit-exact against the CPU reference ✓");
}
