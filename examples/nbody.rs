//! The astronomy N-body sub-task on the FPGA (paper §3.3).
//!
//! Evolves a small Plummer sphere with forces computed by the fixed-point
//! CHDL pipeline, and compares accuracy and throughput against the
//! double-precision workstation baseline.
//!
//! Run with: `cargo run --release --example nbody`

use atlantis::apps::nbody::{ForcePipeline, NBodySystem};
use atlantis::board::{CpuClass, HostCpu};
use atlantis::simcore::rng::WorkloadRng;

fn main() {
    let mut rng = WorkloadRng::seed_from_u64(282); // MNRAS 282, ref [8]
    let mut sys = NBodySystem::plummer(48, &mut rng);
    println!(
        "Plummer sphere: {} bodies, softening ε = {}, {} interactions per step\n",
        sys.len(),
        sys.softening,
        sys.pairs()
    );

    // Force accuracy: FPGA fixed point vs f64.
    let mut pipe = ForcePipeline::new(sys.softening);
    let (hw_acc, cycles, hw_time) = pipe.accelerations(&sys);
    let exact = sys.accelerations();
    let mut worst = 0.0f64;
    for (h, e) in hw_acc.iter().zip(&exact) {
        let mag = (e[0] * e[0] + e[1] * e[1] + e[2] * e[2]).sqrt().max(1e-3);
        for k in 0..3 {
            worst = worst.max((h[k] - e[k]).abs() / mag);
        }
    }
    println!("fixed-point force pipeline: {cycles} cycles (1 pair/cycle), {hw_time}");
    println!("worst relative force error vs f64: {:.2}%", worst * 100.0);

    // Throughput comparison (the paper's point: FPGAs *can* help here).
    let mut cpu = HostCpu::new(CpuClass::PentiumII300);
    let cpu_time = sys.cpu_force_time(&mut cpu);
    println!(
        "\nfull force evaluation: CPU {:.2} ms vs FPGA {:.2} ms  ⇒  {:.1}×",
        cpu_time.as_millis_f64(),
        hw_time.as_millis_f64(),
        cpu_time.as_secs_f64() / hw_time.as_secs_f64()
    );
    println!(
        "pipeline throughput: {:.0} M pairs/s at 40 MHz \
         (1995-era FPGA floating point managed ~10 MFLOPS ≈ 0.4 M pairs/s)",
        pipe.pairs_per_second() / 1e6
    );

    // A short integration with energy bookkeeping.
    let e0 = sys.total_energy();
    for _ in 0..25 {
        sys.step_leapfrog(0.002);
    }
    let e1 = sys.total_energy();
    println!(
        "\n25 leapfrog steps: energy {:.6} → {:.6} (drift {:.3}%)",
        e0,
        e1,
        ((e1 - e0) / e0).abs() * 100.0
    );
}
