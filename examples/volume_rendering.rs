//! Algorithmically optimized volume rendering (paper §3.2 / §3.4).
//!
//! Renders the synthetic CT head phantom from the paper's three viewing
//! directions at the three soft-tissue opacity levels, writes PGM images,
//! and prints the §3.4 statistics: sample-point fractions, pipeline
//! efficiency and frame rates.
//!
//! Run with: `cargo run --release --example volume_rendering`

use atlantis::apps::volume::pipeline::{frame_from_render, PipelineConfig};
use atlantis::apps::volume::raycast::Projection;
use atlantis::apps::volume::{
    Classifier, HeadPhantom, OpacityLevel, RayCaster, ViewDirection, VolumePro,
};
use std::path::PathBuf;

fn main() {
    let phantom = HeadPhantom::paper_ct();
    let out_dir = std::env::temp_dir().join("atlantis_renders");
    std::fs::create_dir_all(&out_dir).expect("create output directory");
    println!("rendering 256×256×128 phantom to 256×128 images (as in §3.4)");
    println!("images written to {}\n", out_dir.display());

    println!(
        "{:<18} {:<10} {:>9} {:>8} {:>7} {:>9}",
        "opacity level", "view", "samples", "frac%", "eff%", "rate Hz"
    );
    for level in OpacityLevel::all() {
        let caster = RayCaster::new(&phantom, Classifier::new(level));
        for view in ViewDirection::all() {
            let (img, stats) = caster.render(256, 128, view, Projection::Parallel);
            let engine = PipelineConfig::atlantis_parallel();
            let frame = frame_from_render(&engine, &stats);
            println!(
                "{:<18} {:<10} {:>9} {:>7.1}% {:>6.1}% {:>9.1}",
                format!("{level:?}"),
                format!("{view:?}"),
                stats.samples,
                stats.sample_fraction() * 100.0,
                frame.efficiency * 100.0,
                frame.frame_rate
            );
            let name = format!("{level:?}_{view:?}.pgm").to_lowercase();
            img.save_pgm(&PathBuf::from(&out_dir).join(name))
                .expect("write PGM");
        }
    }

    // Perspective is about twice as slow (§3.4).
    let caster = RayCaster::new(&phantom, Classifier::new(OpacityLevel::Opaque));
    let (_, par) = caster.render(256, 128, ViewDirection::Diagonal, Projection::Parallel);
    let (_, per) = caster.render(256, 128, ViewDirection::Diagonal, Projection::Perspective);
    let f_par = frame_from_render(&PipelineConfig::atlantis_parallel(), &par);
    let f_per = frame_from_render(&PipelineConfig::atlantis_perspective(), &per);
    println!(
        "\nperspective penalty: {:.1} Hz → {:.1} Hz ({:.2}× slower; paper: ≈2×)",
        f_par.frame_rate,
        f_per.frame_rate,
        f_par.frame_rate / f_per.frame_rate
    );

    // Stall behaviour with and without ray multi-threading (§3.2).
    let single = PipelineConfig::atlantis_parallel().single_threaded();
    let st = frame_from_render(&single, &par);
    let mt = f_par;
    println!(
        "pipeline stalls: single-threaded {:.1}%, multi-threaded {:.1}% \
         (paper: “from more than 90% to less than 10%”)",
        (1.0 - st.efficiency) * 100.0,
        (1.0 - mt.efficiency) * 100.0
    );

    // VolumePro comparison (§3.4: 10–25× on 512³ data sets).
    let vp = VolumePro::default();
    println!(
        "\nVolumePro on 256³: {:.1} Hz; on 512³ (8 subvolume passes): {:.2} Hz",
        vp.frame_rate((256, 256, 256)),
        vp.frame_rate((512, 512, 512))
    );
}
