//! Configuration-integrity workflow: single-event upsets and read-back
//! scrubbing (the operational use of §2's “read-back/test” feature in
//! radiation environments).
//!
//! Run with: `cargo run --example seu_scrubbing`

use atlantis::fabric::Fpga;
use atlantis::prelude::*;
use atlantis::simcore::rng::WorkloadRng;

fn main() {
    // A victim design on an ORCA.
    let mut d = Design::new("victim");
    let x = d.input("x", 16);
    let acc = d.reg_feedback("acc", 16, |d, q| d.add(q, x));
    d.expose_output("acc", acc);
    let dev = Device::orca_3t125();
    let fitted = fit(&d, &dev).unwrap();
    let mut fpga = Fpga::new(dev.clone());
    fpga.configure(&fitted).unwrap();
    println!(
        "configured '{}' on {}: integrity {}",
        d.name(),
        dev.name,
        fpga.integrity_ok().unwrap()
    );

    // A beam spill: random configuration upsets.
    let mut rng = WorkloadRng::seed_from_u64(2000);
    let upsets = 12;
    for _ in 0..upsets {
        let frame = rng.below(dev.config_frames as u64) as u32;
        let byte = rng.below(dev.frame_bytes as u64) as u32;
        let bit = rng.below(8) as u8;
        fpga.inject_upset(frame, byte, bit).unwrap();
    }
    println!("\ninjected {upsets} SEUs:");
    println!("  integrity: {}", fpga.integrity_ok().unwrap());
    println!("  frame CRCs verify: {}", fpga.readback().unwrap().verify());

    // Periodic scrub pass.
    let report = fpga.scrub().unwrap();
    println!("\nscrub pass:");
    println!("  frames repaired:        {}", report.frames_repaired);
    println!("  CRC-detectable upsets:  {}", report.crc_detectable);
    println!("  pass duration:          {}", report.time);
    println!("  integrity after scrub:  {}", fpga.integrity_ok().unwrap());
    assert!(fpga.integrity_ok().unwrap());

    // Scrub duty cycle at a given upset rate.
    let scrub_period_ms = 100.0;
    let duty = report.time.as_millis_f64() / scrub_period_ms * 100.0;
    println!(
        "\nscrubbing every {scrub_period_ms} ms costs {duty:.1}% of the configuration port's time"
    );
}
