//! Hardware task switching by partial reconfiguration (paper §2).
//!
//! A coprocessor FPGA alternates between three accelerator tasks; the
//! first load pays a full configuration, every later switch rewrites only
//! the differing frames.
//!
//! Run with: `cargo run --example task_switching`

use atlantis::core::Coprocessor;
use atlantis::prelude::*;

/// A small accelerator family: checksum, parity and a scaled adder, all
/// sharing their I/O structure.
fn task(name: &str, flavour: u8) -> Design {
    let mut d = Design::new(name);
    let data = d.input("data", 32);
    let acc = d.reg_feedback("acc", 32, |d, q| match flavour {
        0 => d.add(q, data),
        1 => d.xor(q, data),
        _ => {
            let two = d.lit(2, 32);
            let scaled = d.mul(data, two);
            d.add(q, scaled)
        }
    });
    d.expose_output("result", acc);
    d
}

fn main() {
    let mut cop = Coprocessor::new(Device::orca_3t125());
    cop.register("checksum", &task("checksum", 0)).unwrap();
    cop.register("parity", &task("parity", 1)).unwrap();
    cop.register("scaled_sum", &task("scaled_sum", 2)).unwrap();
    println!("task library: {:?}\n", cop.tasks());

    let schedule = ["checksum", "parity", "checksum", "scaled_sum", "parity"];
    for name in schedule {
        let t = cop.switch_to(name).unwrap();
        // Push a few words through the freshly loaded task.
        let sim = cop.fpga_mut().sim_mut().unwrap();
        for v in [0x11u64, 0x22, 0x33] {
            sim.set("data", v);
            sim.step();
        }
        let result = sim.get("result");
        println!("switched to {name:<11} in {t:<12}  result after 3 words: {result:#x}");
    }

    let s = cop.stats();
    println!(
        "\ntotals: {} full load, {} partial switches, {} frames written, {} reconfiguring",
        s.full_loads, s.partial_switches, s.frames_written, s.reconfig_time
    );
    println!(
        "a full configuration writes {} frames — task switches averaged {} frames each",
        Device::orca_3t125().config_frames,
        s.frames_written
            .saturating_sub(Device::orca_3t125().config_frames as u64)
            / s.partial_switches.max(1)
    );
}
