//! Reproduce Table 1 interactively: DMA read/write throughput over
//! CompactPCI as a function of block size.
//!
//! Run with: `cargo run --example dma_benchmark`

use atlantis::board::Acb;
use atlantis::pci::{DmaDirection, Driver};

fn main() {
    println!("ATLANTIS DMA performance (microenable driver, design speed 40 MHz)\n");
    println!(
        "{:>16} {:>20} {:>20}",
        "Block size (kB)", "DMA Read (MB/s)", "DMA Write (MB/s)"
    );
    for kb in [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024] {
        let mut read_drv = Driver::open(Acb::new());
        let mut write_drv = Driver::open(Acb::new());
        let r = read_drv.measure_throughput(kb * 1024, DmaDirection::BoardToHost);
        let w = write_drv.measure_throughput(kb * 1024, DmaDirection::HostToBoard);
        println!("{kb:>16} {r:>20.1} {w:>20.1}");
    }
    println!("\n(reads are posted PCI writes by the PLX9080 and saturate at the");
    println!(" paper's 125 MB/s; writes are PCI master reads and run slower)");
}
