//! Multi-tenant serving on the ATLANTIS machine (DESIGN.md §8).
//!
//! Three client threads with different workload profiles — an online
//! trigger (high priority), an interactive volume renderer, and a bulk
//! batch tenant mixing image filters and N-body steps — share a
//! four-ACB system through `atlantis-runtime`. The scheduler batches
//! jobs that share the currently-loaded FPGA design, so most jobs skip
//! reconfiguration entirely; a bounded admission queue sheds overload
//! by rejection instead of growing without bound. By default each
//! worker serves through the three-stage pipeline (prefetch / execute /
//! writeback on the PLX9080's two DMA channels, DESIGN.md §9) so DMA
//! and compute overlap; pass `--serial` to serve each job end to end
//! and compare the overlap counters. The execute stage gathers up to
//! `--lanes N` queued same-design jobs into one lane-batched pass
//! (DESIGN.md §10) — virtual time is unchanged, only host wall clock
//! improves; pass `--lanes 1` to disable lane batching.
//!
//! Pass `--upset-rate R` to bombard the boards with `R` single event
//! upsets per device-second of virtual busy time while they serve
//! (DESIGN.md §11): the runtime switches to the protected posture —
//! per-beat frame-CRC scans, periodic deep scrubs, bounded retries,
//! quarantine — and the final stats show the detection and repair
//! ledger. `--scrub-interval MS` tunes the deep-scrub period.
//!
//! The simulation-engine knob: `--partitioned [N]` sets the process-wide
//! CHDL engine default to fused, partitioned evaluation with `N` forced
//! partitions per logic level (omit `N` for the automatic size-based
//! policy, which is also the default; DESIGN.md §12). `--no-fusion`
//! reverts to the raw PR 1 micro-op stream for comparison, and
//! `--no-netopt` skips the pre-lowering netlist optimizer (constant
//! folding, subexpression sharing, dead-gate elimination; DESIGN.md §16)
//! while keeping the selected fusion/dispatch tier — both optimizations
//! are on by default.
//! `--dispatch=match|threaded|auto` picks the dispatch tier (DESIGN.md
//! §14): `match` sweeps the packed stream through one opcode match per
//! op, `threaded` compiles it to specialized closure chains, and `auto`
//! (the default) compiles streams large enough to amortize the build.
//!
//! The cluster knobs (DESIGN.md §13): any of `--shards N`,
//! `--tenants N`, or `--offered-load R` switches the demo to the
//! sharded serving layer — `N` simulated hosts behind the affinity
//! router and admission controller, fed an open-loop Poisson stream of
//! `R` jobs per virtual second from `N` tenants — and prints goodput,
//! shed counts per priority class and reason, the latency percentiles,
//! and the cluster cache-affinity hit rate. `--stealing` additionally
//! lets idle shards pull backlog across the backplane (DESIGN.md §15)
//! and prints the steal ledger — warm vs cold steals, jobs and bytes
//! moved, reconfiguration cost accepted. Without those flags the
//! example keeps its original single-node shape.
//!
//! Run with: `cargo run --release --example serving` (pipelined, 8 lanes)
//!       or: `cargo run --release --example serving -- --serial`
//!       or: `cargo run --release --example serving -- --lanes 16`
//!       or: `cargo run --release --example serving -- --partitioned 4`
//!       or: `cargo run --release --example serving -- --no-fusion`
//!       or: `cargo run --release --example serving -- --no-netopt`
//!       or: `cargo run --release --example serving -- --dispatch=threaded`
//!       or: `cargo run --release --example serving -- --upset-rate 2000`
//!       or: `cargo run --release --example serving -- --upset-rate 2000 --scrub-interval 100`
//!       or: `cargo run --release --example serving -- --shards 4 --tenants 12 --offered-load 150000`
//!       or: `cargo run --release --example serving -- --shards 4 --offered-load 150000 --stealing`

use atlantis::apps::jobs::JobSpec;
use atlantis::chdl::{DispatchMode, EngineConfig, ParallelEval};
use atlantis::cluster::{
    Cluster, ClusterConfig, LoadGen, LoadGenConfig, StealConfig, StealingPolicy,
};
use atlantis::core::AtlantisSystem;
use atlantis::runtime::{
    GuardConfig, JobRequest, Priority, Runtime, RuntimeConfig, RuntimeError, ShardConfig,
};
use atlantis::simcore::SimDuration;
use std::sync::Arc;

fn submit_with_backoff(rt: &Runtime, req: JobRequest) -> atlantis::runtime::JobHandle {
    loop {
        match rt.submit(req) {
            Ok(handle) => return handle,
            Err(RuntimeError::Overloaded { .. }) => std::thread::yield_now(),
            Err(e) => panic!("submit failed: {e}"),
        }
    }
}

/// Returns `(served, faulted)` — under fault injection a job may
/// honestly fail after exhausting its retry budget; it never lies.
fn wait_all(handles: Vec<atlantis::runtime::JobHandle>) -> (usize, usize) {
    let (mut served, mut faulted) = (0, 0);
    for h in handles {
        match h.wait() {
            Ok(_) => served += 1,
            Err(RuntimeError::Faulted { .. }) => faulted += 1,
            Err(e) => panic!("job failed unexpectedly: {e}"),
        }
    }
    (served, faulted)
}

/// Parse `--flag value` as an `f64`.
fn flag_value(args: &[String], flag: &str) -> Option<f64> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("{flag} takes a number"))
    })
}

/// The sharded serving demo: a cluster of simulated hosts behind the
/// affinity router and admission controller, fed an open-loop Poisson
/// stream on the deterministic virtual clock.
fn cluster_demo(args: &[String]) {
    let shards = flag_value(args, "--shards")
        .map_or(4, |v| v as usize)
        .max(1);
    let tenants = flag_value(args, "--tenants").map_or(8, |v| v as u32).max(1);
    let rate = flag_value(args, "--offered-load").unwrap_or(100_000.0);
    let stealing = args.iter().any(|a| a == "--stealing");
    let jobs = 2_000u64;
    let mut cluster = Cluster::new(ClusterConfig {
        shards,
        shard: ShardConfig {
            boards: 2,
            queue_capacity: 32,
            ..ShardConfig::default()
        },
        stealing: if stealing {
            StealingPolicy::Enabled(StealConfig::default())
        } else {
            StealingPolicy::Off
        },
        ..ClusterConfig::default()
    })
    .expect("at least one shard");
    println!(
        "cluster serving: {shards} shards x 2 boards, {tenants} tenants, {rate:.0} jobs/s offered ({jobs} jobs), stealing {}\n",
        if stealing { "on" } else { "off" }
    );
    cluster.run_open_loop(LoadGen::new(LoadGenConfig {
        rate,
        jobs,
        tenants,
        ..LoadGenConfig::default()
    }));
    let s = cluster.stats();
    println!(
        "offered {} jobs, admitted {}, completed {} (goodput {:.3})",
        s.offered,
        s.admitted,
        s.completed,
        s.goodput()
    );
    println!(
        "  shed {} ({:.3} of offered) by class (high/normal/low): {:?}",
        s.shed,
        s.shed_rate(),
        s.shed_by_class
    );
    println!(
        "  shed by reason (queue-full/tenant-quota/class-watermark): {:?}",
        s.shed_by_reason
    );
    println!(
        "  routing: {} affinity, {} spill; cluster cache hit rate {:.3}",
        s.routed_affinity,
        s.routed_spill,
        cluster.affinity_hit_rate()
    );
    println!(
        "  latency: p50 {:.0} µs, p95 {:.0} µs, p99 {:.0} µs (virtual)",
        cluster.latency_percentile_secs(0.50) * 1e6,
        cluster.latency_percentile_secs(0.95) * 1e6,
        cluster.latency_percentile_secs(0.99) * 1e6,
    );
    println!(
        "  per-shard completions: {:?}; mean retry-after hint {}",
        s.per_shard_completed,
        cluster.mean_retry_after()
    );
    if stealing {
        let st = cluster.steal_stats();
        println!(
            "  stealing: {} warm + {} cold steals ({} jobs, {} bytes moved)",
            st.warm_steals, st.cold_steals, st.jobs_stolen, st.bytes_moved
        );
        println!(
            "    {} scans, {} attempts, {} below breakeven; reconfig cost accepted {}",
            st.scans, st.attempts, st.below_breakeven, st.reconfig_paid
        );
    }
}

fn main() {
    // The pipeline knob: `pipeline: on` is the default; `--serial`
    // serves each job end to end (the measured baseline). `--lanes N`
    // caps the same-design batch the execute stage gathers per pass.
    let args: Vec<String> = std::env::args().collect();
    // Any cluster knob switches the demo to the sharded serving layer.
    if ["--shards", "--tenants", "--offered-load", "--stealing"]
        .iter()
        .any(|f| args.iter().any(|a| a == f))
    {
        return cluster_demo(&args);
    }
    let mut config = if args.iter().any(|a| a == "--serial") {
        RuntimeConfig::serial()
    } else {
        RuntimeConfig::default()
    };
    if let Some(i) = args.iter().position(|a| a == "--lanes") {
        config.lanes = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .expect("--lanes takes a positive integer");
    }
    // The engine knobs: pick the process-wide CHDL engine default before
    // any design is compiled. `--partitioned` without a count keeps the
    // automatic policy; with one it forces that many partitions per level.
    let mut engine = EngineConfig::default();
    if let Some(i) = args.iter().position(|a| a == "--partitioned") {
        engine.parallel = match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n > 0 => ParallelEval::Force(n),
            _ => ParallelEval::Auto,
        };
    }
    if args.iter().any(|a| a == "--no-fusion") {
        engine = EngineConfig::unfused();
    }
    // `--no-netopt` skips the pre-lowering netlist optimizer (constant
    // folding, subexpression sharing, dead-gate elimination; DESIGN.md
    // §16) while keeping whatever fusion/dispatch tier is selected.
    if args.iter().any(|a| a == "--no-netopt") {
        engine.netopt = false;
    }
    // The dispatch tier: `--dispatch=match|threaded|auto` (also accepted
    // as `--dispatch <tier>`). `auto` is the default.
    let dispatch_arg = args.iter().position(|a| a == "--dispatch").map_or_else(
        || {
            args.iter()
                .find_map(|a| a.strip_prefix("--dispatch=").map(str::to_string))
        },
        |i| args.get(i + 1).cloned(),
    );
    if let Some(tier) = dispatch_arg {
        engine.dispatch = match tier.as_str() {
            "match" => DispatchMode::Match,
            "threaded" => DispatchMode::Threaded,
            "auto" => DispatchMode::Auto,
            other => panic!("--dispatch takes match|threaded|auto, got {other:?}"),
        };
    }
    EngineConfig::set_global(engine);
    // The reliability knobs: any of them switches the runtime to the
    // protected posture with the requested overrides.
    let upset_rate = flag_value(&args, "--upset-rate");
    let scrub_ms = flag_value(&args, "--scrub-interval");
    if upset_rate.is_some() || scrub_ms.is_some() {
        config.guard = GuardConfig {
            upset_rate: upset_rate.unwrap_or(0.0),
            ..GuardConfig::protected()
        };
        if let Some(ms) = scrub_ms {
            config.guard.scrub_interval = SimDuration::from_secs_f64(ms / 1e3);
        }
    }
    let system = AtlantisSystem::builder().with_acbs(4).build();
    let rt = Arc::new(Runtime::serve(system, config).expect("system has ACBs to serve on"));
    println!(
        "serving on {} ACBs, queue capacity {}, pipeline {}, lanes {}, engine {}{}\n",
        rt.devices(),
        rt.queue_capacity(),
        if config.pipeline { "on" } else { "off" },
        config.lanes,
        {
            let base = match (engine.fuse, engine.parallel) {
                (false, _) => "raw".to_string(),
                (true, ParallelEval::Off) => "fused/serial".to_string(),
                (true, ParallelEval::Auto) => "fused/auto".to_string(),
                (true, ParallelEval::Force(n)) => format!("fused/{n}-way"),
            };
            let tier = match engine.dispatch {
                DispatchMode::Match => "match",
                DispatchMode::Threaded => "threaded",
                DispatchMode::Auto => "auto-dispatch",
            };
            let opt = if engine.netopt {
                "netopt"
            } else {
                "raw-netlist"
            };
            format!("{base}/{tier}/{opt}")
        },
        if config.guard.is_active() {
            format!(
                ", guard on ({}/s upsets, scrub every {})",
                config.guard.upset_rate, config.guard.scrub_interval
            )
        } else {
            String::new()
        }
    );

    // Tenant 1: the online trigger — many small TRT events, high priority.
    let trigger = {
        let rt = Arc::clone(&rt);
        std::thread::spawn(move || {
            let handles: Vec<_> = (0..120)
                .map(|i| {
                    let req = JobRequest::new(1, JobSpec::trt(i)).with_priority(Priority::High);
                    submit_with_backoff(&rt, req)
                })
                .collect();
            wait_all(handles)
        })
    };

    // Tenant 2: an interactive renderer — medium-sized volume frames.
    let renderer = {
        let rt = Arc::clone(&rt);
        std::thread::spawn(move || {
            let handles: Vec<_> = (0..40)
                .map(|i| {
                    let req = JobRequest::new(2, JobSpec::volume(64 + (i % 4) as u32 * 32, i));
                    submit_with_backoff(&rt, req)
                })
                .collect();
            wait_all(handles)
        })
    };

    // Tenant 3: batch work — image filters and N-body steps, low priority.
    let batch = {
        let rt = Arc::clone(&rt);
        std::thread::spawn(move || {
            let handles: Vec<_> = (0..60)
                .map(|i| {
                    let spec = if i % 2 == 0 {
                        JobSpec::image(32, i)
                    } else {
                        JobSpec::nbody(32, i)
                    };
                    let req = JobRequest::new(3, spec).with_priority(Priority::Low);
                    submit_with_backoff(&rt, req)
                })
                .collect();
            wait_all(handles)
        })
    };

    let tenants = [
        trigger.join().unwrap(),
        renderer.join().unwrap(),
        batch.join().unwrap(),
    ];
    let served: usize = tenants.iter().map(|t| t.0).sum();
    let faulted: usize = tenants.iter().map(|t| t.1).sum();

    let stats = Arc::into_inner(rt).expect("all clients joined").shutdown();
    println!("served {served} jobs across 3 tenants");
    println!("  per kind (trt/volume/image/nbody): {:?}", stats.per_kind);
    println!(
        "  shed {} submissions by class (high/normal/low): {:?} (clients retried)",
        stats.rejected, stats.rejected_by_class
    );
    println!(
        "  task switches: {} full + {} partial = {:.3}/job",
        stats.full_loads,
        stats.partial_switches,
        stats.switches_per_job()
    );
    println!(
        "  virtual machine time: {} reconfig, {} dma, {} execute",
        stats.reconfig_time, stats.dma_time, stats.execute_time
    );
    println!(
        "  throughput: {:.0} jobs/s of virtual machine time ({:.0} jobs/s wall)",
        stats.virtual_jobs_per_sec(),
        stats.wall_jobs_per_sec()
    );
    println!(
        "  latency: p50 {} µs, p99 {} µs, max {} µs",
        stats.latency.percentile_us(0.50),
        stats.latency.percentile_us(0.99),
        stats.latency.max_us()
    );
    println!(
        "  bitstream cache: {} hits, {} misses (all designs pre-fitted)",
        stats.cache_hits, stats.cache_misses
    );
    if stats.pipeline_beats > 0 {
        let occ = stats.stage_occupancy();
        println!(
            "  pipeline: {} beats, {} drains, overlap hid {:.1}% of stage time ({} saved)",
            stats.pipeline_beats,
            stats.pipeline_drains,
            stats.overlap_efficiency() * 100.0,
            stats.overlap_saved
        );
        println!(
            "  stage occupancy: prefetch {:.2}, execute {:.2}, writeback {:.2}",
            occ[0], occ[1], occ[2]
        );
        println!(
            "  buffer pool: {} hits, {} misses (zero-copy steady state)",
            stats.pool_hits, stats.pool_misses
        );
        println!(
            "  lanes: {} laned passes ({} jobs, {:.2} mean occupancy), {} scalar passes",
            stats.laned_passes,
            stats.laned_jobs,
            stats.lane_occupancy(),
            stats.scalar_passes
        );
    }
    if stats.upsets_injected > 0 || stats.guard_scrubs + stats.guard_repairs > 0 {
        println!(
            "  guard: {} upsets injected ({} stealthy), {} detected, {} SILENT",
            stats.upsets_injected,
            stats.upsets_stealthy,
            stats.detected_corruptions,
            stats.silent_corruptions
        );
        println!(
            "  repair: {} deep scrubs + {} targeted repairs, {} retries, {} faulted jobs, {} boards quarantined",
            stats.guard_scrubs,
            stats.guard_repairs,
            stats.retries,
            faulted,
            stats.quarantined_devices
        );
        println!(
            "  reliability: {:.1}% available, {:.1}% scrub overhead, MTBF {:.1} ms, detection latency {:.0} µs",
            stats.availability() * 100.0,
            stats.scrub_overhead() * 100.0,
            stats.mtbf() * 1e3,
            stats.mean_detection_latency_us()
        );
    }
}
