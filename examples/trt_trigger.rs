//! The HEP TRT trigger end-to-end (paper §3.1 / §3.4).
//!
//! Generates a synthetic detector event with embedded tracks, runs the
//! C++-era workstation baseline and the ACB coprocessor model, and
//! prints the §3.4 comparison: 35 ms vs 19.2 ms vs 2.7 ms.
//!
//! Run with: `cargo run --release --example trt_trigger`

use atlantis::apps::trt::{
    emulate_fpga_histogram, AcbTrtConfig, AcbTrtModel, CpuHistogrammer, EventGenerator, PatternBank,
};
use atlantis::simcore::rng::WorkloadRng;
use atlantis::simcore::stats::speedup;

fn main() {
    let config = AcbTrtConfig::paper_measured();
    let mut rng = WorkloadRng::seed_from_u64(1999);

    println!("generating pattern bank: {} patterns …", config.n_patterns);
    let bank = PatternBank::generate(config.geometry, config.n_patterns, &mut rng);

    let generator = EventGenerator::new(config.geometry);
    let event = generator.generate(&bank, &mut rng);
    println!(
        "event: {} of {} straws active ({:.1}% occupancy), {} true tracks embedded",
        event.hits.len(),
        config.geometry.straws(),
        event.occupancy() * 100.0,
        event.true_tracks.len()
    );

    // Workstation baseline (Pentium-II/300, as in §3.4).
    let sw = CpuHistogrammer::new(&bank, config.threshold);
    let cpu_run = sw.run_on_pentium_ii(&event);
    println!(
        "\nCPU baseline:      {:>9.2} ms  ({} ops on a Pentium-II/300)",
        cpu_run.time.as_millis_f64(),
        cpu_run.ops
    );

    // Single-memory ACB, 176-bit RAM access — the measured configuration.
    let mut acb1 = AcbTrtModel::new(config.clone());
    let t1 = acb1.run_event(&event);
    println!(
        "ACB, 1 module:     {:>9.2} ms  (I/O {:.2} ms + {} passes × {} hits at 40 MHz)",
        t1.total.as_millis_f64(),
        t1.io.as_millis_f64(),
        acb1.config().passes(),
        t1.hits
    );

    // 2 ACBs × 4 modules — the extrapolated 1408-bit configuration.
    let mut acb8 = AcbTrtModel::new(AcbTrtConfig::paper_extrapolated());
    let t8 = acb8.run_event(&event);
    println!(
        "2 ACB × 4 modules: {:>9.2} ms  ({} passes, 1408-bit RAM access)",
        t8.total.as_millis_f64(),
        acb8.config().passes()
    );
    println!(
        "\nspeed-up vs workstation: {:.1}×   (paper: “a speed-up by a factor of 13”)",
        speedup(cpu_run.time.as_secs_f64(), t8.total.as_secs_f64())
    );

    // Functional check: the wide-word data path finds the same tracks.
    let lut = bank.lut(176);
    let hw_hist = emulate_fpga_histogram(&lut, &event.hits, bank.len());
    assert_eq!(
        hw_hist, cpu_run.histogram,
        "FPGA data path matches software bit-exactly"
    );
    let found = bank.find_tracks(&hw_hist, config.threshold);
    println!(
        "\ntracks found over threshold {}: {:?}",
        config.threshold, found
    );
    for t in &event.true_tracks {
        assert!(found.contains(t), "embedded track {t} found");
    }
    println!(
        "all {} embedded tracks recovered ✓",
        event.true_tracks.len()
    );
}
