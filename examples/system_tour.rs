//! A tour of the assembled ATLANTIS system (paper §2).
//!
//! Builds a crate with two ACBs and two AIBs, audits every §2 resource
//! figure, wires the private backplane into two independent pairs, and
//! moves data along the full path: host → PCI/DMA → ACB, AIB → backplane
//! → ACB.
//!
//! Run with: `cargo run --example system_tour`

use atlantis::backplane::BackplaneKind;
use atlantis::board::CpuClass;
use atlantis::core::{audit_system, AtlantisSystem};
use atlantis::mem::WideWord;

fn main() {
    // Resource audit: the model must satisfy every §2 claim.
    println!("=== §2 resource audit ===");
    for row in audit_system() {
        println!(
            "[{}] {:<55} expected {:>13.0}  model {:>13.0}  {}",
            if row.ok() { "ok" } else { "FAIL" },
            row.claim,
            row.expected,
            row.actual,
            row.source
        );
        assert!(row.ok());
    }

    // Assemble the crate.
    let mut sys = AtlantisSystem::builder()
        .host(CpuClass::Celeron450)
        .backplane(BackplaneKind::Configurable)
        .with_acbs(2)
        .with_aibs(2)
        .build();
    println!("\ncrate layout: {:?}", sys.slots());

    // Host → ACB over CompactPCI DMA.
    let block = vec![0x5Au8; 256 * 1024];
    let t = sys.acb(0).dma_write(0, &block);
    println!(
        "DMA 256 kB host → ACB0: {} ({:.1} MB/s)",
        t,
        block.len() as f64 / t.as_secs_f64() / 1e6
    );

    // External data into an AIB channel, buffered in two stages.
    let aib = sys.aib(0);
    for i in 0..1000u64 {
        aib.channel_mut(0).offer(WideWord::from_lanes(36, vec![i]));
        aib.channel_mut(0).pump(1);
    }
    println!(
        "AIB0 channel 0 buffered {} words (stage high-water {:?})",
        aib.channel(0).buffered(),
        aib.channel(0).high_water()
    );

    // Two independent AIB→ACB pairs on the private bus: 2 GB/s aggregate.
    let c0 = sys.connect_aib_to_acb(0, 0, 4).unwrap();
    let _c1 = sys.connect_aib_to_acb(1, 1, 4).unwrap();
    println!(
        "backplane: {} per slot, {:.0} MB/s aggregate over 2 pairs",
        format_args!("{:?}", sys.aab.slot_bandwidth()),
        sys.aab.aggregate_bandwidth().as_mb_per_sec()
    );
    let t = sys.backplane_transfer(c0, 4 << 20).unwrap();
    println!("4 MiB AIB0 → ACB0 over the private bus: {t}");

    println!("\nsystem tour complete ✓");
}
