//! CHDL component composition: author a reusable design once, instantiate
//! it many times, debug with a VCD waveform dump — the library-of-cores
//! workflow the CHDL class library enabled.
//!
//! The composed system is a 4-channel link tester: per channel an LFSR
//! generates a pseudo-random pattern and a CRC engine folds it; the parent
//! compares the four CRC streams to detect a channel fault.
//!
//! Run with: `cargo run --example hardware_composition`

use atlantis::chdl::vcd::{to_vcd, VcdSignal};
use atlantis::prelude::*;

/// The reusable per-channel core: LFSR pattern source + serial CRC.
fn channel_core() -> Design {
    let mut d = Design::new("link_tester");
    let en = d.input("en", 1);
    let fault = d.input("fault", 1); // inject a stuck bit for testing
    let pattern = d.lfsr16("pattern", en);
    let bit = d.bit(pattern, 0);
    let bit_faulted = d.or(bit, fault);
    let clr = d.low();
    let crc = d.crc_serial("crc", 32, 0xEDB8_8320, bit_faulted, en, clr);
    d.expose_output("crc", crc);
    d.expose_output("pattern", pattern);
    d
}

fn main() {
    let core = channel_core();
    println!(
        "reusable core '{}': {} components, {} gates",
        core.name(),
        core.len(),
        core.stats().gates
    );

    // Compose four instances; channel 2 gets a fault injected.
    let mut sys = Design::new("link_tester_x4");
    let en = sys.input("en", 1);
    let fault2 = sys.input("fault2", 1);
    let ok = sys.low();
    let mut crcs = Vec::new();
    for ch in 0..4 {
        let f = if ch == 2 { fault2 } else { ok };
        let outs = sys.instantiate(&core, &format!("ch{ch}"), &[("en", en), ("fault", f)]);
        let crc = outs.iter().find(|(n, _)| n == "crc").unwrap().1;
        sys.expose_output(format!("crc{ch}"), crc);
        crcs.push(crc);
    }
    // Fault detector: all four CRCs must agree.
    let mut agree = sys.high();
    for w in crcs.windows(2) {
        let eq = sys.eq(w[0], w[1]);
        agree = sys.and(agree, eq);
    }
    sys.expose_output("all_agree", agree);
    println!(
        "composed system: {} components, {} gates, {} FFs",
        sys.len(),
        sys.stats().gates,
        sys.stats().flip_flops
    );
    let fitted = fit(&sys, &Device::orca_3t125()).unwrap();
    println!(
        "fits the ORCA 3T125 at {:.1}% gate utilization\n",
        fitted.report().gate_utilization * 100.0
    );

    // Run healthy, then inject the fault.
    let mut sim = Sim::new(&sys);
    let mut tracer = Tracer::new(&["crc0", "crc2", "all_agree"]);
    sim.set("en", 1);
    for cycle in 0..200u64 {
        if cycle == 100 {
            sim.set("fault2", 1);
        }
        tracer.sample(&mut sim);
        sim.step();
    }
    let healthy = tracer.history("all_agree")[..100].iter().all(|&v| v == 1);
    let caught = tracer.history("all_agree")[105..].contains(&0);
    println!("healthy phase: CRCs agree on every cycle: {healthy}");
    println!("fault injected at cycle 100: detector trips: {caught}");
    assert!(healthy && caught);

    // Dump the debug session as a VCD for a waveform viewer.
    let vcd = to_vcd(
        &tracer,
        &[
            VcdSignal {
                name: "crc0".into(),
                width: 32,
            },
            VcdSignal {
                name: "crc2".into(),
                width: 32,
            },
            VcdSignal {
                name: "all_agree".into(),
                width: 1,
            },
        ],
        25_000, // one cycle = 25 ns at 40 MHz
    );
    let path = std::env::temp_dir().join("atlantis_link_tester.vcd");
    std::fs::write(&path, &vcd).unwrap();
    println!(
        "\nwaveforms written to {} ({} bytes) — open with any VCD viewer",
        path.display(),
        vcd.len()
    );
}
