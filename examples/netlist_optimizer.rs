//! The netlist optimizer applied to generated designs.
//!
//! CHDL designs come from host code, so resolved generics leave constant
//! multiplies, identity operations and dead branches behind. The optimizer
//! folds them away; this example shows the savings on a parameterised
//! filter and proves behavioural equivalence by co-simulation.
//!
//! The second half drives the mutable netlist IR directly
//! (`chdl::nir`, DESIGN.md §16): the pass pipeline runs to its fixed
//! point with per-pass accounting, a `dont_touch` pin survives every
//! pass, and the result exports as Graphviz Dot and structural Verilog.
//!
//! Run with: `cargo run --release --example netlist_optimizer`
//!       or: `cargo run --release --example netlist_optimizer -- --export DIR`
//! (the latter writes `windowed_fir.dot` / `windowed_fir.v` for the
//! optimized netlist into `DIR`; output is deterministic, byte-for-byte).

use atlantis::chdl::{Nir, PassManager};
use atlantis::prelude::*;
use atlantis::simcore::rng::WorkloadRng;

/// A generated FIR whose coefficient table includes zeros and ones —
/// exactly what a generic windowing function produces at the edges.
fn generated_fir(coeffs: &[u64]) -> Design {
    let mut d = Design::new("windowed_fir");
    let x = d.input("x", 16);
    let zero = d.lit(0, 16);
    let mut acc = zero;
    let mut delayed = x;
    for (i, &c) in coeffs.iter().enumerate() {
        let k = d.lit(c, 16);
        let term = d.mul(delayed, k);
        acc = d.add(acc, term);
        // Debug tap nobody reads in production builds:
        let _dead = d.xor(term, k);
        delayed = d.reg(format!("z{i}"), delayed);
    }
    d.expose_output("y", acc);
    d
}

fn main() {
    // A raised-cosine-ish window: zero/one coefficients at the edges.
    let coeffs = [0u64, 1, 9, 23, 31, 23, 9, 1, 0];
    let d = generated_fir(&coeffs);
    let before = d.stats();
    let (opt, report) = d.optimized();
    let after = opt.stats();

    println!("design '{}' ({} taps):", d.name(), coeffs.len());
    println!(
        "  before: {:>6} gates, {:>4} FFs, {:>3} components",
        before.gates, before.flip_flops, before.components
    );
    println!(
        "  after:  {:>6} gates, {:>4} FFs, {:>3} components",
        after.gates, after.flip_flops, after.components
    );
    println!(
        "  removed {} nodes ({} constants folded) — {:.0}% of the gates",
        report.nodes_removed,
        report.constants_folded,
        (1.0 - after.gates as f64 / before.gates as f64) * 100.0
    );

    // Equivalence by co-simulation on random stimuli.
    let mut s1 = Sim::new(&d);
    let mut s2 = Sim::new(&opt);
    let mut rng = WorkloadRng::seed_from_u64(99);
    for _ in 0..500 {
        let v = rng.below(1 << 16);
        s1.set("x", v);
        s2.set("x", v);
        assert_eq!(s1.get("y"), s2.get("y"));
        s1.step();
        s2.step();
    }
    println!("\nco-simulated 500 cycles on random stimuli: outputs identical ✓");

    // Both fit — but the optimized one reports the honest footprint.
    let dev = Device::orca_3t125();
    let f1 = fit(&d, &dev).unwrap();
    let f2 = fit(&opt, &dev).unwrap();
    println!(
        "fitter view: {:.2}% → {:.2}% of the ORCA 3T125",
        f1.report().gate_utilization * 100.0,
        f2.report().gate_utilization * 100.0
    );

    // ---- the netlist IR, driven directly ------------------------------
    // Same FIR, but with a pinned probe: `dont_touch` keeps the first
    // tap's product observable through every pass.
    let mut d2 = generated_fir(&coeffs);
    let probe = {
        let x = d2.signal("x").unwrap();
        let k = d2.lit(9, 16);
        let p = d2.mul(x, k);
        d2.set_dont_touch(p);
        d2.label("tap_probe", p);
        p
    };
    let _ = probe;

    let mut nir = Nir::from_design(&d2);
    let depth_before = nir.analyze().max_depth;
    let ledger = PassManager::standard().run(&mut nir);
    println!(
        "\nnir pipeline on '{}' (fixed point in {} iterations):",
        d2.name(),
        ledger.iterations
    );
    for rec in &ledger.passes {
        println!(
            "  iter {}: {:<16} {:>4} rewrites",
            rec.iteration, rec.pass, rec.rewrites
        );
    }
    println!(
        "  {} -> {} live nodes ({:.0}% reduction), depth {} -> {}",
        ledger.nodes_before,
        ledger.nodes_after,
        ledger.node_reduction() * 100.0,
        depth_before,
        ledger.max_depth_after,
    );
    let compact = nir.to_design();
    let pinned_alive = {
        let n2 = Nir::from_design(&compact);
        (0..n2.len() as u32).any(|i| n2.is_dont_touch(i))
    };
    assert!(pinned_alive, "the dont_touch probe must survive");
    println!("  dont_touch probe survived all passes ✓");

    // ---- Dot / Verilog export -----------------------------------------
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--export") {
        let dir = std::path::PathBuf::from(args.get(i + 1).map(String::as_str).unwrap_or("."));
        std::fs::create_dir_all(&dir).expect("create export dir");
        let dot = compact.to_dot();
        let verilog = compact.to_verilog();
        let dot_path = dir.join(format!("{}.dot", d2.name()));
        let v_path = dir.join(format!("{}.v", d2.name()));
        std::fs::write(&dot_path, &dot).expect("write dot");
        std::fs::write(&v_path, &verilog).expect("write verilog");
        println!(
            "\nexported {} ({} bytes) and {} ({} bytes)",
            dot_path.display(),
            dot.len(),
            v_path.display(),
            verilog.len()
        );
    }
}
