//! The netlist optimizer applied to generated designs.
//!
//! CHDL designs come from host code, so resolved generics leave constant
//! multiplies, identity operations and dead branches behind. The optimizer
//! folds them away; this example shows the savings on a parameterised
//! filter and proves behavioural equivalence by co-simulation.
//!
//! Run with: `cargo run --release --example netlist_optimizer`

use atlantis::prelude::*;
use atlantis::simcore::rng::WorkloadRng;

/// A generated FIR whose coefficient table includes zeros and ones —
/// exactly what a generic windowing function produces at the edges.
fn generated_fir(coeffs: &[u64]) -> Design {
    let mut d = Design::new("windowed_fir");
    let x = d.input("x", 16);
    let zero = d.lit(0, 16);
    let mut acc = zero;
    let mut delayed = x;
    for (i, &c) in coeffs.iter().enumerate() {
        let k = d.lit(c, 16);
        let term = d.mul(delayed, k);
        acc = d.add(acc, term);
        // Debug tap nobody reads in production builds:
        let _dead = d.xor(term, k);
        delayed = d.reg(format!("z{i}"), delayed);
    }
    d.expose_output("y", acc);
    d
}

fn main() {
    // A raised-cosine-ish window: zero/one coefficients at the edges.
    let coeffs = [0u64, 1, 9, 23, 31, 23, 9, 1, 0];
    let d = generated_fir(&coeffs);
    let before = d.stats();
    let (opt, report) = d.optimized();
    let after = opt.stats();

    println!("design '{}' ({} taps):", d.name(), coeffs.len());
    println!(
        "  before: {:>6} gates, {:>4} FFs, {:>3} components",
        before.gates, before.flip_flops, before.components
    );
    println!(
        "  after:  {:>6} gates, {:>4} FFs, {:>3} components",
        after.gates, after.flip_flops, after.components
    );
    println!(
        "  removed {} nodes ({} constants folded) — {:.0}% of the gates",
        report.nodes_removed,
        report.constants_folded,
        (1.0 - after.gates as f64 / before.gates as f64) * 100.0
    );

    // Equivalence by co-simulation on random stimuli.
    let mut s1 = Sim::new(&d);
    let mut s2 = Sim::new(&opt);
    let mut rng = WorkloadRng::seed_from_u64(99);
    for _ in 0..500 {
        let v = rng.below(1 << 16);
        s1.set("x", v);
        s2.set("x", v);
        assert_eq!(s1.get("y"), s2.get("y"));
        s1.step();
        s2.step();
    }
    println!("\nco-simulated 500 cycles on random stimuli: outputs identical ✓");

    // Both fit — but the optimized one reports the honest footprint.
    let dev = Device::orca_3t125();
    let f1 = fit(&d, &dev).unwrap();
    let f2 = fit(&opt, &dev).unwrap();
    println!(
        "fitter view: {:.2}% → {:.2}% of the ORCA 3T125",
        f1.report().gate_utilization * 100.0,
        f2.report().gate_utilization * 100.0
    );
}
